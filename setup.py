"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in offline environments lacking the ``wheel`` module
(``pip install -e . --no-build-isolation`` falls back to setup.py
develop via --no-use-pep517).
"""

from setuptools import setup

setup()
