"""E04 — Theorem 3: surveillance soundness sweep + instrumentation ablation.

Reproduced table: a soundness sweep of the surveillance mechanism over
the whole program suite x every allow(...) policy (Theorem 3, checked
exhaustively), plus the design-choice ablation: the interpreter-level
mechanism vs the paper's literal flowchart instrumentation — agreement
on every input, and the instrumentation's box-count overhead.
"""

import time

from repro.core import ProductDomain
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.surveillance import (instrument, instrumented_mechanism,
                                surveillance_mechanism)
from repro.verify import (Table, all_allow_policies, soundness_sweep,
                          unsound_results)

from _common import emit


def run_sweep():
    return soundness_sweep(
        library.extended_suite(),
        lambda flowchart, policy, domain: surveillance_mechanism(
            flowchart, policy, domain))


def run_ablation():
    rows = []
    for flowchart in library.paper_figures():
        domain = ProductDomain.integer_grid(0, 2, flowchart.arity)
        policy = all_allow_policies(flowchart.arity)[1]
        q = as_program(flowchart, domain)
        instrumented = instrument(flowchart, policy)
        dynamic = surveillance_mechanism(flowchart, policy, domain,
                                         program=q)
        literal = instrumented_mechanism(flowchart, policy, domain,
                                         program=q)
        agree = all(dynamic(*point) == literal(*point) for point in domain)
        rows.append({
            "program": flowchart.name,
            "orig_boxes": len(flowchart.boxes),
            "inst_boxes": len(instrumented.boxes),
            "overhead": len(instrumented.boxes) / len(flowchart.boxes),
            "agree": agree,
        })
    return rows


def test_e04_soundness_sweep(benchmark):
    results = benchmark(run_sweep)

    table = Table("E04 (Theorem 3): surveillance soundness sweep",
                  ["program", "policies", "unsound", "verdict"])
    by_program = {}
    for result in results:
        by_program.setdefault(result.program_name, []).append(result)
    for name, group in by_program.items():
        bad = [r for r in group if not r.sound]
        table.add_row(name, len(group), len(bad),
                      "sound" if not bad else "UNSOUND")
    emit(table)

    assert unsound_results(results) == []


def test_e04_instrumentation_ablation(benchmark):
    rows = benchmark(run_ablation)

    table = Table("E04b: literal instrumentation vs interpreter tracking",
                  ["program", "orig_boxes", "inst_boxes", "overhead",
                   "agree"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    assert all(row["agree"] for row in rows)
    assert all(row["overhead"] > 1 for row in rows)
