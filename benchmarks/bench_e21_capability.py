"""E21 — Section 6 / Example 6: capability systems in the framework.

Reproduced table: capability audits showing that access control is not
information control.  Paper claims: "enforcing an access control policy
that specifies that the operation READFILE cannot be performed is not
the same as ensuring that information about A is not extracted" — the
system may have a permitted operation sequence with the same effect.
"""

from repro.capability import (Capability, CList, ReadOp, Script, StatOp,
                              SumOp, information_audit)
from repro.verify import Table

from _common import emit

OBJECTS = ("public", "secret")


def run_experiment():
    full = CList([Capability("public", ["read", "stat"]),
                  Capability("secret", ["stat"])])
    tight = full.restrict("secret", ["stat"])
    scripts = [
        Script([ReadOp("secret")], name="READFILE(secret)"),
        Script([StatOp("secret")], name="STAT(secret)"),
        Script([SumOp(["public", "secret"])], name="SUM(pub,sec)"),
        Script([ReadOp("public")], name="READFILE(public)"),
    ]
    rows = []
    for label, clist in (("stat-on-secret", full),
                         ("no-secret-rights", tight)):
        for script in scripts:
            audit = information_audit(script, clist, OBJECTS)
            rows.append({
                "clist": label,
                "script": audit["script"],
                "runs": audit["access_granted"],
                "sound": audit["sound"],
                "escapes": ",".join(audit["escaping_objects"]) or "-",
            })
    return rows


def test_e21_capability(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E21 (Example 6): access control vs information control",
                  ["clist", "script", "runs", "sound", "escapes"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    by_key = {(row["clist"], row["script"]): row for row in rows}
    # READFILE(secret) is blocked under both C-lists...
    assert not by_key[("stat-on-secret", "READFILE(secret)")]["runs"]
    # ...but with stat on the secret, permitted scripts extract it:
    sneaky = by_key[("stat-on-secret", "STAT(secret)")]
    assert sneaky["runs"] and not sneaky["sound"]
    assert sneaky["escapes"] == "secret"
    mixed = by_key[("stat-on-secret", "SUM(pub,sec)")]
    assert mixed["runs"] and not mixed["sound"]
    # Removing every right on the secret restores soundness everywhere:
    for script_name in ("READFILE(secret)", "STAT(secret)",
                        "SUM(pub,sec)", "READFILE(public)"):
        assert by_key[("no-secret-rights", script_name)]["sound"]
