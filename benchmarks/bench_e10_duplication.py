"""E10 — Example 9 (Section 5): assignment duplication at compile time.

Reproduced figure: `if x1 = 0 then y := 0 else y := x2`, policy
allow(1).  Paper claims: the if-then-else transform's mechanism always
outputs a violation notice; duplicating the assignment to y yields a
functionally equivalent program whose mechanism gives a notice only
when x1 != 0.  Ablations: the untransformed mechanism, and the
"smarter" ite variant that detects identical arms (inapplicable here,
arms differ — included to show it changes nothing on this program).
"""

from repro.core import ProductDomain, allow, is_sound
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.flowchart.transforms import (duplicate_assignment_transform,
                                        find_ite_regions,
                                        functionally_equivalent,
                                        ite_transform)
from repro.surveillance import surveillance_mechanism
from repro.verify import Table

from _common import emit

GRID = ProductDomain.integer_grid(0, 3, 2)
POLICY = allow(1, arity=2)


def run_experiment():
    flowchart = library.example9_program()
    q = as_program(flowchart, GRID)
    region = find_ite_regions(flowchart)[0]
    variants = {
        "plain": flowchart,
        "ite": ite_transform(flowchart, region),
        "ite-smart": ite_transform(flowchart, region,
                                   detect_identical_arms=True),
        "duplication": duplicate_assignment_transform(flowchart, region),
    }
    rows = []
    for label, variant in variants.items():
        mechanism = surveillance_mechanism(variant, POLICY, GRID, program=q)
        accepted = mechanism.acceptance_set()
        rows.append({
            "variant": label,
            "equivalent": functionally_equivalent(flowchart, variant, GRID),
            "accepts": len(accepted),
            "accepts_iff_x1_eq_0": (
                accepted == frozenset(p for p in GRID if p[0] == 0)),
            "sound": is_sound(mechanism, POLICY, GRID),
        })
    return rows


def test_e10_duplication(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E10 (Example 9): transform choice at compile time",
                  ["variant", "equivalent", "accepts",
                   "accepts_iff_x1_eq_0", "sound"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    by_variant = {row["variant"]: row for row in rows}
    assert all(row["equivalent"] and row["sound"] for row in rows)
    # Paper claims:
    assert by_variant["ite"]["accepts"] == 0           # always a notice
    assert by_variant["duplication"]["accepts_iff_x1_eq_0"]
    # The blind smart variant does not help (arms differ):
    assert by_variant["ite-smart"]["accepts"] == 0
