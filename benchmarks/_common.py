"""Shared plumbing for the experiment benchmarks.

Each ``bench_eNN_*.py`` regenerates one paper "table/figure" (see
DESIGN.md's per-experiment index): it times the experiment kernel with
pytest-benchmark, renders the reproduced rows through
:class:`repro.verify.Table`, and *asserts the paper's qualitative
claims* so a regression in any reproduced result fails the bench run.

Tables are printed and also appended to ``benchmarks/results/summary.txt``
(pytest captures stdout by default; the file keeps the rows available
either way).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict

from repro.verify import Table

RESULTS_DIR = Path(__file__).parent / "results"


def time_callable(fn: Callable, repeats: int = 5, warmup: int = 1,
                  setup: Callable = None) -> Dict[str, float]:
    """Best-of-``repeats`` wall-clock timing for a kernel.

    ``setup`` runs before *every* rep (warmup included) — use it to
    clear memo caches so cached backends are timed honestly rather
    than serving a dictionary hit.  Returns ``{"best", "mean", "reps"}``
    in seconds.
    """
    for _ in range(warmup):
        if setup is not None:
            setup()
        fn()
    samples = []
    for _ in range(repeats):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {"best": min(samples),
            "mean": sum(samples) / len(samples),
            "reps": repeats}


def write_json(payload: Dict, path) -> Path:
    """Persist a machine-readable bench payload (stable key order)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _slug(title: str) -> str:
    import re

    head = title.split(":")[0].strip().lower()
    return re.sub(r"[^a-z0-9]+", "-", head).strip("-") or "table"


def emit(table: Table) -> None:
    """Print a reproduced table; persist it as text and CSV."""
    text = table.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "summary.txt", "a") as handle:
        handle.write(text + "\n\n")
    with open(RESULTS_DIR / f"{_slug(table.title)}.csv", "w") as handle:
        handle.write(table.to_csv())
