"""Shared plumbing for the experiment benchmarks.

Each ``bench_eNN_*.py`` regenerates one paper "table/figure" (see
DESIGN.md's per-experiment index): it times the experiment kernel with
pytest-benchmark, renders the reproduced rows through
:class:`repro.verify.Table`, and *asserts the paper's qualitative
claims* so a regression in any reproduced result fails the bench run.

Tables are printed and also appended to ``benchmarks/results/summary.txt``
(pytest captures stdout by default; the file keeps the rows available
either way).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.verify import Table

RESULTS_DIR = Path(__file__).parent / "results"


def _slug(title: str) -> str:
    import re

    head = title.split(":")[0].strip().lower()
    return re.sub(r"[^a-z0-9]+", "-", head).strip("-") or "table"


def emit(table: Table) -> None:
    """Print a reproduced table; persist it as text and CSV."""
    text = table.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "summary.txt", "a") as handle:
        handle.write(text + "\n\n")
    with open(RESULTS_DIR / f"{_slug(table.title)}.csv", "w") as handle:
        handle.write(table.to_csv())
