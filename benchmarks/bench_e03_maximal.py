"""E03 — Theorem 2: the maximal sound mechanism (finite construction).

Reproduced table: acceptance of surveillance, high-water, and the
maximal mechanism on the paper's figure programs.  Paper claims: the
maximal mechanism exists and dominates every sound mechanism — in
particular both named ones.
"""

from repro.core import (ProductDomain, allow, as_complete,
                        maximal_mechanism)
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.surveillance import highwater_mechanism, surveillance_mechanism
from repro.verify import Table

from _common import emit

GRID = ProductDomain.integer_grid(0, 3, 2)
POLICY = allow(2, arity=2)
PROGRAMS = [library.forgetting_program(), library.reconvergence_program(),
            library.example8_program(), library.example9_program()]


def run_experiment():
    rows = []
    for flowchart in PROGRAMS:
        q = as_program(flowchart, GRID)
        surveillance = surveillance_mechanism(flowchart, POLICY, GRID,
                                              program=q)
        highwater = highwater_mechanism(flowchart, POLICY, GRID, program=q)
        construction = maximal_mechanism(q, POLICY)
        rows.append({
            "program": flowchart.name,
            "Ms_accepts": len(surveillance.acceptance_set()),
            "Mh_accepts": len(highwater.acceptance_set()),
            "Mmax_accepts": len(construction.mechanism.acceptance_set()),
            "max_geq_Ms": as_complete(construction.mechanism, surveillance),
            "max_geq_Mh": as_complete(construction.mechanism, highwater),
        })
    return rows


def test_e03_maximal(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E03 (Theorem 2): maximal mechanism vs Ms and Mh",
                  ["program", "Ms_accepts", "Mh_accepts", "Mmax_accepts",
                   "max_geq_Ms", "max_geq_Mh"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        assert row["max_geq_Ms"] and row["max_geq_Mh"]
        assert row["Mmax_accepts"] >= row["Ms_accepts"] >= row["Mh_accepts"]
    # Page 49: Mmax strictly beats Ms on the reconvergence program.
    reconvergence = next(r for r in rows if r["program"] == "reconvergence")
    assert reconvergence["Ms_accepts"] == 0
    assert reconvergence["Mmax_accepts"] == len(GRID)
