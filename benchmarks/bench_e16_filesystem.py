"""E16 — Example 2 + Example 4: the file system and its monitors.

Reproduced table: for growing file systems, the directory-gated policy
with (a) the sound reference monitor, (b) the content-leaking monitor,
(c) the decision-leaking monitor.  Paper claims: the reference monitor
is sound (its notice decision reads only directories, which the policy
always allows); mechanisms that leak through violation notices are
"simply unsound" (Example 4).
"""

from repro.core import check_soundness, max_leaked_bits
from repro.filesystem import (content_leaking_monitor,
                              decision_leaking_monitor,
                              directory_gated_policy, filesystem_domain,
                              read_file_program, reference_monitor)
from repro.verify import Table

from _common import emit


def run_experiment():
    rows = []
    for file_count, high in ((1, 3), (2, 2), (3, 1)):
        domain = filesystem_domain(file_count, 0, high)
        q = read_file_program(1, file_count, domain)
        policy = directory_gated_policy(file_count)
        monitors = {
            "reference": reference_monitor(q, 1),
            "content-leak": content_leaking_monitor(q, 1),
            "decision-leak": decision_leaking_monitor(q, 1, threshold=1),
        }
        for label, monitor in monitors.items():
            report = check_soundness(monitor, policy)
            rows.append({
                "files": file_count,
                "states": len(domain),
                "monitor": label,
                "sound": report.sound,
                "leak_bits": max_leaked_bits(monitor, policy),
            })
    return rows


def test_e16_filesystem(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E16 (Examples 2/4): file-system monitors",
                  ["files", "states", "monitor", "sound", "leak_bits"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        if row["monitor"] == "reference":
            assert row["sound"] and row["leak_bits"] == 0.0
        else:
            assert not row["sound"] and row["leak_bits"] > 0.0
