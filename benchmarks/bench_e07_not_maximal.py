"""E07 — page 49: surveillance is not maximal.

Reproduced figure: the constant-1 program reached through a branch on
x1, policy allow(2).  Paper claims: the surveillance mechanism always
outputs Λ; Mmax = Q is sound (Q is constant) and strictly more
complete, so surveillance is not the most complete sound mechanism.
"""

from repro.core import (Order, ProductDomain, allow, compare, is_sound,
                        maximal_mechanism, program_as_mechanism)
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.surveillance import surveillance_mechanism
from repro.verify import Table

from _common import emit


def run_experiment():
    rows = []
    for high in (1, 3, 7):
        grid = ProductDomain.integer_grid(0, high, 2)
        flowchart = library.reconvergence_program()
        policy = allow(2, arity=2)
        q = as_program(flowchart, grid)
        surveillance = surveillance_mechanism(flowchart, policy, grid,
                                              program=q)
        own = program_as_mechanism(q)
        construction = maximal_mechanism(q, policy, grid)
        rows.append({
            "domain": len(grid),
            "Ms_accepts": len(surveillance.acceptance_set()),
            "Q_sound": is_sound(own, policy, grid),
            "Q_accepts": len(own.acceptance_set()),
            "order_Q_vs_Ms": str(compare(own, surveillance).order),
            "Mmax_accepts": len(construction.mechanism.acceptance_set()),
        })
    return rows


def test_e07_surveillance_not_maximal(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E07 (p.49): surveillance is not maximal",
                  ["domain", "Ms_accepts", "Q_sound", "Q_accepts",
                   "order_Q_vs_Ms", "Mmax_accepts"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        assert row["Ms_accepts"] == 0
        assert row["Q_sound"]
        assert row["Q_accepts"] == row["domain"] == row["Mmax_accepts"]
        assert row["order_Q_vs_Ms"] == str(Order.FIRST_MORE)
