"""E02 — Theorem 1: the union of sound mechanisms.

Reproduced table: acceptance counts of two incomparable sound
mechanisms and of their union, across domain sizes.  Paper claims:
M1 ∨ M2 is sound, >= M1 and >= M2; acceptance is the set union.
"""

from repro.core import (Order, ProductDomain, Program, as_complete, compare,
                        is_sound, allow, mechanism_from_table, union)
from repro.verify import Table

from _common import emit


def build_instance(high):
    grid = ProductDomain.integer_grid(0, high, 2)
    q = Program(lambda a, b: b if a == 1 else a, grid, name="mixed")
    policy = allow(1, arity=2)
    left = mechanism_from_table(
        q, {p: q(*p) for p in grid if p[0] == 0}, name="M-x1=0")
    right = mechanism_from_table(
        q, {p: q(*p) for p in grid if p[0] >= 2}, name="M-x1>=2")
    return grid, q, policy, left, right


def run_experiment():
    rows = []
    for high in (2, 4, 8):
        grid, q, policy, left, right = build_instance(high)
        joined = union(left, right)
        rows.append({
            "domain": len(grid),
            "left_accepts": len(left.acceptance_set()),
            "right_accepts": len(right.acceptance_set()),
            "union_accepts": len(joined.acceptance_set()),
            "union_sound": is_sound(joined, policy),
            "dominates_both": (as_complete(joined, left)
                               and as_complete(joined, right)),
        })
    return rows


def test_e02_union(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E02 (Theorem 1): union of sound mechanisms",
                  ["domain", "left_accepts", "right_accepts",
                   "union_accepts", "union_sound", "dominates_both"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        assert row["union_sound"]
        assert row["dominates_both"]
        assert (row["union_accepts"]
                == row["left_accepts"] + row["right_accepts"])
