"""Benchmark-suite configuration.

Clears the previous run's reproduced-table file so ``summary.txt``
always reflects the latest run only.
"""

from pathlib import Path

RESULTS = Path(__file__).parent / "results" / "summary.txt"


def pytest_sessionstart(session):
    if RESULTS.exists():
        RESULTS.unlink()
