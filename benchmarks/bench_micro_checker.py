"""Microbenchmarks of the library's own machinery (not a paper claim).

Times the hot paths a downstream user leans on — the soundness checker,
the surveillance interpreter, the literal instrumentation, and the
maximal construction — across domain sizes, so performance regressions
in the enforcement core are caught alongside the reproduction claims.
"""

import pytest

from repro.core import (ProductDomain, allow, check_soundness,
                        maximal_mechanism)
from repro.flowchart import fastpath, library
from repro.flowchart.fastpath import run_flowchart
from repro.flowchart.interpreter import as_program, execute
from repro.surveillance import (instrument, surveil,
                                surveillance_mechanism)

POLICY = allow(2, arity=2)


@pytest.mark.parametrize("backend", ["interpreted", "compiled"])
def test_micro_sweep_kernel(benchmark, backend):
    """The sweep's inner kernel: full-domain flowchart evaluation.

    This is the pair the PR's ≥3× claim is measured on (see
    ``scripts/bench_report.py``); the result memo is cleared inside the
    kernel so the compiled backend is timed executing, not dict-hitting.
    """
    grid = ProductDomain.integer_grid(1, 24, 2)
    flowchart = library.gcd_program()

    def run():
        fastpath.clear_result_memo()
        total = 0
        for point in grid:
            total += run_flowchart(flowchart, point, backend=backend).steps
        return total

    expected = sum(execute(flowchart, point).steps for point in grid)
    assert benchmark(run) == expected


@pytest.mark.parametrize("high", [7, 15])
def test_micro_soundness_checker(benchmark, high):
    """Factorization check over an n-point grid (fresh caches per run)."""
    grid = ProductDomain.integer_grid(0, high, 2)
    flowchart = library.forgetting_program()

    def run():
        mechanism = surveillance_mechanism(flowchart, POLICY, grid)
        return check_soundness(mechanism, POLICY, grid).sound

    assert benchmark(run)


def test_micro_surveilled_execution(benchmark):
    """One surveilled run of the accumulate loop (50 iterations)."""
    flowchart = library.accumulate_program()

    def run():
        return surveil(flowchart, (50,), allowed=frozenset({1})).steps

    steps = benchmark(run)
    assert steps == execute(flowchart, (50,)).steps


def test_micro_instrumentation(benchmark):
    """The rules-1-4 flowchart transformation itself."""
    flowchart = library.nested_branch_program()
    policy = allow(1, 3, arity=3)

    instrumented = benchmark(lambda: instrument(flowchart, policy))
    assert len(instrumented.boxes) > len(flowchart.boxes)


def test_micro_maximal_construction(benchmark):
    """Theorem 2's construction over a 4096-point domain."""
    grid = ProductDomain.integer_grid(0, 15, 3)
    q = as_program(library.nested_branch_program(), grid)
    policy = allow(1, arity=3)

    construction = benchmark(lambda: maximal_mechanism(q, policy, grid))
    assert construction.evaluations == len(grid)
