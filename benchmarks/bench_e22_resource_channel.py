"""E22 — Section 2's remark: the resource-usage covert channel.

    "a general-purpose operating system in which information can be
    passed via resource usage patterns"

Reproduced series: a sender/receiver pair sharing only a page pool, at
several secret widths, with and without background noise, under the
shared vs partitioned (quota) allocation disciplines.  Claims: the
shared pool carries the whole secret (unsound for allow(), exact
recovery); quotas close the channel (the same system becomes sound).
"""

from repro.osched import channel_report
from repro.verify import Table

from _common import emit


def run_experiment():
    rows = []
    for width, noise in ((2, 0), (3, 0), (4, 0), (3, 2)):
        for row in channel_report(width=width, noise_working_set=noise):
            row = dict(row)
            row["noise_pages"] = noise
            rows.append(row)
    return rows


def test_e22_resource_channel(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E22 (Section 2): resource-usage covert channel",
                  ["discipline", "secret_bits", "noise_pages",
                   "sound_for_allow_none", "leaked_bits",
                   "exact_recovery"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        if row["discipline"] == "shared":
            assert not row["sound_for_allow_none"]
            assert row["leaked_bits"] == float(row["secret_bits"])
            assert row["exact_recovery"]
        else:
            assert row["sound_for_allow_none"]
            assert row["leaked_bits"] == 0.0
