"""E09 — Example 8: the transform can *hurt* — M > M'.

Reproduced figure: `if x2 = 1 then y := 1 else y := x1`, policy
allow(2).  Paper claims: M' (surveillance after the if-then-else
transform) always outputs Λ; M (untransformed) outputs Q's value
exactly when x2 = 1; hence M > M' — "one must assume the worst case".
"""

from repro.core import Order, ProductDomain, allow, compare
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.flowchart.transforms import find_ite_regions, ite_transform
from repro.surveillance import surveillance_mechanism
from repro.verify import Table

from _common import emit

POLICY = allow(2, arity=2)


def run_experiment():
    rows = []
    for high in (1, 3, 7):
        grid = ProductDomain.integer_grid(0, high, 2)
        flowchart = library.example8_program()
        q = as_program(flowchart, grid)
        region = find_ite_regions(flowchart)[0]
        rewritten = ite_transform(flowchart, region)
        untransformed = surveillance_mechanism(flowchart, POLICY, grid,
                                               program=q)
        transformed = surveillance_mechanism(rewritten, POLICY, grid,
                                             program=q)
        rows.append({
            "domain": len(grid),
            "M_accepts": len(untransformed.acceptance_set()),
            "M'_accepts": len(transformed.acceptance_set()),
            "M_accepts_only_x2_eq_1": (
                untransformed.acceptance_set()
                == frozenset(p for p in grid if p[1] == 1)),
            "order": str(compare(untransformed, transformed).order),
        })
    return rows


def test_e09_transform_hurts(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E09 (Example 8): the transform can hurt (M > M')",
                  ["domain", "M_accepts", "M'_accepts",
                   "M_accepts_only_x2_eq_1", "order"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        assert row["M'_accepts"] == 0
        assert row["M_accepts_only_x2_eq_1"]
        assert row["order"] == str(Order.FIRST_MORE)
