"""E13 — Example 5: the logon program.

Reproduced table: for growing user/password universes, Q-as-its-own-
mechanism is unsound for allow(1, 3) but leaks exactly one bit per
query.  Paper claims: "Q, as its own protection mechanism, is unsound.
The reason this program is workable in practice is that the amount of
information obtained by the user is small."
"""

from repro.channels.password import (logon_leak_bits, logon_policy,
                                     logon_program)
from repro.core import (check_soundness, leakage_profile,
                        program_as_mechanism)
from repro.verify import Table

from _common import emit

UNIVERSES = [
    (["alice"], ["p1", "p2"]),
    (["alice", "bob"], ["p1", "p2"]),
    (["alice", "bob"], ["p1", "p2", "p3"]),
]


def run_experiment():
    rows = []
    for userids, passwords in UNIVERSES:
        q = logon_program(userids, passwords)
        report = check_soundness(program_as_mechanism(q), logon_policy())
        profile = leakage_profile(program_as_mechanism(q), logon_policy())
        rows.append({
            "users": len(userids),
            "passwords": len(passwords),
            "tables": len(q.domain.components[1]),
            "sound": report.sound,
            "worst_bits": logon_leak_bits(userids, passwords),
            "expected_bits": profile.shannon,
        })
    return rows


def test_e13_logon(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E13 (Example 5): the logon program",
                  ["users", "passwords", "tables", "sound", "worst_bits",
                   "expected_bits"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        assert not row["sound"]                  # unsound...
        assert row["worst_bits"] == 1.0          # ...but at most 1 bit
        assert row["expected_bits"] <= 1.0
    # With more passwords than guesses the average drops below 1 bit —
    # the "small" gets smaller as the secret space grows.
    assert rows[-1]["expected_bits"] < 1.0
