"""E15 — Example 1: Fenton's data-mark machine and the halt critique.

Reproduced table: the negative-inference witness programs under both
halt interpretations.  Paper claims: reading the priv-halt as a
violation notice is unsound (the message appears iff the priv input is
zero — negative inference); the no-op reading is sound on the balanced
program but *undefined* when the halt is the last statement; Fenton's
own output-mark rule produces distinguishable notices — Example 4's
leak inside Fenton's machine.
"""

from repro.core import ProductDomain, allow_none, check_soundness
from repro.core.errors import UndefinedSemanticsError
from repro.minsky.fenton import (HaltMode,
                                 balanced_negative_inference_program,
                                 fenton_mechanism,
                                 negative_inference_program,
                                 undefined_trailing_halt_program)
from repro.verify import Table

from _common import emit

GRID = ProductDomain.integer_grid(0, 6, 1)
POLICY = allow_none(1)


def run_experiment():
    rows = []
    cases = [
        ("negative-inference", negative_inference_program(HaltMode.NOTICE),
         False),
        ("balanced / NOTICE",
         balanced_negative_inference_program(HaltMode.NOTICE), False),
        ("balanced / NOOP",
         balanced_negative_inference_program(HaltMode.NOOP), False),
        ("negative-inference + output-mark",
         negative_inference_program(HaltMode.NOTICE), True),
    ]
    for label, machine, check_mark in cases:
        mechanism = fenton_mechanism(machine, GRID, priv_registers=[1],
                                     check_output_mark=check_mark)
        report = check_soundness(mechanism, POLICY)
        notices = sum(1 for point in GRID if not mechanism.passes(*point))
        rows.append({
            "machine": label,
            "halt_mode": str(machine.halt_mode),
            "sound": report.sound,
            "notices": notices,
            "domain": len(GRID),
        })

    undefined = undefined_trailing_halt_program()
    mechanism = fenton_mechanism(undefined, GRID, priv_registers=[1])
    try:
        mechanism(1)
        undefined_surfaced = False
    except UndefinedSemanticsError:
        undefined_surfaced = True
    rows.append({
        "machine": "trailing-halt / NOOP",
        "halt_mode": "noop",
        "sound": "UNDEFINED" if undefined_surfaced else "?",
        "notices": "-",
        "domain": len(GRID),
    })
    return rows


def test_e15_fenton(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E15 (Example 1): Fenton halt semantics",
                  ["machine", "halt_mode", "sound", "notices", "domain"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    by_machine = {row["machine"]: row for row in rows}
    assert by_machine["negative-inference"]["sound"] is False
    assert by_machine["negative-inference"]["notices"] == 1  # x = 0 only
    assert by_machine["balanced / NOTICE"]["sound"] is False
    assert by_machine["balanced / NOOP"]["sound"] is True
    assert by_machine["negative-inference + output-mark"]["sound"] is False
    assert by_machine["trailing-halt / NOOP"]["sound"] == "UNDEFINED"
