"""E08 — Example 7: the if-then-else transform can rescue completeness.

Reproduced figure: Q (page 49's constant-1 program) vs Q' = ite(Q),
policy allow(2).  Paper claims: surveillance on Q' always gives output
1 — a maximal mechanism — while on Q it always gave Λ.
"""

from repro.core import ProductDomain, allow, certify_maximal
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.flowchart.transforms import (find_ite_regions,
                                        functionally_equivalent,
                                        ite_transform)
from repro.surveillance import surveillance_mechanism
from repro.verify import Table

from _common import emit

GRID = ProductDomain.integer_grid(0, 3, 2)
POLICY = allow(2, arity=2)


def run_experiment():
    flowchart = library.example7_program()
    q = as_program(flowchart, GRID)
    region = find_ite_regions(flowchart)[0]
    rewritten = ite_transform(flowchart, region)
    before = surveillance_mechanism(flowchart, POLICY, GRID, program=q)
    after = surveillance_mechanism(rewritten, POLICY, GRID, program=q)
    return {
        "equivalent": functionally_equivalent(flowchart, rewritten, GRID),
        "before_accepts": len(before.acceptance_set()),
        "after_accepts": len(after.acceptance_set()),
        "after_always_1": all(after(*p) == 1 for p in GRID),
        "after_is_maximal": certify_maximal(after, q, POLICY, GRID),
        "domain": len(GRID),
    }


def test_e08_ite_transform_helps(benchmark):
    row = benchmark(run_experiment)

    table = Table("E08 (Example 7): if-then-else transform on Q",
                  ["equivalent", "before_accepts", "after_accepts",
                   "after_always_1", "after_is_maximal", "domain"])
    table.add_dict(row)
    emit(table)

    assert row["equivalent"]
    assert row["before_accepts"] == 0
    assert row["after_accepts"] == row["domain"]
    assert row["after_always_1"]
    assert row["after_is_maximal"]
