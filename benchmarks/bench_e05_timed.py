"""E05 — Theorem 3': surveillance under observable running time.

Reproduced table: per program, soundness of the untimed mechanism M and
the timed mechanism M' when the program's output is (value, steps).
Paper claims: M is unsound once time is observable (witnessed on
programs whose timing varies within a policy class); M' is sound on
every program and policy.
"""

from repro.core import (ProductDomain, VALUE_AND_TIME, check_soundness)
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.surveillance import (surveillance_mechanism,
                                timed_surveillance_mechanism)
from repro.verify import Table, all_allow_policies

from _common import emit

PROGRAMS = [library.timing_loop(), library.accumulate_program(),
            library.parity_program(), library.forgetting_program(),
            library.example8_program()]


def run_experiment():
    rows = []
    for flowchart in PROGRAMS:
        domain = ProductDomain.integer_grid(0, 3, flowchart.arity)
        q = as_program(flowchart, domain, VALUE_AND_TIME)
        for policy in all_allow_policies(flowchart.arity):
            untimed = surveillance_mechanism(
                flowchart, policy, domain, output_model=VALUE_AND_TIME,
                program=q)
            timed = timed_surveillance_mechanism(flowchart, policy, domain,
                                                 program=q)
            rows.append({
                "program": flowchart.name,
                "policy": policy.name,
                "untimed_sound": check_soundness(untimed, policy).sound,
                "timed_sound": check_soundness(timed, policy).sound,
                "timed_accepts": len(timed.acceptance_set()),
            })
    return rows


def test_e05_timed_surveillance(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E05 (Theorem 3'): observable time — M vs M'",
                  ["program", "policy", "untimed_sound", "timed_sound",
                   "timed_accepts"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    # M' is sound everywhere (Theorem 3').
    assert all(row["timed_sound"] for row in rows)
    # M is not: the loop programs leak their input through time.
    leaky = [row for row in rows
             if row["program"] in ("timing-loop", "accumulate", "parity")
             and row["policy"] == "allow()"]
    assert leaky and all(not row["untimed_sound"] for row in leaky)
