"""E26 — Section 6: one program, two enforcement models (extension).

    "Not only are these the key questions but our framework is general.
    It is not biased toward any particular solution for providing
    security ... it can be used to model capability systems as well as
    surveillance."

Reproduced table: structured programs compiled to Fenton's data-mark
machine and enforced there, side by side with flowchart surveillance on
the same source — same soundness checker, same policies, two models of
computation.  Ablated across the compiler's three mark disciplines:

- TAINT and PREMARK are sound everywhere; JOIN is **unsound** (the
  zero-trip-loop negative-inference leak — the machine-level twin of
  the paper's Example 1 critique);
- completeness: TAINT ≤ PREMARK, with PREMARK matching flowchart
  surveillance on straight-through programs and *beating* it on
  reconvergent branches (Fenton's join restoration = the structured
  certifier's PC restoration).
"""

from repro.core import ProductDomain, allow, check_soundness
from repro.flowchart.parser import parse_program
from repro.minsky.fcompile import Discipline, compile_to_fenton
from repro.minsky.fenton import fenton_mechanism
from repro.surveillance import surveillance_mechanism
from repro.verify import Table

from _common import emit

GRID = ProductDomain.integer_grid(0, 3, 2)

PROGRAMS = {
    "guarded-copy": ("program p(x1, x2) "
                     "{ if x2 == 0 { y := x1 } else { y := 0 } }"),
    "reconvergence": ("program p(x1, x2) "
                      "{ if x1 == 0 { r := 1 } else { r := 2 }; "
                      "y := x2 }"),
    "countdown": ("program p(x1, x2) { r := x2; "
                  "while r != 0 { y := y + 1; r := r - 1 } }"),
}

POLICY = allow(2, arity=2)  # x1 is the denied (priv) input throughout


def run_experiment():
    rows = []
    for label, source in PROGRAMS.items():
        program = parse_program(source)
        surveillance = surveillance_mechanism(program.compile(), POLICY,
                                              GRID)
        rows.append({
            "program": label,
            "model": "flowchart-surveillance",
            "sound": check_soundness(surveillance, POLICY).sound,
            "accepts": len(surveillance.acceptance_set()),
            "domain": len(GRID),
        })
        for discipline in Discipline:
            machine, registers_map = compile_to_fenton(
                program, discipline=discipline)
            mechanism = fenton_mechanism(
                machine, GRID, priv_registers=[registers_map["x1"]],
                check_output_mark=True)
            rows.append({
                "program": label,
                "model": f"fenton-{discipline}",
                "sound": check_soundness(mechanism, POLICY).sound,
                "accepts": len(mechanism.acceptance_set()),
                "domain": len(GRID),
            })
    return rows


def test_e26_cross_model(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E26 (Section 6): one program, two enforcement models",
                  ["program", "model", "sound", "accepts", "domain"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    by_key = {(row["program"], row["model"]): row for row in rows}
    for label in PROGRAMS:
        # Soundness: everything except the JOIN discipline.
        assert by_key[(label, "flowchart-surveillance")]["sound"]
        assert by_key[(label, "fenton-taint")]["sound"]
        assert by_key[(label, "fenton-premark")]["sound"]
        # Completeness: taint <= premark.
        assert (by_key[(label, "fenton-taint")]["accepts"]
                <= by_key[(label, "fenton-premark")]["accepts"])
    # The JOIN discipline's zero-trip leak shows on guarded-copy.
    assert not by_key[("guarded-copy", "fenton-join")]["sound"]
    # PREMARK matches surveillance on the guarded copy...
    assert (by_key[("guarded-copy", "fenton-premark")]["accepts"]
            == by_key[("guarded-copy", "flowchart-surveillance")]["accepts"])
    # ...and beats it on the reconvergent branch.
    assert (by_key[("reconvergence", "fenton-premark")]["accepts"]
            > by_key[("reconvergence", "flowchart-surveillance")]["accepts"])
