"""E23 — Section 5: "static techniques ... result in efficient security
enforcement" — measured.

Reproduced table, two ablations:

1. hybrid certify-then-surveil: certified (program, policy) pairs run
   the bare program (average steps = bare); uncertified pairs pay the
   dynamic price;
2. dead-surveillance elimination on the literal instrumentation:
   box-count and executed-step reduction, with output equality checked
   on every input.
"""

from repro.core import ProductDomain, allow
from repro.flowchart.expr import Const, var
from repro.flowchart.interpreter import execute
from repro.flowchart.structured import Assign, If, StructuredProgram
from repro.staticflow import (eliminate_dead_surveillance,
                              hybrid_mechanism, instrumentation_overhead)
from repro.surveillance.instrument import VIOLATION_FLAG, instrument
from repro.verify import Table

from _common import emit

GRID = ProductDomain.integer_grid(0, 2, 2)


def programs():
    return [
        StructuredProgram(["x1", "x2"], [Assign("y", var("x1") * 2)],
                          name="clean"),
        StructuredProgram(
            ["x1", "x2"],
            [Assign("y", var("x1")),
             If(var("x2").eq(0), [Assign("y", Const(0))], [])],
            name="forgetting"),
        StructuredProgram(
            ["x1", "x2"],
            [Assign("audit", var("x2") * 3),
             Assign("log", var("audit") + 1),
             Assign("y", var("x1"))],
            name="dead-aux"),
    ]


def run_experiment():
    rows = []
    for program in programs():
        for policy in (allow(1, arity=2), allow(2, arity=2)):
            flowchart = program.compile()
            outcome = hybrid_mechanism(program, policy, GRID)
            overhead = instrumentation_overhead(flowchart, policy, GRID)

            full = instrument(flowchart, policy)
            optimised = eliminate_dead_surveillance(flowchart, policy)
            agree = all(
                (execute(full, p).value,
                 execute(full, p, capture_env=True).env[VIOLATION_FLAG])
                == (execute(optimised, p).value,
                    execute(optimised, p, capture_env=True).env[VIOLATION_FLAG])
                for p in GRID)

            rows.append({
                "program": program.name,
                "policy": policy.name,
                "hybrid": "static" if outcome.static else "dynamic",
                "bare_steps": overhead["bare_steps"],
                "full_steps": overhead["full_steps"],
                "opt_steps": overhead["optimised_steps"],
                "opt_agrees": agree,
            })
    return rows


def test_e23_efficiency(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E23 (Section 5): cost of enforcement variants",
                  ["program", "policy", "hybrid", "bare_steps",
                   "full_steps", "opt_steps", "opt_agrees"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        assert row["opt_agrees"]
        assert row["bare_steps"] <= row["opt_steps"] <= row["full_steps"]
    # The optimiser wins strictly where dead surveillance exists...
    dead = [row for row in rows if row["program"] == "dead-aux"]
    assert all(row["opt_steps"] < row["full_steps"] for row in dead)
    # ...and the hybrid runs certified pairs at zero overhead.
    clean = [row for row in rows
             if row["program"] == "clean" and row["policy"] == "allow(1)"]
    assert clean[0]["hybrid"] == "static"
