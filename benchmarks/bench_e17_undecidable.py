"""E17 — Theorem 4: no effective procedure builds the maximal mechanism.

Reproduced series, the finite shadow of the proof: for the proof's
program family (r := A(x); output r, policy allow()), (a) certifying
the maximal mechanism's value at 0 requires examining *every* point of
the window — cost grows linearly without bound; (b) the verdict
"M(0) = 0" can flip when the window grows, so no finite check settles
the (*) equivalence M(0) = 0 <=> forall x. A(x) = 0.
"""

from repro.core import (ProductDomain, allow_none,
                        decide_theorem4_output_at_zero, maximal_mechanism,
                        maximality_cost, theorem4_family)
from repro.verify import Table

from _common import emit

#: A(x) = 0 up to the horizon, then 1 — indistinguishable from the zero
#: function on any window below the horizon.
HORIZON = 60


def a_fn(x):
    return 0 if x < HORIZON else 1


def run_experiment():
    rows = []
    for high in (15, 31, 63, 127):
        domain = ProductDomain.integer_grid(0, high, 1)
        q = theorem4_family(a_fn, domain)
        construction = maximal_mechanism(q, allow_none(1), domain)
        rows.append({
            "window": high + 1,
            "evaluations": construction.evaluations,
            "M0_is_zero": decide_theorem4_output_at_zero(construction),
        })
    return rows


def test_e17_theorem4(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E17 (Theorem 4): maximal-mechanism construction cost",
                  ["window", "evaluations", "M0_is_zero"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    # Cost is exactly the window size — linear, unbounded in the limit.
    assert [row["evaluations"] for row in rows] == [row["window"]
                                                    for row in rows]
    # The verdict flips when the window first crosses the horizon.
    verdicts = [row["M0_is_zero"] for row in rows]
    assert verdicts == [True, True, False, False]
