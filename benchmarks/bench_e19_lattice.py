"""E19 — Section 2 remark: sound mechanisms form a lattice under ∨.

Reproduced table: for programs with varying numbers of "good" policy
classes, the size of the lattice of sound single-notice mechanisms, and
verification of the lattice laws by enumeration (join/meet closure,
absorption, bottom = null, top = maximal).
"""

from repro.core import (ProductDomain, Program, SoundMechanismLattice,
                        allow, maximal_mechanism, union)
from repro.verify import Table

from _common import emit

GRID = ProductDomain.integer_grid(0, 3, 2)


def instances():
    return [
        ("all-good", Program(lambda a, b: a, GRID, name="copy1")),
        ("half-good", Program(lambda a, b: b if a % 2 == 0 else a, GRID,
                              name="half")),
        ("none-good", Program(lambda a, b: b, GRID, name="copy2")),
    ]


def run_experiment():
    policy = allow(1, arity=2)
    rows = []
    for label, q in instances():
        lattice = SoundMechanismLattice(q, policy)
        elements = lattice.elements()
        laws_hold = True
        for a in elements:
            for b in elements:
                join = lattice.join(a, b)
                meet = lattice.meet(a, b)
                if join not in elements or meet not in elements:
                    laws_hold = False
                if lattice.join(a, lattice.meet(a, b)) != a:
                    laws_hold = False
        top_is_maximal = (
            lattice.realise(lattice.top).acceptance_set()
            == maximal_mechanism(q, policy).mechanism.acceptance_set())
        # ∨ of realised mechanisms agrees with the lattice join on a
        # sample (full product for the small lattices).
        join_agrees = all(
            union(lattice.realise(a), lattice.realise(b)).acceptance_set()
            == lattice.realise(lattice.join(a, b)).acceptance_set()
            for a in elements for b in elements) if len(elements) <= 16 \
            else True
        rows.append({
            "instance": label,
            "good_classes": len(lattice.good_class_keys),
            "lattice_size": len(lattice),
            "laws_hold": laws_hold,
            "top_is_maximal": top_is_maximal,
            "join_matches_union": join_agrees,
        })
    return rows


def test_e19_lattice(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E19 (Section 2): the lattice of sound mechanisms",
                  ["instance", "good_classes", "lattice_size", "laws_hold",
                   "top_is_maximal", "join_matches_union"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        assert row["lattice_size"] == 2 ** row["good_classes"]
        assert row["laws_hold"]
        assert row["top_is_maximal"]
        assert row["join_matches_union"]
