"""E18 — Section 5: static certification vs dynamic surveillance.

Reproduced table: per (program, policy), the static verdict, the
dynamic per-run acceptance count, and the compiled (transform-assisted)
mechanism's acceptance.  The completeness gap runs both ways:

- dynamic wins on *runs* (forgetting/allow(2): statically rejected, yet
  x2 = 0 runs are accepted at run time);
- static wins on *whole programs* (reconvergence/allow(2): certified —
  the certifier restores the PC label at joins — while flowchart
  surveillance rejects every run);
- the Section 5 transforms recover much of the gap at compile time.
"""

from repro.core import ProductDomain, allow
from repro.flowchart.expr import Const, var
from repro.flowchart.structured import (Assign, If, Skip, StructuredProgram,
                                        While)
from repro.staticflow import (certify, certify_flowchart,
                              compile_with_transforms)
from repro.surveillance import surveillance_mechanism
from repro.verify import Table

from _common import emit

GRID = ProductDomain.integer_grid(0, 2, 2)


def programs():
    return [
        StructuredProgram(
            ["x1", "x2"],
            [Assign("y", var("x1")),
             If(var("x2").eq(0), [Assign("y", Const(0))], [Skip()])],
            name="forgetting"),
        StructuredProgram(
            ["x1", "x2"],
            [If(var("x1").eq(1), [Assign("r", Const(1))],
                [Assign("r", Const(2))]),
             Assign("y", Const(1))],
            name="reconvergence"),
        StructuredProgram(
            ["x1", "x2"],
            [If(var("x1").eq(0), [Assign("y", Const(0))],
                [Assign("y", var("x2"))])],
            name="example9"),
        StructuredProgram(
            ["x1", "x2"],
            [Assign("r", var("x2")),
             While(var("r").ne(0), [Assign("r", var("r") - 1)]),
             Assign("y", var("x1"))],
            name="loop-on-x2"),
    ]


def run_experiment():
    rows = []
    for program in programs():
        for policy in (allow(1, arity=2), allow(2, arity=2)):
            certificate = certify(program, policy)
            cfg_certificate = certify_flowchart(program.compile(), policy)
            dynamic = surveillance_mechanism(program.compile(), policy,
                                             GRID)
            compiled = compile_with_transforms(program, policy, GRID)
            rows.append({
                "program": program.name,
                "policy": policy.name,
                "certified": certificate.certified,
                "cfg_certified": cfg_certificate.certified,
                "dynamic_accepts": len(dynamic.acceptance_set()),
                "compiled_accepts": len(
                    compiled.mechanism.acceptance_set()),
                "transform": compiled.transform_used or "-",
                "domain": len(GRID),
            })
    return rows


def test_e18_static_vs_dynamic(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E18 (Section 5): static vs dynamic vs compiled",
                  ["program", "policy", "certified", "cfg_certified",
                   "dynamic_accepts", "compiled_accepts", "transform",
                   "domain"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    by_key = {(row["program"], row["policy"]): row for row in rows}
    # Dynamic beats static on runs:
    forgetting = by_key[("forgetting", "allow(2)")]
    assert not forgetting["certified"] and forgetting["dynamic_accepts"] > 0
    # Static beats dynamic on whole programs:
    reconvergence = by_key[("reconvergence", "allow(2)")]
    assert reconvergence["certified"]
    assert reconvergence["dynamic_accepts"] == 0
    assert reconvergence["compiled_accepts"] == len(GRID)
    # Loop-on-x2: same pattern through the PC restoration after loops.
    loop = by_key[("loop-on-x2", "allow(1)")]
    assert loop["certified"] and loop["dynamic_accepts"] == 0
    # Example 9: the compiler's transform search finds the residual
    # duplication mechanism.
    example9 = by_key[("example9", "allow(1)")]
    assert not example9["certified"]
    assert example9["compiled_accepts"] == 3  # the x1 = 0 column
    # The CFG-level certifier (FOW control dependence) agrees with the
    # structured one on every reducible program here.
    assert all(row["certified"] == row["cfg_certified"] for row in rows)
