"""E25 — Section 2's database remark: history-dependent enforcement.

Reproduced table: a two-query database session over the Example 2 file
system, under a query-budget history policy.  Claims made executable:
the budget gatekeeper (refusals keyed on query *count*) is sound for
the session policy; a gatekeeper whose lockout is triggered by secret
*content* leaks through its refusal pattern — negative inference across
queries — and the ordinary soundness machinery catches it after
unrolling.
"""

from repro.core import (SecurityPolicy, budget_gatekeeper, check_soundness,
                        content_triggered_gatekeeper,
                        program_as_mechanism, unroll)
from repro.filesystem import (filesystem_domain, read_file_program,
                              reference_monitor)
from repro.verify import Table

from _common import emit

FILE_COUNT = 1
DOMAIN = filesystem_domain(FILE_COUNT, 0, 1)  # (dir, file) per query


def per_query():
    return read_file_program(1, FILE_COUNT, DOMAIN)


def gated_session_policy(length: int, budget: int) -> SecurityPolicy:
    """Per query within budget: the gated view (dir always, file iff
    granted); beyond budget: nothing."""
    arity = 2 * FILE_COUNT

    def filter_fn(*flat):
        outputs = []
        for query_index in range(length):
            chunk = flat[query_index * arity:(query_index + 1) * arity]
            directory, content = chunk
            if query_index < budget:
                outputs.append((directory,
                                content if directory == "YES" else None))
            else:
                outputs.append("exhausted")
        return tuple(outputs)

    return SecurityPolicy(filter_fn, length * arity,
                          name=f"I-gated-budget[{budget}]")


def run_experiment():
    length = 2
    monitor = reference_monitor(per_query(), 1)
    rows = []

    budget_gate = budget_gatekeeper(monitor, budget=1)
    budget_unrolled = unroll(budget_gate, per_query(), length)
    budget_report = check_soundness(budget_unrolled,
                                    gated_session_policy(length, 1))
    rows.append({
        "gatekeeper": "budget[1]",
        "refusals_keyed_on": "query count",
        "sound": budget_report.sound,
        "accepts": len(budget_unrolled.acceptance_set()),
        "sessions": len(budget_unrolled.domain),
    })

    generous = budget_gatekeeper(monitor, budget=2)
    generous_unrolled = unroll(generous, per_query(), length)
    generous_report = check_soundness(generous_unrolled,
                                      gated_session_policy(length, 2))
    rows.append({
        "gatekeeper": "budget[2]",
        "refusals_keyed_on": "query count",
        "sound": generous_report.sound,
        "accepts": len(generous_unrolled.acceptance_set()),
        "sessions": len(generous_unrolled.domain),
    })

    tripwire = content_triggered_gatekeeper(
        monitor, trip=lambda directory, content: content == 1)
    tripwire_unrolled = unroll(tripwire, per_query(), length)
    tripwire_report = check_soundness(tripwire_unrolled,
                                      gated_session_policy(length, 2))
    rows.append({
        "gatekeeper": "tripwire(content=1)",
        "refusals_keyed_on": "secret content",
        "sound": tripwire_report.sound,
        "accepts": len(tripwire_unrolled.acceptance_set()),
        "sessions": len(tripwire_unrolled.domain),
    })
    return rows


def test_e25_history_enforcement(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E25 (Section 2): history-dependent sessions",
                  ["gatekeeper", "refusals_keyed_on", "sound", "accepts",
                   "sessions"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    by_gate = {row["gatekeeper"]: row for row in rows}
    assert by_gate["budget[1]"]["sound"]
    assert by_gate["budget[2]"]["sound"]
    assert not by_gate["tripwire(content=1)"]["sound"]
