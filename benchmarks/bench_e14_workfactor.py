"""E14 — Section 2: the password work-factor collapse (n^k -> n*k).

Reproduced figure: measured guess counts of the brute-force attack vs
the page-boundary attack across alphabet sizes n and lengths k.  Paper
claims: security rests on a work factor of n^k attempts, "however, the
work factor can be reduced to n * k by appropriately placing candidate
passwords across page boundaries and observing page movement".
"""

from repro.channels.password import work_factor_row
from repro.verify import Table

from _common import emit

SETTINGS = [(2, 4), (4, 3), (4, 4), (8, 3), (16, 2)]


def run_experiment():
    return [work_factor_row(n, k) for n, k in SETTINGS]


def test_e14_work_factor(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E14 (Section 2): password work factor, n^k vs n*k",
                  ["n", "k", "brute_guesses", "brute_bound",
                   "paged_guesses", "paged_bound", "speedup"])
    for row in rows:
        row = dict(row)
        row["speedup"] = row["brute_guesses"] / row["paged_guesses"]
        table.add_dict(row)
    emit(table)

    for row in rows:
        assert row["brute_ok"] and row["paged_ok"]
        assert row["brute_guesses"] == row["n"] ** row["k"]
        assert row["paged_guesses"] <= row["n"] * row["k"] + 1
    # The shape: the gap explodes as n and k grow.
    first = rows[0]["brute_guesses"] / rows[0]["paged_guesses"]
    last = rows[-1]["brute_guesses"] / rows[-1]["paged_guesses"]
    assert last > first
