"""E01 — Example 3: the two trivial protection mechanisms.

Reproduced table: for each (program, policy), whether Q-as-its-own-
mechanism and the null mechanism Λ are sound, and their acceptance
counts.  Paper claims: Λ is sound for *every* policy and accepts
nothing; Q itself is sound exactly when it already factors through the
policy.
"""

from repro.core import (ProductDomain, allow, allow_all, allow_none,
                        is_sound, null_mechanism, program_as_mechanism)
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.verify import Table

from _common import emit

GRID = ProductDomain.integer_grid(0, 3, 2)
POLICIES = [allow_none(2), allow(1, arity=2), allow(2, arity=2),
            allow_all(2)]
PROGRAMS = [library.mixer_program(), library.forgetting_program(),
            library.reconvergence_program()]


def run_experiment():
    rows = []
    for flowchart in PROGRAMS:
        q = as_program(flowchart, GRID)
        own = program_as_mechanism(q)
        null = null_mechanism(q)
        for policy in POLICIES:
            rows.append({
                "program": flowchart.name,
                "policy": policy.name,
                "own_sound": is_sound(own, policy),
                "null_sound": is_sound(null, policy),
                "own_accepts": len(own.acceptance_set()),
                "null_accepts": len(null.acceptance_set()),
            })
    return rows


def test_e01_trivial_mechanisms(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E01 (Example 3): trivial mechanisms",
                  ["program", "policy", "own_sound", "null_sound",
                   "own_accepts", "null_accepts"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    # Λ sound everywhere, accepts nothing.
    assert all(row["null_sound"] for row in rows)
    assert all(row["null_accepts"] == 0 for row in rows)
    # Q-as-M: sound for allow(1,2) always; for allow() only when constant.
    for row in rows:
        if row["policy"] == "allow(1, 2)":
            assert row["own_sound"]
        if row["policy"] == "allow()":
            assert row["own_sound"] == (row["program"] == "reconvergence")
