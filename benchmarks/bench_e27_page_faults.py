"""E27 — Section 6: page faults as the second forgotten observable.

    "Our model is useful for modeling phenomena ignored in other models
    — such as running time or page faults."

Reproduced table: the fault-channel program (both arms equal in value
and step count, unequal in memory footprint) under three output models.
Claim made executable: the Observability Postulate is per-observable —
enumerating running time is not enough; the same program flips from
sound to unsound the moment fault counts join the output.  For
contrast, the timing-loop flips one model earlier, and a
footprint-balanced variant stays sound under all three.
"""

from repro.core import (ProductDomain, allow_none, check_soundness,
                        program_as_mechanism)
from repro.core.observability import VALUE_AND_TIME, VALUE_ONLY, with_extras
from repro.flowchart.expr import Const, var
from repro.flowchart.interpreter import as_program
from repro.flowchart.library import fault_channel_program, timing_loop
from repro.flowchart.structured import Assign, If, StructuredProgram
from repro.verify import Table

from _common import emit

GRID = ProductDomain.integer_grid(0, 5, 1)
POLICY = allow_none(1)
MODELS = (("value", VALUE_ONLY),
          ("value+time", VALUE_AND_TIME),
          ("value+time+faults", with_extras("faults")))


def balanced_program():
    """Both arms touch the same number of variables: no fault channel.

        if x1 = 0 then a := b else a := c; y := 1
    """
    return StructuredProgram(
        ["x1"],
        [If(var("x1").eq(0), [Assign("a", var("b"))],
            [Assign("a", var("c"))]),
         Assign("y", Const(1))],
        name="fault-balanced",
    ).compile()


def run_experiment():
    rows = []
    programs = (("timing-loop", timing_loop()),
                ("fault-channel", fault_channel_program()),
                ("fault-balanced", balanced_program()))
    for program_name, flowchart in programs:
        for model_name, model in MODELS:
            q = as_program(flowchart, GRID, model)
            sound = check_soundness(program_as_mechanism(q), POLICY).sound
            rows.append({
                "program": program_name,
                "output_model": model_name,
                "own_mechanism_sound": sound,
            })
    return rows


def test_e27_page_faults(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E27 (Section 6): the observable ladder",
                  ["program", "output_model", "own_mechanism_sound"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    verdict = {(row["program"], row["output_model"]):
               row["own_mechanism_sound"] for row in rows}
    # timing-loop: falls at the time rung.
    assert verdict[("timing-loop", "value")]
    assert not verdict[("timing-loop", "value+time")]
    # fault-channel: survives time, falls at the fault rung.
    assert verdict[("fault-channel", "value")]
    assert verdict[("fault-channel", "value+time")]
    assert not verdict[("fault-channel", "value+time+faults")]
    # balanced footprint: survives all three rungs.
    assert all(verdict[("fault-balanced", model_name)]
               for model_name, _ in MODELS)
