"""E06 — page 48: surveillance vs high-water mark (forgetting ablation).

Reproduced figure: on the page-48 program (`y := x1; if x2 = 0 then
y := 0`) with allow(2), per-input verdicts of Ms and Mh, and the
completeness comparison across domain sizes.  Paper claims: Mh always
outputs Λ; Ms outputs Λ only when x2 != 0; hence Ms > Mh.
"""

from repro.core import Order, ProductDomain, allow, compare
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.surveillance import highwater_mechanism, surveillance_mechanism
from repro.verify import Table

from _common import emit


def run_experiment():
    rows = []
    for high in (1, 3, 7):
        grid = ProductDomain.integer_grid(0, high, 2)
        flowchart = library.forgetting_program()
        policy = allow(2, arity=2)
        q = as_program(flowchart, grid)
        surveillance = surveillance_mechanism(flowchart, policy, grid,
                                              program=q)
        highwater = highwater_mechanism(flowchart, policy, grid, program=q)
        comparison = compare(surveillance, highwater)
        rows.append({
            "domain": len(grid),
            "Ms_accepts": comparison.first_accepts,
            "Mh_accepts": comparison.second_accepts,
            "order": str(comparison.order),
            "Ms_accepts_only_x2_eq_0": (
                surveillance.acceptance_set()
                == frozenset(p for p in grid if p[1] == 0)),
        })
    return rows


def test_e06_highwater_comparison(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E06 (p.48): surveillance (forgets) vs high-water (doesn't)",
                  ["domain", "Ms_accepts", "Mh_accepts", "order",
                   "Ms_accepts_only_x2_eq_0"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        assert row["Mh_accepts"] == 0            # Mh always Λ
        assert row["Ms_accepts_only_x2_eq_0"]    # Ms rejects iff x2 != 0
        assert row["order"] == str(Order.FIRST_MORE)  # Ms > Mh
