"""E11 — Section 2: the timing channel of the constant-1 loop program.

Reproduced figure: Q(x) = 1 for all x, but steps grow with x.  Paper
claims: Q as its own mechanism is sound for allow() under value-only
output, unsound once the output is (value, steps); observing time
recovers x exactly.  The series charts channel capacity vs domain size.
"""

from repro.channels.timing import leak_bits, timing_report
from repro.core import ProductDomain
from repro.flowchart.library import timing_loop
from repro.verify import Table

from _common import emit


def run_experiment():
    rows = []
    for high in (3, 7, 15, 31):
        row = timing_report(domain_high=high)
        row["domain_high"] = high
        rows.append(row)
    return rows


def test_e11_timing_channel(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E11 (Section 2): constant function, observable time",
                  ["domain_high", "domain_size", "sound_value_only",
                   "sound_with_time", "leak_bits", "domain_bits",
                   "exact_recovery"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        assert row["sound_value_only"]
        assert not row["sound_with_time"]
        assert row["exact_recovery"]
        # The channel carries the whole input: capacity = log2 |domain|.
        assert abs(row["leak_bits"] - row["domain_bits"]) < 1e-9


def test_e11b_clock_quantization(benchmark):
    """The channel under a coarse clock: capacity degrades with the
    quantum and closes once the quantum exceeds the timing spread."""
    from repro.channels.timing import quantization_series

    rows = benchmark(lambda: quantization_series(domain_high=31,
                                                 quanta=(1, 2, 4, 8, 16,
                                                         64, 1024)))

    table = Table("E11b: timing-channel capacity vs clock quantum",
                  ["quantum", "leak_bits", "domain_bits"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    capacities = [row["leak_bits"] for row in rows]
    assert capacities[0] == rows[0]["domain_bits"]   # exact clock: all bits
    assert capacities == sorted(capacities, reverse=True)
    assert capacities[-1] == 0.0                     # coarse clock: closed
