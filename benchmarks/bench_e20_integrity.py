"""E20 — Section 2's second question: data security (extension).

The paper asserts without proof that its methods also handle the
operator/"data security" question (Popek): does the output retain all
the information it should?  Reproduced table: for the system-table
program and a range of mechanisms, confinement soundness vs integrity
preservation — including the tension (suppression helps one, hurts the
other) and the guarded sweet spot.
"""

from repro.core import (ProductDomain, Program, ProtectionMechanism,
                        ViolationNotice, allow, check_guarded,
                        null_mechanism, program_as_mechanism,
                        retain_inputs)
from repro.verify import Table

from _common import emit

GRID = ProductDomain.integer_grid(0, 2, 2)


def mechanisms():
    q = Program(lambda a, b: (a, b), GRID, name="state")
    slice_q = Program(lambda a, b: a, GRID, name="slice")
    return [
        ("identity", program_as_mechanism(q)),
        ("null", null_mechanism(q)),
        ("suppress-b>0", ProtectionMechanism(
            lambda a, b: q(a, b) if b == 0 else ViolationNotice("Λ"), q,
            name="suppressing")),
        ("allowed-slice", program_as_mechanism(slice_q)),
    ]


def run_experiment():
    confinement = allow(1, arity=2)
    integrity = retain_inputs(1, arity=2)
    rows = []
    for label, mechanism in mechanisms():
        report = check_guarded(mechanism, confinement, integrity)
        rows.append({
            "mechanism": label,
            "confining": report.confinement.sound,
            "preserving": report.integrity.preserving,
            "guarded": report.guarded,
        })
    return rows


def test_e20_data_security(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E20 (Section 2 dual): confinement vs data security",
                  ["mechanism", "confining", "preserving", "guarded"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    by_label = {row["mechanism"]: row for row in rows}
    # The tension: each trivial mechanism wins exactly one side.
    assert by_label["null"]["confining"] and not by_label["null"]["preserving"]
    assert (by_label["identity"]["preserving"]
            and not by_label["identity"]["confining"])
    # Selective suppression fails both: the notice leaks (conditioned on
    # denied data) AND collapses designated states.
    assert not by_label["suppress-b>0"]["confining"]
    assert not by_label["suppress-b>0"]["preserving"]
    # Outputting exactly the allowed-and-designated slice threads both.
    assert by_label["allowed-slice"]["guarded"]
