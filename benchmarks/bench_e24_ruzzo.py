"""E24 — Ruzzo's observations (Section 4), on real Turing machines.

Reproduced table: Q(x1, x2) = "machine x1 halts on its own index after
exactly x2 steps", policy allow(1).  Paper (Ruzzo): the maximal
mechanism gives Λ at x1 iff machine x1 halts — the halting problem, so
the maximal mechanism is not recursive; and soundness of Q for allow()
is constancy of Q, hence undecidable.

Executable projection: per machine row, the window-bounded maximal
mechanism's verdict across growing step windows.  Rows of fast halters
stabilise to Λ; the slow halter's verdict *flips* when the window
crosses its halting time; the looper's row reads "not yet" at every
window — and nothing bounded distinguishes that from "never".
"""

from repro.turing import machine, maximal_rejects, soundness_is_constancy
from repro.verify import Table

from _common import emit

#: Staggered halting profile under the default enumeration (verified by
#: the unit tests): steps-to-halt on own index.
INDICES = {0: 1, 37: 2, 74: 3, 111: 112, 148: None}  # None = never
WINDOWS = (5, 50, 150)


def run_experiment():
    rows = []
    for window in WINDOWS:
        verdicts = maximal_rejects(sorted(INDICES), max_steps=window)
        for index in sorted(INDICES):
            rows.append({
                "window": window,
                "machine": index,
                "halts_at": INDICES[index] if INDICES[index] else "never",
                "Mmax_row_is_violation": verdicts[index],
            })
    reductions = [soundness_is_constancy(index, input_range=4,
                                         max_steps=60)
                  for index in sorted(INDICES)]
    return rows, reductions


def test_e24_ruzzo(benchmark):
    rows, reductions = benchmark(run_experiment)

    table = Table("E24 (Ruzzo): the maximal mechanism is a halting oracle",
                  ["window", "machine", "halts_at",
                   "Mmax_row_is_violation"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    by_key = {(row["window"], row["machine"]): row for row in rows}
    # Fast halters: Λ as soon as the window covers their halting time.
    for window in WINDOWS:
        for index, halts_at in INDICES.items():
            expected = halts_at is not None and halts_at <= window
            assert (by_key[(window, index)]["Mmax_row_is_violation"]
                    == expected), (window, index)
    # The slow halter flips between windows 50 and 150 — the verdict is
    # window-dependent, i.e. not computable from any bounded check.
    assert not by_key[(50, 111)]["Mmax_row_is_violation"]
    assert by_key[(150, 111)]["Mmax_row_is_violation"]
    # The looper never flips.
    assert all(not by_key[(window, 148)]["Mmax_row_is_violation"]
               for window in WINDOWS)
    # Reduction: soundness verdict == constancy verdict on every sample.
    assert all(constant == sound for constant, sound in reductions)
