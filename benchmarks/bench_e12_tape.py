"""E12 — Section 2: the one-way tape and tab(i).

Reproduced figure: reading block 2 under allow(2).  Paper claims: the
sequential reader cannot be sound (its time encodes len(z1)); constant-
time tab restores soundness; a tab whose cost depends on skipped cell
counts re-opens the leak.
"""

from repro.channels.tape import (per_cell_tab_reader, sequential_reader,
                                 tab_reader, tape_domain)
from repro.core import allow, check_soundness, program_as_mechanism
from repro.verify import Table

from _common import emit


def run_experiment():
    rows = []
    for block_index, block_count, max_length in ((2, 2, 2), (2, 3, 2),
                                                 (3, 3, 2)):
        policy = allow(block_index, arity=block_count)
        readers = {
            "sequential": sequential_reader(block_index, block_count,
                                            max_length),
            "tab O(1)": tab_reader(block_index, block_count, max_length),
            "tab O(blocks)": tab_reader(block_index, block_count,
                                        max_length, constant_time=False),
            "tab O(cells) broken": per_cell_tab_reader(
                block_index, block_count, max_length),
        }
        for label, q in readers.items():
            report = check_soundness(program_as_mechanism(q), policy)
            rows.append({
                "target_block": block_index,
                "blocks": block_count,
                "reader": label,
                "sound": report.sound,
                "domain": len(q.domain),
            })
    return rows


def test_e12_tape(benchmark):
    rows = benchmark(run_experiment)

    table = Table("E12 (Section 2): one-way tape — sequential vs tab(i)",
                  ["target_block", "blocks", "reader", "sound", "domain"])
    for row in rows:
        table.add_dict(row)
    emit(table)

    for row in rows:
        if row["reader"] == "sequential":
            assert not row["sound"]
        elif row["reader"].startswith("tab O(1)"):
            assert row["sound"]
        elif row["reader"] == "tab O(blocks)":
            assert row["sound"]       # block count is public structure
        else:
            assert not row["sound"]   # per-cell cost leaks lengths again
