"""Differential test: dead-surveillance elimination vs full surveillance.

Satellite of the flowlint PR: across the whole figure library, every
allow policy and every grid input, the optimised instrumentation of
:func:`repro.staticflow.hybrid.eliminate_dead_surveillance` must agree
with the unoptimised :func:`repro.surveillance.instrument.instrument`
— same output value, same violation verdict — and both must agree with
the interpreter-level surveillance, end-to-end.
"""

import pytest

from repro.core import ProductDomain
from repro.flowchart.fastpath import run_flowchart
from repro.flowchart.library import extended_suite
from repro.staticflow import eliminate_dead_surveillance
from repro.surveillance.dynamic import surveil
from repro.surveillance.instrument import VIOLATION_FLAG, instrument
from repro.verify import all_allow_policies

FUEL = 200_000


def verdict(flowchart, inputs):
    """(violated, value) of an instrumented flowchart run."""
    result = run_flowchart(flowchart, inputs, fuel=FUEL, capture_env=True)
    violated = result.env.get(VIOLATION_FLAG, 0) == 1
    return violated, (None if violated else result.value)


@pytest.mark.parametrize("flowchart", extended_suite(),
                         ids=lambda fc: fc.name)
def test_optimised_agrees_with_full_surveillance(flowchart):
    grid = ProductDomain.integer_grid(0, 2, flowchart.arity)
    for policy in all_allow_policies(flowchart.arity):
        full = instrument(flowchart, policy)
        optimised = eliminate_dead_surveillance(flowchart, policy)
        # The optimisation must actually be one: never more boxes.
        assert len(optimised.boxes) <= len(full.boxes)
        for point in grid:
            expected = verdict(full, point)
            observed = verdict(optimised, point)
            assert observed == expected, (
                flowchart.name, policy.name, point)

            # And both match the interpreter-level mechanism.
            run = surveil(flowchart, point, policy.allowed, fuel=FUEL)
            assert expected[0] == run.violated, (
                flowchart.name, policy.name, point)
            if not run.violated:
                assert expected[1] == run.outcome
