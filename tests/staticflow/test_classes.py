"""Unit tests for repro.staticflow.classes (security-class lattices)."""

from repro.staticflow.classes import (chain_lattice, label_of_indices,
                                      powerset_lattice)


class TestPowersetLattice:
    def test_size(self):
        assert len(powerset_lattice(3).elements) == 8

    def test_join_is_union(self):
        lattice = powerset_lattice(3)
        assert (lattice.join(frozenset({1}), frozenset({2, 3}))
                == frozenset({1, 2, 3}))

    def test_bottom_is_empty(self):
        lattice = powerset_lattice(2)
        assert lattice.bottom == frozenset()
        for element in lattice.elements:
            assert lattice.leq(lattice.bottom, element)

    def test_leq_is_inclusion(self):
        lattice = powerset_lattice(2)
        assert lattice.leq(frozenset({1}), frozenset({1, 2}))
        assert not lattice.leq(frozenset({1}), frozenset({2}))

    def test_nary_join(self):
        lattice = powerset_lattice(3)
        assert (lattice.join(frozenset({1}), frozenset({2}), frozenset({3}))
                == frozenset({1, 2, 3}))


class TestChainLattice:
    def test_fenton_chain(self):
        lattice = chain_lattice(["null", "priv"])
        assert lattice.bottom == "null"
        assert lattice.join("null", "priv") == "priv"
        assert lattice.leq("null", "priv")
        assert not lattice.leq("priv", "null")

    def test_three_level_chain(self):
        lattice = chain_lattice(["unclassified", "secret", "top-secret"])
        assert lattice.join("secret", "unclassified") == "secret"
        assert lattice.join("secret", "top-secret") == "top-secret"
        assert lattice.leq("unclassified", "top-secret")

    def test_join_laws(self):
        lattice = chain_lattice(["a", "b", "c"])
        for x in lattice.elements:
            for y in lattice.elements:
                assert lattice.join(x, y) == lattice.join(y, x)
                assert lattice.join(x, x) == x


def test_label_of_indices():
    assert label_of_indices([2, 1]) == frozenset({1, 2})
