"""Unit tests for repro.staticflow.hybrid — efficient enforcement."""

import pytest

from repro.core import ProductDomain, allow, allow_all, check_soundness
from repro.flowchart.expr import Const, var
from repro.flowchart.interpreter import execute
from repro.flowchart.structured import (Assign, If, StructuredProgram,
                                        While)
from repro.staticflow import (eliminate_dead_surveillance,
                              hybrid_mechanism, instrumentation_overhead,
                              label_dependence_closure)
from repro.surveillance.instrument import VIOLATION_FLAG, instrument
from repro.verify import all_allow_policies

GRID = ProductDomain.integer_grid(0, 2, 2)


def clean_program():
    return StructuredProgram(["x1", "x2"], [Assign("y", var("x1") * 2)],
                             name="clean")


def dirty_program():
    return StructuredProgram(
        ["x1", "x2"],
        [Assign("y", var("x1")),
         If(var("x2").eq(0), [Assign("y", Const(0))], [])],
        name="forgetting")


def dead_aux_program():
    """y depends on x1 only; audit/log are a dead side computation."""
    return StructuredProgram(
        ["x1", "x2"],
        [Assign("audit", var("x2") * 3),
         Assign("log", var("audit") + 1),
         Assign("y", var("x1"))],
        name="with-dead-aux")


class TestHybridMechanism:
    def test_certified_pair_runs_static(self):
        outcome = hybrid_mechanism(clean_program(), allow(1, arity=2), GRID)
        assert outcome.static
        assert outcome.mechanism.acceptance_set() == frozenset(GRID)

    def test_uncertified_pair_falls_back_to_surveillance(self):
        outcome = hybrid_mechanism(dirty_program(), allow(2, arity=2), GRID)
        assert not outcome.static
        accepted = outcome.mechanism.acceptance_set()
        assert accepted == frozenset(p for p in GRID if p[1] == 0)

    def test_hybrid_always_sound(self):
        for program in (clean_program(), dirty_program(),
                        dead_aux_program()):
            for policy in all_allow_policies(2):
                outcome = hybrid_mechanism(program, policy, GRID)
                assert check_soundness(outcome.mechanism, policy).sound, (
                    program.name, policy.name)


class TestDependenceClosure:
    def test_dead_variables_excluded(self):
        closure = label_dependence_closure(dead_aux_program().compile())
        assert closure == {"x1", "y"}

    def test_control_flow_pulls_in_tested_variables(self):
        closure = label_dependence_closure(dirty_program().compile())
        assert closure >= {"x1", "x2", "y"}

    def test_loop_variables_needed(self):
        program = StructuredProgram(
            ["x1"],
            [Assign("r", var("x1")),
             While(var("r").ne(0), [Assign("r", var("r") - 1)]),
             Assign("y", Const(1))],
            name="loop")
        assert label_dependence_closure(program.compile()) >= {"r", "x1",
                                                               "y"}


class TestDeadSurveillanceElimination:
    @pytest.mark.parametrize("make_program", [dead_aux_program,
                                              dirty_program,
                                              clean_program])
    def test_output_preserving(self, make_program):
        """Optimised instrumentation agrees with the full one on value
        AND violation flag, for every policy, on every input."""
        flowchart = make_program().compile()
        for policy in all_allow_policies(2):
            full = instrument(flowchart, policy)
            optimised = eliminate_dead_surveillance(flowchart, policy)
            for point in GRID:
                full_run = execute(full, point, capture_env=True)
                optimised_run = execute(optimised, point,
                                        capture_env=True)
                assert full_run.value == optimised_run.value
                assert (full_run.env[VIOLATION_FLAG]
                        == optimised_run.env[VIOLATION_FLAG])

    def test_strictly_fewer_boxes_with_dead_aux(self):
        flowchart = dead_aux_program().compile()
        policy = allow(1, arity=2)
        full = instrument(flowchart, policy)
        optimised = eliminate_dead_surveillance(flowchart, policy)
        assert len(optimised.boxes) < len(full.boxes)

    def test_no_change_when_everything_is_live(self):
        flowchart = dirty_program().compile()
        policy = allow(2, arity=2)
        full = instrument(flowchart, policy)
        optimised = eliminate_dead_surveillance(flowchart, policy)
        assert len(optimised.boxes) == len(full.boxes)

    def test_timed_variant_supported(self):
        flowchart = dead_aux_program().compile()
        policy = allow(1, arity=2)
        optimised = eliminate_dead_surveillance(flowchart, policy,
                                                timed=True)
        for point in GRID:
            run = execute(optimised, point, capture_env=True)
            assert run.env[VIOLATION_FLAG] == 0
            assert run.value == point[0]


class TestOverheadReport:
    def test_ordering(self):
        flowchart = dead_aux_program().compile()
        report = instrumentation_overhead(flowchart, allow(1, arity=2),
                                          GRID)
        assert (report["bare_steps"] < report["optimised_steps"]
                <= report["full_steps"])
        assert (report["bare_boxes"] < report["optimised_boxes"]
                <= report["full_boxes"])
