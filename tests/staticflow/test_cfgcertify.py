"""Unit tests for repro.staticflow.cfgcertify — CFG-level certification."""

import pytest

from repro.core import (ProductDomain, allow, allow_all, check_soundness,
                        program_as_mechanism)
from repro.core.errors import PolicyError
from repro.flowchart import library
from repro.flowchart.builder import FlowchartBuilder
from repro.flowchart.expr import Const, var
from repro.flowchart.interpreter import as_program
from repro.staticflow.cfgcertify import (certify_flowchart,
                                         control_dependencies)
from repro.verify import all_allow_policies

GRID2 = ProductDomain.integer_grid(0, 2, 2)


class TestControlDependence:
    def test_diamond_arms_depend_on_decision(self):
        flowchart = library.max_program()
        decision = flowchart.decision_ids()[0]
        dependencies = control_dependencies(flowchart)
        arm_nodes = [node for node, deps in dependencies.items()
                     if decision in deps]
        assert len(arm_nodes) == 2  # the two assignment arms

    def test_join_does_not_depend_on_decision(self):
        flowchart = library.reconvergence_program()
        decision = flowchart.decision_ids()[0]
        dependencies = control_dependencies(flowchart)
        # The y := 1 after the join is NOT control-dependent.
        for node_id, box in flowchart.boxes.items():
            from repro.flowchart.boxes import AssignBox

            if isinstance(box, AssignBox) and box.target == "y":
                assert decision not in dependencies[node_id]

    def test_loop_body_depends_on_loop_test(self):
        flowchart = library.timing_loop()
        decision = flowchart.decision_ids()[0]
        dependencies = control_dependencies(flowchart)
        body_nodes = [node for node, deps in dependencies.items()
                      if decision in deps]
        assert body_nodes  # the decrement body

    def test_straight_line_has_no_dependencies(self):
        dependencies = control_dependencies(library.mixer_program())
        assert all(not deps for deps in dependencies.values())


class TestVerdicts:
    def test_paper_programs(self):
        cases = [
            (library.reconvergence_program(), allow(2, arity=2), True),
            (library.forgetting_program(), allow(2, arity=2), False),
            (library.example8_program(), allow(2, arity=2), False),
            (library.example9_program(), allow(1, arity=2), False),
            (library.mixer_program(), allow_all(2), True),
            (library.mixer_program(), allow(1, arity=2), False),
        ]
        for flowchart, policy, expected in cases:
            certificate = certify_flowchart(flowchart, policy)
            assert certificate.certified == expected, (flowchart.name,
                                                       policy.name)

    def test_loop_certifies_when_output_clean(self):
        certificate = certify_flowchart(library.timing_loop(),
                                        allow(arity=1))
        assert certificate.certified  # y = 1 constant, value-only model

    def test_which_halt_is_reached_counts(self):
        """Two halts selected by a denied test: rejected even though
        each path's y label is clean."""
        builder = FlowchartBuilder(["x1", "x2"], name="two-halts")
        then_arm = builder.label("t")
        else_arm = builder.label("e")
        builder.start()
        builder.decide(var("x1").eq(0), then_to=then_arm, else_to=else_arm)
        builder.define(then_arm)
        builder.assign("y", Const(1))
        builder.halt()
        builder.define(else_arm)
        builder.assign("y", Const(1))
        builder.halt()
        flowchart = builder.build()
        certificate = certify_flowchart(flowchart, allow(2, arity=2))
        assert not certificate.certified

    def test_policy_validation(self):
        from repro.core import content_dependent

        with pytest.raises(PolicyError):
            certify_flowchart(library.mixer_program(),
                              content_dependent(lambda a, b: a, arity=2))
        with pytest.raises(PolicyError):
            certify_flowchart(library.mixer_program(), allow(1, arity=3))


class TestAgreementWithStructuredCertifier:
    def test_on_compiled_library_programs(self):
        """On reducible (structured-origin) flowcharts the CFG certifier
        and the structured certifier agree."""
        from repro.flowchart.expr import var as v
        from repro.flowchart.structured import (Assign, If, Skip,
                                                StructuredProgram, While)
        from repro.staticflow import certify

        programs = [
            StructuredProgram(["x1", "x2"],
                              [Assign("y", v("x1") + v("x2"))], name="mix"),
            StructuredProgram(["x1", "x2"],
                              [Assign("y", v("x1")),
                               If(v("x2").eq(0), [Assign("y", Const(0))],
                                  [Skip()])], name="forget"),
            StructuredProgram(["x1", "x2"],
                              [If(v("x1").eq(1), [Assign("r", Const(1))],
                                  [Assign("r", Const(2))]),
                               Assign("y", Const(1))], name="reconv"),
            StructuredProgram(["x1", "x2"],
                              [Assign("r", v("x2")),
                               While(v("r").ne(0),
                                     [Assign("r", v("r") - 1)]),
                               Assign("y", v("x1"))], name="loop2"),
        ]
        for program in programs:
            flowchart = program.compile()
            for policy in all_allow_policies(2):
                structured = certify(program, policy).certified
                cfg = certify_flowchart(flowchart, policy).certified
                assert structured == cfg, (program.name, policy.name)

    def test_certified_implies_q_sound(self):
        for flowchart in library.extended_suite():
            domain = ProductDomain.integer_grid(0, 2, flowchart.arity)
            for policy in all_allow_policies(flowchart.arity):
                if certify_flowchart(flowchart, policy).certified:
                    q = as_program(flowchart, domain)
                    assert check_soundness(program_as_mechanism(q), policy,
                                           domain).sound, (flowchart.name,
                                                           policy.name)


class TestIrreducibleControlFlow:
    def test_certifier_handles_multi_entry_loop_shape(self):
        """A graph no structured program compiles to: two decisions
        jumping into a shared tail."""
        builder = FlowchartBuilder(["x1", "x2"], name="irreducible")
        shared = builder.label("shared")
        other = builder.label("other")
        builder.start()
        builder.decide(var("x1").eq(0), then_to=shared, else_to=other)
        builder.define(other)
        builder.decide(var("x2").eq(0), then_to=shared, else_to=shared)
        builder.define(shared)
        builder.assign("y", Const(7))
        builder.halt()
        flowchart = builder.build()
        # y = 7 always; both tests reconverge at `shared`, so nothing
        # flows into y: certified even for allow().
        certificate = certify_flowchart(flowchart, allow(arity=2))
        assert certificate.certified
        # And the claim is true: Q is constant.
        q = as_program(flowchart, GRID2)
        assert q.is_constant()
