"""Unit tests for repro.staticflow.certify (Denning-style certification)."""

import pytest

from repro.core import ProductDomain, allow, allow_all, allow_none
from repro.core.errors import PolicyError
from repro.flowchart.expr import Const, var
from repro.flowchart.structured import (Assign, If, Skip, StructuredProgram,
                                        While)
from repro.staticflow.certify import analyse, certify
from repro.surveillance.dynamic import surveillance_mechanism
from repro.verify import all_allow_policies


def program_forgetting():
    return StructuredProgram(
        ["x1", "x2"],
        [Assign("y", var("x1")),
         If(var("x2").eq(0), [Assign("y", Const(0))], [Skip()])],
        name="forgetting")


class TestAnalyse:
    def test_data_flow(self):
        program = StructuredProgram(
            ["x1", "x2"], [Assign("y", var("x1") + var("x2"))])
        analysis = analyse(program)
        assert analysis.output_label(program) == {1, 2}

    def test_implicit_flow_through_guard(self):
        program = StructuredProgram(
            ["x1"], [If(var("x1").eq(0), [Assign("y", Const(1))],
                        [Assign("y", Const(2))])])
        analysis = analyse(program)
        assert analysis.output_label(program) == {1}

    def test_merge_is_union_over_paths(self):
        analysis = analyse(program_forgetting())
        # Static analysis cannot forget: y may still carry x1 (else
        # path) and picks up x2 (guard) — the union.
        assert analysis.output_label(program_forgetting()) == {1, 2}

    def test_while_fixpoint(self):
        # Guard initially reads r (no inputs); after one body pass r
        # carries x1 — the fixpoint must catch the second-order flow.
        program = StructuredProgram(
            ["x1"],
            [Assign("r", var("x1")),
             While(var("r").ne(0),
                   [Assign("y", var("y") + 1), Assign("r", var("r") - 1)])],
            name="loopy")
        analysis = analyse(program)
        assert analysis.output_label(program) == {1}
        assert analysis.iterations >= 2

    def test_loop_carried_taint(self):
        # x2 enters y only through a loop-carried variable.
        program = StructuredProgram(
            ["x1", "x2"],
            [Assign("r", var("x1")),
             While(var("r").ne(0),
                   [Assign("s", var("x2")), Assign("r", var("r") - 1)]),
             Assign("y", var("s"))])
        analysis = analyse(program)
        assert analysis.output_label(program) >= {1, 2}

    def test_untouched_output_is_clean(self):
        program = StructuredProgram(["x1"], [Assign("r", var("x1"))])
        assert analyse(program).output_label(program) == set()


class TestCertify:
    def test_certified_iff_label_within_policy(self):
        program = program_forgetting()
        assert not certify(program, allow(2, arity=2)).certified
        assert not certify(program, allow(1, arity=2)).certified
        assert certify(program, allow_all(2)).certified

    def test_certificate_reports_labels(self):
        certificate = certify(program_forgetting(), allow(2, arity=2))
        assert certificate.output_label == {1, 2}
        assert certificate.allowed == {2}
        assert bool(certificate) is False

    def test_constant_program_certified_for_allow_none(self):
        program = StructuredProgram(["x1"], [Assign("y", Const(7))])
        assert certify(program, allow_none(1)).certified

    def test_arity_mismatch_rejected(self):
        with pytest.raises(PolicyError):
            certify(program_forgetting(), allow(1, arity=3))

    def test_non_allow_policy_rejected(self):
        from repro.core import content_dependent

        with pytest.raises(PolicyError):
            certify(program_forgetting(),
                    content_dependent(lambda a, b: a, arity=2))


class TestCertificationSoundness:
    """Certified ⇒ Q run unmodified is a *sound* mechanism.

    That is the guarantee static enforcement rests on.  Completeness
    relative to dynamic surveillance goes both ways (experiment E18):
    dynamic accepts individual runs of statically-rejected programs, and
    static certifies whole programs whose every run dynamic rejects
    (PC-label restoration at joins vs monotone C̄).
    """

    PROGRAMS = [
        program_forgetting(),
        StructuredProgram(["x1", "x2"],
                          [Assign("y", var("x1") * var("x2"))], name="prod"),
        StructuredProgram(["x1", "x2"],
                          [If(var("x1").gt(0), [Assign("y", var("x2"))],
                              [Assign("y", Const(0))])], name="guarded"),
        StructuredProgram(["x1"],
                          [Assign("r", var("x1")),
                           While(var("r").ne(0),
                                 [Assign("y", var("y") + var("r")),
                                  Assign("r", var("r") - 1)])],
                          name="loop-sum"),
        StructuredProgram(["x1", "x2"],
                          [If(var("x1").eq(1), [Assign("r", Const(1))],
                              [Assign("r", Const(2))]),
                           Assign("y", Const(1))], name="reconvergence"),
    ]

    def test_certified_implies_q_is_sound(self):
        from repro.core import check_soundness, program_as_mechanism
        from repro.flowchart.interpreter import as_program

        for program in self.PROGRAMS:
            arity = len(program.input_variables)
            flowchart = program.compile()
            domain = ProductDomain.integer_grid(0, 2, arity)
            for policy in all_allow_policies(arity):
                if certify(program, policy).certified:
                    q = as_program(flowchart, domain)
                    report = check_soundness(program_as_mechanism(q), policy,
                                             domain)
                    assert report.sound, (program.name, policy.name)

    def test_dynamic_beats_static_on_runs(self):
        """Forgetting program, allow(2): statically rejected, yet
        surveillance accepts its x2 = 0 runs."""
        program = program_forgetting()
        policy = allow(2, arity=2)
        assert not certify(program, policy).certified
        domain = ProductDomain.integer_grid(0, 2, 2)
        mechanism = surveillance_mechanism(program.compile(), policy, domain)
        assert len(mechanism.acceptance_set()) > 0

    def test_static_beats_dynamic_on_whole_programs(self):
        """Reconvergence, allow(2): certified, yet surveillance rejects
        every run (C̄ never forgets the branch on x1)."""
        program = self.PROGRAMS[-1]
        policy = allow(2, arity=2)
        assert certify(program, policy).certified
        domain = ProductDomain.integer_grid(0, 2, 2)
        mechanism = surveillance_mechanism(program.compile(), policy, domain)
        assert mechanism.acceptance_set() == frozenset()
