"""Unit tests for repro.staticflow.compile (the Section 5 compiler)."""

from repro.core import (ProductDomain, allow, allow_all, allow_none,
                        check_soundness, is_violation)
from repro.flowchart.expr import Const, var
from repro.flowchart.structured import (Assign, If, Skip, StructuredProgram,
                                        While)
from repro.staticflow.compile import (compile_per_policy,
                                      compile_with_transforms,
                                      static_mechanism)

GRID2 = ProductDomain.integer_grid(0, 2, 2)


def program_clean():
    """y depends on x1 only — certifiable for allow(1)."""
    return StructuredProgram(["x1", "x2"], [Assign("y", var("x1") * 2)],
                             name="clean")


def program_reconvergence():
    """Constant 1 via a branch on x1 — Example 7 material."""
    return StructuredProgram(
        ["x1", "x2"],
        [If(var("x1").eq(1), [Assign("r", Const(1))],
            [Assign("r", Const(2))]),
         Assign("y", Const(1))],
        name="reconvergence")


def program_example9():
    return StructuredProgram(
        ["x1", "x2"],
        [If(var("x1").eq(0), [Assign("y", Const(0))],
            [Assign("y", var("x2"))])],
        name="example9")


class TestStaticMechanism:
    def test_certified_runs_unmodified(self):
        mechanism = static_mechanism(program_clean(), allow(1, arity=2),
                                     GRID2)
        assert mechanism.acceptance_set() == frozenset(GRID2)
        assert "static" in mechanism.name

    def test_rejected_pulls_the_plug(self):
        mechanism = static_mechanism(program_clean(), allow(2, arity=2),
                                     GRID2)
        assert mechanism.acceptance_set() == frozenset()

    def test_both_outcomes_sound(self):
        for policy in (allow(1, arity=2), allow(2, arity=2), allow_all(2),
                       allow_none(2)):
            mechanism = static_mechanism(program_clean(), policy, GRID2)
            assert check_soundness(mechanism, policy).sound


class TestTransformingCompiler:
    def test_certified_needs_no_transform(self):
        outcome = compile_with_transforms(program_clean(),
                                          allow(1, arity=2), GRID2)
        assert outcome.transform_used is None
        assert outcome.certificate.certified
        assert outcome.mechanism.acceptance_set() == frozenset(GRID2)

    def test_reconvergence_certified_without_transform(self):
        """Structured certification restores the PC label at the join —
        the same insight the if-then-else transform makes explicit at
        the flowchart level — so the constant-1 program certifies
        directly, even though flowchart surveillance rejects all its
        runs (experiment E07)."""
        outcome = compile_with_transforms(program_reconvergence(),
                                          allow(2, arity=2), GRID2)
        assert outcome.certificate.certified
        assert outcome.transform_used is None
        assert outcome.mechanism.acceptance_set() == frozenset(GRID2)

    def test_example9_residual_mechanism(self):
        """Duplication leaves a residual run-time division: accept the
        x1 = 0 runs, notice otherwise."""
        outcome = compile_with_transforms(program_example9(),
                                          allow(1, arity=2), GRID2)
        accepted = outcome.mechanism.acceptance_set()
        assert accepted == frozenset(p for p in GRID2 if p[0] == 0)

    def test_hopeless_program_rejected(self):
        """y = x2 exactly: no transform can save allow(1)."""
        program = StructuredProgram(["x1", "x2"],
                                    [Assign("y", var("x2"))], name="copy2")
        outcome = compile_with_transforms(program, allow(1, arity=2), GRID2)
        assert outcome.mechanism.acceptance_set() == frozenset()

    def test_compiled_mechanisms_are_sound(self):
        for program in (program_clean(), program_reconvergence(),
                        program_example9()):
            for policy in (allow(1, arity=2), allow(2, arity=2),
                           allow_none(2)):
                outcome = compile_with_transforms(program, policy, GRID2)
                assert check_soundness(outcome.mechanism, policy).sound, (
                    program.name, policy.name)

    def test_loop_program_through_while_transform(self):
        program = StructuredProgram(
            ["x1", "x2"],
            [Assign("r", var("x2")),
             While(var("r").ne(0), [Assign("r", var("r") - 1)]),
             Assign("y", var("x1"))],
            name="loop-on-x2")
        # Value-only observability: y = x1 exactly.  The structured
        # certifier restores the PC after the loop, so the program
        # certifies directly — even though the flowchart surveillance
        # mechanism (monotone C̄) rejects every run.  Static here is
        # *more* complete than dynamic; E18 charts both directions.
        outcome = compile_with_transforms(program, allow(1, arity=2), GRID2)
        assert outcome.certificate.certified
        assert outcome.mechanism.acceptance_set() == frozenset(GRID2)
        from repro.surveillance import surveillance_mechanism

        dynamic = surveillance_mechanism(program.compile(),
                                         allow(1, arity=2), GRID2)
        assert dynamic.acceptance_set() == frozenset()


class TestPerPolicyCompilation:
    def test_one_outcome_per_policy(self):
        policies = [allow(1, arity=2), allow(2, arity=2), allow_all(2)]
        outcomes = compile_per_policy(program_clean(), policies, GRID2)
        assert set(outcomes) == {policy.name for policy in policies}

    def test_different_policies_different_mechanisms(self):
        policies = [allow(1, arity=2), allow(2, arity=2)]
        outcomes = compile_per_policy(program_clean(), policies, GRID2)
        assert (outcomes["allow(1)"].mechanism.acceptance_set()
                != outcomes["allow(2)"].mechanism.acceptance_set())
