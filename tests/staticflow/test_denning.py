"""Unit tests for repro.staticflow.denning — general-lattice certification."""

import pytest

from repro.core.errors import PolicyError
from repro.flowchart.expr import Const, var
from repro.flowchart.structured import (Assign, If, StructuredProgram,
                                        While)
from repro.staticflow.classes import chain_lattice, powerset_lattice
from repro.staticflow.denning import (ClassAssignment, certify_lattice,
                                      military_assignment)

CHAIN = chain_lattice(["unclassified", "secret", "top-secret"])


def mixer():
    return StructuredProgram(
        ["pub", "sec"], [Assign("y", var("pub") + var("sec"))],
        name="mixer")


def guarded():
    return StructuredProgram(
        ["pub", "sec"],
        [If(var("sec").eq(0), [Assign("y", Const(1))],
            [Assign("y", Const(2))])],
        name="guarded")


class TestChainCertification:
    def test_data_flow_joins_classes(self):
        assignment = ClassAssignment(
            CHAIN,
            sources={"pub": "unclassified", "sec": "secret"},
            clearances={"y": "secret"})
        analysis = certify_lattice(mixer(), assignment)
        assert analysis.certified
        assert analysis.classes["y"] == "secret"

    def test_clearance_violation_reported(self):
        assignment = ClassAssignment(
            CHAIN,
            sources={"pub": "unclassified", "sec": "top-secret"},
            clearances={"y": "secret"})
        analysis = certify_lattice(mixer(), assignment)
        assert not analysis.certified
        variable, actual, bound = analysis.violations[0]
        assert variable == "y"
        assert actual == "top-secret" and bound == "secret"

    def test_implicit_flow_through_guard(self):
        """The PC flow the paper insists static analysis must track."""
        assignment = ClassAssignment(
            CHAIN,
            sources={"pub": "unclassified", "sec": "secret"},
            clearances={"y": "unclassified"})
        analysis = certify_lattice(guarded(), assignment)
        assert not analysis.certified
        assert analysis.classes["y"] == "secret"

    def test_loop_fixpoint_over_chain(self):
        program = StructuredProgram(
            ["pub", "sec"],
            [Assign("r", var("pub")),
             While(var("r").ne(0),
                   [Assign("r", var("r") - 1),
                    Assign("carrier", var("sec")),
                    Assign("r2", var("carrier"))]),
             Assign("y", var("r2"))],
            name="laundering")
        assignment = ClassAssignment(
            CHAIN,
            sources={"pub": "unclassified", "sec": "top-secret"},
            clearances={"y": "unclassified"})
        analysis = certify_lattice(program, assignment)
        assert not analysis.certified
        assert analysis.classes["y"] == "top-secret"

    def test_multiple_sink_clearances(self):
        program = StructuredProgram(
            ["pub", "sec"],
            [Assign("audit", var("sec")), Assign("y", var("pub"))],
            name="split")
        assignment = ClassAssignment(
            CHAIN,
            sources={"pub": "unclassified", "sec": "secret"},
            clearances={"y": "unclassified", "audit": "secret"})
        assert certify_lattice(program, assignment).certified

    def test_military_builder(self):
        assignment = military_assignment(
            mixer(), sources={"pub": "unclassified", "sec": "secret"},
            output_clearance="top-secret")
        assert certify_lattice(mixer(), assignment).certified


class TestPowersetAgreesWithAllowCertifier:
    def test_same_verdicts_as_index_certifier(self):
        """The general certifier over P({1..k}) coincides with the
        allow(...) certifier of repro.staticflow.certify."""
        from repro.core import allow
        from repro.staticflow import certify
        from repro.verify import all_allow_policies

        programs = [mixer(), guarded()]
        lattice = powerset_lattice(2)
        for program in programs:
            sources = {name: frozenset({position})
                       for position, name in enumerate(
                           program.input_variables, 1)}
            for policy in all_allow_policies(2):
                assignment = ClassAssignment(
                    lattice, sources=sources,
                    clearances={program.output_variable: policy.allowed})
                general = certify_lattice(program, assignment).certified
                specific = certify(program, policy).certified
                assert general == specific, (program.name, policy.name)


class TestValidation:
    def test_unknown_class_rejected(self):
        with pytest.raises(PolicyError):
            ClassAssignment(CHAIN, sources={"pub": "cosmic"},
                            clearances={})

    def test_unlisted_source_is_bottom(self):
        assignment = ClassAssignment(CHAIN, sources={},
                                     clearances={"y": "unclassified"})
        analysis = certify_lattice(mixer(), assignment)
        assert analysis.certified
