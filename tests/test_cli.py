"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import LIBRARY, main


class TestRun:
    def test_library_program(self, capsys):
        code = main(["run", "--library", "mixer", "2", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "value: 10" in out
        assert "steps:" in out

    def test_inline_source(self, capsys):
        code = main(["run", "--source",
                     "program p(x1) { y := x1 * 2 }", "21"])
        assert code == 0
        assert "value: 42" in capsys.readouterr().out

    def test_program_file(self, tmp_path, capsys):
        path = tmp_path / "p.jl"
        path.write_text("program p(x1) { y := x1 + 1 }")
        code = main(["run", "--file", str(path), "4"])
        assert code == 0
        assert "value: 5" in capsys.readouterr().out

    def test_requires_exactly_one_source(self, capsys):
        code = main(["run", "--library", "mixer", "--source", "x", "1"])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err


class TestAnalyze:
    def test_sound_surveillance(self, capsys):
        code = main(["analyze", "--library", "forgetting",
                     "--policy", "allow(2)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sound:     True" in out
        assert "accepts:   4/16" in out

    def test_unsound_exit_code(self, capsys):
        code = main(["analyze", "--library", "mixer",
                     "--policy", "allow(1)", "--mechanism", "none"])
        out = capsys.readouterr().out
        assert code == 1
        assert "witness:" in out

    def test_time_observable_flag(self, capsys):
        sound = main(["analyze", "--library", "timing-loop",
                      "--policy", "allow()", "--mechanism", "timed",
                      "--time"])
        assert sound == 0
        unsound = main(["analyze", "--library", "timing-loop",
                        "--policy", "allow()", "--mechanism", "none",
                        "--time"])
        assert unsound == 1

    def test_maximal_mechanism(self, capsys):
        code = main(["analyze", "--library", "reconvergence",
                     "--policy", "allow(2)", "--mechanism", "maximal"])
        out = capsys.readouterr().out
        assert code == 0
        assert "accepts:   16/16" in out

    def test_verbose_table(self, capsys):
        main(["analyze", "--library", "forgetting", "--policy", "allow(2)",
              "--high", "1", "--verbose"])
        out = capsys.readouterr().out
        assert "per-input verdicts" in out
        assert "(1, 1)" in out

    def test_unknown_library_program(self, capsys):
        code = main(["analyze", "--library", "nope", "--policy",
                     "allow()"])
        assert code == 2
        assert "unknown library program" in capsys.readouterr().err

    def test_bad_policy(self, capsys):
        code = main(["analyze", "--library", "mixer", "--policy",
                     "deny(1)"])
        assert code == 2


class TestCertify:
    SOURCE = ("program p(x1, x2) { y := x1; "
              "if x2 == 0 { y := 0 } }")

    def test_rejected(self, capsys):
        code = main(["certify", "--source", self.SOURCE,
                     "--policy", "allow(2)"])
        out = capsys.readouterr().out
        assert code == 1
        assert "REJECTED" in out
        assert "label(y)" in out

    def test_certified(self, capsys):
        code = main(["certify", "--source",
                     "program p(x1, x2) { y := x1 }",
                     "--policy", "allow(1)"])
        assert code == 0
        assert "CERTIFIED" in capsys.readouterr().out


class TestLibrary:
    def test_lists_all_programs(self, capsys):
        assert main(["library"]) == 0
        out = capsys.readouterr().out
        for name in LIBRARY:
            assert name in out


class TestTransform:
    def test_ite_transform(self, capsys):
        code = main(["transform", "--library", "example7",
                     "--transform", "ite", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Ite(" in out
        assert "functionally equivalent" in out and "True" in out

    def test_while_transform(self, capsys):
        code = main(["transform", "--library", "timing-loop",
                     "--transform", "while", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "LoopExpr" in out

    def test_duplicate_transform(self, capsys):
        code = main(["transform", "--library", "example9",
                     "--transform", "duplicate", "--check"])
        assert code == 0

    def test_no_region_error(self, capsys):
        code = main(["transform", "--library", "mixer",
                     "--transform", "ite"])
        assert code == 2
        assert "no if-then-else region" in capsys.readouterr().err


class TestDot:
    def test_plain_dot(self, capsys):
        assert main(["dot", "--library", "max"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph {")
        assert "shape=diamond" in out

    def test_instrumented_dot(self, capsys):
        code = main(["dot", "--library", "forgetting",
                     "--instrument", "allow(2)"])
        assert code == 0
        assert "_viol" in capsys.readouterr().out


class TestExperiments:
    def test_index_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E01" in out and "E25" in out
        assert "Theorem 3" in out


class TestLint:
    def test_clean_program_exits_zero(self, capsys):
        code = main(["lint", "--library", "forgetting",
                     "--policy", "allow(1, 2)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FLOW002" in out and "statically certified" in out

    def test_rejected_policy_exits_one(self, capsys):
        code = main(["lint", "--library", "forgetting",
                     "--policy", "allow(2)"])
        out = capsys.readouterr().out
        assert code == 1
        assert "error: FLOW001" in out
        assert "1 error(s)" in out

    def test_without_policy_hygiene_only(self, capsys):
        code = main(["lint", "--library", "timing-loop"])
        out = capsys.readouterr().out
        assert code == 0
        assert "TIME002" in out  # the eponymous timing channel
        assert "FLOW" not in out

    def test_json_report_shape(self, capsys):
        code = main(["lint", "--library", "forgetting",
                     "--policy", "allow(2)", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 1
        assert payload["errors"] == 1
        (report,) = payload["reports"]
        assert report["flowchart"] == "forgetting"
        assert report["policy"] == "allow(2)"
        assert any(d["code"] == "FLOW001"
                   for d in report["diagnostics"])
        assert "influence" in report["pass_seconds"]

    def test_all_lints_whole_library(self, capsys):
        code = main(["lint", "--all", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["programs"] == len(LIBRARY)
        names = {report["flowchart"] for report in payload["reports"]}
        assert len(names) == len(LIBRARY)

    def test_all_excludes_program_selectors(self, capsys):
        code = main(["lint", "--all", "--library", "mixer"])
        assert code == 2
        assert "--all" in capsys.readouterr().err

    def test_precision_json_reports_gap_per_program(self, capsys):
        code = main(["lint", "--all", "--precision", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        precision = payload["precision"]
        assert precision["totals"]["unsound_static_accepts"] == 0
        # The completeness gap is reported for every library program.
        assert set(precision["per_program"]) == {
            LIBRARY[name]().name for name in LIBRARY}
        for row in precision["pairs"]:
            assert "static_gap" in row and "dynamic_gap" in row

    def test_inline_source(self, capsys):
        code = main(["lint", "--source",
                     "program p(x1) { y := x1 // 0 }"])
        out = capsys.readouterr().out
        assert code == 0  # warnings do not fail the lint
        assert "HYG005" in out


class TestArgparseFailures:
    """Bad invocations return codes, not tracebacks (SystemExit)."""

    def test_unknown_subcommand(self, capsys):
        code = main(["frobnicate"])
        assert code == 2
        assert "invalid choice: 'frobnicate'" in capsys.readouterr().err

    def test_unknown_backend(self, capsys):
        code = main(["run", "--library", "mixer", "--backend", "bogus",
                     "1", "2"])
        assert code == 2
        assert "invalid choice: 'bogus'" in capsys.readouterr().err

    def test_no_subcommand(self, capsys):
        assert main([]) == 2

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "lint" in capsys.readouterr().out


class TestCertifyFlowchart:
    def test_library_program_uses_cfg_certifier(self, capsys):
        code = main(["certify", "--library", "reconvergence",
                     "--policy", "allow(2)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CFG certifier" in out and "CERTIFIED" in out

    def test_rejection(self, capsys):
        code = main(["certify", "--library", "forgetting",
                     "--policy", "allow(2)"])
        assert code == 1
        assert "REJECTED" in capsys.readouterr().out


class TestSweepTelemetry:
    def test_progress_flag_reports_each_pair(self, capsys):
        code = main(["sweep", "--programs", "parity", "--executor",
                     "thread", "--jobs", "2", "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        assert "[2/2]" in captured.err

    def test_metrics_json_and_trace_artifacts(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main(["sweep", "--programs", "parity,forgetting",
                     "--executor", "thread", "--jobs", "2",
                     "--chunk-size", "3",
                     "--metrics-json", str(metrics_path),
                     "--trace", str(trace_path)])
        capsys.readouterr()
        assert code == 0

        payload = json.loads(metrics_path.read_text())
        assert payload["meta"]["pairs"] == 6
        assert payload["counters"]["sweep.count"] == 1
        assert payload["counters"]["sweep.points_evaluated"] > 0

        from repro.obs import validate_jsonl
        with open(trace_path) as handle:
            count, problems = validate_jsonl(handle)
        assert count > 0 and problems == []

    def test_sweep_fuel_flag_changes_acceptance(self, capsys):
        main(["sweep", "--programs", "gcd", "--executor", "serial"])
        default_out = capsys.readouterr().out
        main(["sweep", "--programs", "gcd", "--executor", "serial",
              "--fuel", "3"])
        tiny_out = capsys.readouterr().out
        assert default_out != tiny_out

    def test_invalid_chunk_size_is_a_clean_error(self, capsys):
        code = main(["sweep", "--programs", "parity",
                     "--executor", "thread", "--chunk-size", "0"])
        assert code == 2
        assert "chunk_size" in capsys.readouterr().err


class TestMetricsCommand:
    def test_schema_dump_is_valid_json(self, capsys):
        code = main(["metrics", "--schema"])
        out = capsys.readouterr().out
        assert code == 0
        schema = json.loads(out)
        assert "chunk_done" in schema["kinds"]

    def test_validate_clean_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        main(["sweep", "--programs", "parity", "--executor", "thread",
              "--jobs", "2", "--trace", str(trace_path)])
        capsys.readouterr()
        code = main(["metrics", "--validate", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 problem(s)" in out

    def test_validate_flags_bad_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "bad.jsonl"
        trace_path.write_text('{"kind": "chunk_done", "seq": 0}\nnot json\n')
        code = main(["metrics", "--validate", str(trace_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "problem" in captured.out
        assert captured.err  # per-line problems on stderr

    def test_render_from_json(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        main(["sweep", "--programs", "parity", "--executor", "thread",
              "--jobs", "2", "--metrics-json", str(metrics_path)])
        capsys.readouterr()
        code = main(["metrics", "--from-json", str(metrics_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep.points_evaluated" in out
        assert "command: sweep" in out

    def test_live_snapshot_includes_memo_gauges(self, capsys):
        code = main(["metrics"])
        out = capsys.readouterr().out
        assert code == 0
        assert "memo.exec.maxsize" in out


class TestExplain:
    def test_violation_chain_printed_and_exit_one(self, capsys):
        code = main(["explain", "--library", "mixer",
                     "--policy", "allow(1)", "1", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION" in out
        assert "influence chain:" in out
        assert "input x2 (index 2)" in out

    def test_accepted_point_exits_zero(self, capsys):
        code = main(["explain", "--library", "mixer",
                     "--policy", "allow(1,2)", "1", "2"])
        assert code == 0
        assert "ACCEPTED" in capsys.readouterr().out

    def test_json_output_carries_the_chain(self, capsys):
        code = main(["explain", "--library", "mixer",
                     "--policy", "allow(1)", "--json", "1", "2"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "violation"
        assert payload["chain"][-1]["kind"] == "check"

    def test_static_mode_needs_no_point(self, capsys):
        code = main(["explain", "--library", "mixer",
                     "--policy", "allow(1)", "--static"])
        out = capsys.readouterr().out
        assert code == 1
        assert "[static]" in out


class TestTraceAnalytics:
    def run_traced_sweep(self, tmp_path, explain=True):
        trace = tmp_path / "trace.jsonl"
        args = ["sweep", "--programs", "mixer",
                "--mechanism", "surveillance", "--executor", "serial",
                "--trace", str(trace)]
        if explain:
            args.append("--explain")
        assert main(args) == 0
        return trace

    def test_sweep_explain_requires_trace(self, capsys):
        code = main(["sweep", "--programs", "mixer", "--explain"])
        assert code == 2
        assert "--trace" in capsys.readouterr().err

    def test_summarize(self, tmp_path, capsys):
        trace = self.run_traced_sweep(tmp_path)
        capsys.readouterr()
        code = main(["trace", "summarize", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "events by kind" in out
        assert "span timing by op" in out

    def test_trace_explain_recovers_the_direct_chain(self, tmp_path,
                                                     capsys):
        trace = self.run_traced_sweep(tmp_path)
        capsys.readouterr()
        assert main(["explain", "--library", "mixer",
                     "--policy", "allow(1)", "1", "2"]) == 1
        direct = capsys.readouterr().out
        assert main(["trace", "explain", str(trace),
                     "--point", "1,2", "--program", "mixer"]) == 0
        recovered = capsys.readouterr().out
        wanted = next(block for block in direct.split("\n\n")
                      if "allow(1)" in block)
        assert wanted.strip() in recovered

    def test_trace_explain_without_matches_exits_one(self, tmp_path,
                                                     capsys):
        trace = self.run_traced_sweep(tmp_path, explain=False)
        capsys.readouterr()
        code = main(["trace", "explain", str(trace), "--point", "1,2"])
        assert code == 1
        assert "--explain" in capsys.readouterr().err

    def test_spans_tree_single_rooted(self, tmp_path, capsys):
        trace = self.run_traced_sweep(tmp_path)
        capsys.readouterr()
        code = main(["trace", "spans", str(trace), "--tree",
                     "--expect-single-root"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.lstrip().startswith("sweep [")
        assert "1 root(s), 0 problem(s)" in out

    def test_slow_lists_top_spans(self, tmp_path, capsys):
        trace = self.run_traced_sweep(tmp_path)
        capsys.readouterr()
        code = main(["trace", "slow", str(trace), "--top", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep" in out

    def test_missing_trace_file_is_clean_error(self, capsys):
        code = main(["trace", "summarize", "/nonexistent/trace.jsonl"])
        assert code == 2


class TestMetricsPrometheus:
    def test_from_json_prometheus_output(self, tmp_path, capsys):
        snapshot = {"counters": {"sweep.count": 1},
                    "gauges": {}, "histograms": {}}
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snapshot))
        code = main(["metrics", "--from-json", str(path), "--prometheus"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE repro_sweep_count counter" in out
        assert "repro_sweep_count 1" in out
        assert not out.startswith("meta")


class TestSweepRobustness:
    """The PR-5 hardening flags: validation, caps, chaos, checkpoints."""

    ARGS = ["sweep", "--programs", "parity", "--executor", "serial"]

    @pytest.mark.parametrize("flags", [
        ["--value-cap", "0"],
        ["--value-cap", "-8"],
        ["--deadline", "0"],
        ["--deadline", "-1.5"],
    ])
    def test_nonpositive_budgets_rejected(self, flags, capsys):
        code = main(self.ARGS + flags)
        assert code == 2
        assert "must be a positive" in capsys.readouterr().err

    def test_resume_without_checkpoint_rejected(self, capsys):
        code = main(self.ARGS + ["--resume"])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_resume_from_missing_checkpoint_rejected(self, tmp_path,
                                                     capsys):
        code = main(self.ARGS + ["--checkpoint",
                                 str(tmp_path / "absent.jsonl"),
                                 "--resume"])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    @pytest.mark.parametrize("spec", ["bogus", "seed=3,warp=1"])
    def test_bad_chaos_spec_rejected(self, spec, capsys):
        code = main(self.ARGS + ["--chaos", spec])
        assert code == 2
        assert "chaos" in capsys.readouterr().err

    def test_run_rejects_nonpositive_value_cap(self, capsys):
        code = main(["run", "--library", "mixer", "--value-cap", "0",
                     "2", "3"])
        assert code == 2
        assert "--value-cap" in capsys.readouterr().err

    def test_run_honours_value_cap(self, capsys):
        code = main(["run", "--library", "mixer", "--value-cap", "2",
                     "2", "3"])
        capsys.readouterr()
        assert code == 2  # ValueCapExceededError is a ReproError

    def test_sweep_value_cap_changes_rows(self, tmp_path, capsys):
        wide = tmp_path / "wide.json"
        narrow = tmp_path / "narrow.json"
        assert main(self.ARGS + ["--results-json", str(wide)]) == 0
        # A 1-bit cap truncates most of parity's arithmetic into cap
        # notices, which may flip soundness — exit 1 is legitimate.
        assert main(self.ARGS + ["--value-cap", "1",
                                 "--results-json", str(narrow)]) in (0, 1)
        capsys.readouterr()
        wide_rows = json.loads(wide.read_text())
        narrow_rows = json.loads(narrow.read_text())
        assert [row["policy"] for row in wide_rows] == \
            [row["policy"] for row in narrow_rows]
        assert wide_rows != narrow_rows

    def test_checkpointed_sweep_round_trips(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck.jsonl"
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(self.ARGS + ["--chunk-size", "2",
                                 "--checkpoint", str(checkpoint),
                                 "--results-json", str(first)]) == 0
        assert main(self.ARGS + ["--chunk-size", "2",
                                 "--checkpoint", str(checkpoint),
                                 "--resume",
                                 "--results-json", str(second)]) == 0
        capsys.readouterr()
        assert first.read_text() == second.read_text()
        assert main(["metrics", "--validate", str(checkpoint)]) == 0

    def test_chaos_poison_is_quarantined_not_fatal(self, tmp_path,
                                                   capsys):
        results = tmp_path / "rows.json"
        code = main(self.ARGS + ["--chunk-size", "2",
                                 "--chaos", "seed=3,poison=1",
                                 "--results-json", str(results)])
        capsys.readouterr()
        assert code in (0, 1)  # quarantine may flip a sound verdict
        assert json.loads(results.read_text())

    def test_deadline_exit_is_124(self, tmp_path, capsys):
        code = main(["sweep", "--executor", "thread", "--high", "3",
                     "--chunk-size", "2",
                     "--checkpoint", str(tmp_path / "ck.jsonl"),
                     "--deadline", "0.0000001"])
        err = capsys.readouterr().err
        assert code == 124
        assert "deadline" in err

    def test_trace_summarize_reports_recovery(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(self.ARGS + ["--chunk-size", "2",
                                 "--chaos", "seed=3,poison=1",
                                 "--trace", str(trace)])
        assert code in (0, 1)
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "recovery:" in out
        # Poisoned point 1 is evaluated once per policy pair (parity
        # has two allow policies), so it quarantines twice.
        assert "2 point(s) quarantined" in out


class TestSweepBatchBackend:
    """The Gen-2 batch tier from the command line."""

    ARGS = ["sweep", "--programs", "parity,forgetting",
            "--executor", "serial", "--mechanism", "program"]

    def test_backend_listed_in_choices(self, capsys):
        code = main(["sweep", "--programs", "parity",
                     "--backend", "warp"])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'warp'" in err
        assert "batch" in err  # the registry's tiers are listed

    def test_batch_rows_match_default_backend(self, tmp_path, capsys):
        plain = tmp_path / "plain.json"
        batch = tmp_path / "batch.json"
        assert main(self.ARGS + ["--results-json", str(plain)]) == 0
        assert main(self.ARGS + ["--backend", "batch",
                                 "--results-json", str(batch)]) == 0
        capsys.readouterr()

        def strip(rows):
            return [{key: value for key, value in row.items()
                     if key != "backends"} for row in rows]

        plain_rows = json.loads(plain.read_text())
        batch_rows = json.loads(batch.read_text())
        assert strip(plain_rows) == strip(batch_rows)
        # The journal of record: which tier actually evaluated each
        # pair, after any degradation.
        assert all(set(row["backends"]) == {"batch"}
                   for row in batch_rows)
        assert all(set(row["backends"]) == {"compiled"}
                   for row in plain_rows)

    def test_batch_checkpoint_round_trips(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck.jsonl"
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(self.ARGS + ["--backend", "batch",
                                 "--chunk-size", "3",
                                 "--checkpoint", str(checkpoint),
                                 "--results-json", str(first)]) == 0
        assert main(self.ARGS + ["--backend", "batch",
                                 "--chunk-size", "3",
                                 "--checkpoint", str(checkpoint),
                                 "--resume",
                                 "--results-json", str(second)]) == 0
        capsys.readouterr()
        assert first.read_text() == second.read_text()
        assert main(["metrics", "--validate", str(checkpoint)]) == 0

    def test_metrics_snapshot_carries_batch_gauges(self, tmp_path,
                                                   capsys):
        snapshot = tmp_path / "metrics.json"
        assert main(self.ARGS + ["--backend", "batch",
                                 "--metrics-json", str(snapshot)]) == 0
        capsys.readouterr()
        payload = json.loads(snapshot.read_text())
        assert payload["meta"]["backend"] == "batch"
        gauges = payload.get("gauges", {})
        assert any(name.startswith("batch.") for name in gauges)


class TestDynamicLintExitCodes:
    """The exit-code contract for the dynamic-policy passes.

    0 = clean or warnings/info only (DYN002/DYN003/INT000/INT002),
    1 = error diagnostics fired (DYN001/INT001),
    2 = usage errors — unchanged by the new passes.
    """

    def test_dyn001_and_int001_exit_one(self, capsys):
        code = main(["lint", "--library", "downgrade-guarded",
                     "--policy", "allow(2)"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DYN001" in out and "INT001" in out

    def test_completion_time_failure_exits_one(self, capsys):
        code = main(["lint", "--library", "policy-tighten",
                     "--policy", "allow(1)"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DYN001" in out and "DYN002" in out

    def test_warning_only_dynamic_lint_exits_zero(self, capsys):
        # INT002 without INT001: the guarded downgrade's occurrence is
        # secret-conditioned, but a later loosening clears the halt.
        code = main(["lint", "--source",
                     "program p(x1, x2) { y := x1; "
                     "if x2 > 0 { downgrade y(1) }; "
                     "policy allow(1, 2) }",
                     "--policy", "allow(1)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "INT002" in out and "INT001" not in out

    def test_certified_dynamic_program_exits_zero(self, capsys):
        code = main(["lint", "--library", "downgrade-launder",
                     "--policy", "allow()"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FLOW002" in out and "INT000" in out

    def test_usage_error_still_exits_two(self, capsys):
        code = main(["lint", "--all", "--library", "downgrade-launder"])
        assert code == 2

    def test_json_carries_pass_stats(self, capsys):
        code = main(["lint", "--library", "downgrade-guarded",
                     "--policy", "allow(2)", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        (report,) = payload["reports"]
        stats = report["pass_stats"]
        assert stats["epochs"]["iterations"] >= 1
        assert stats["unwinding"]["states_explored"] >= 1
        for entry in stats.values():
            assert entry["seconds"] >= 0


class TestDynamicSweepAndTrace:
    def test_default_sweep_excludes_dynamic_programs(self, tmp_path,
                                                     capsys):
        results = tmp_path / "results.json"
        code = main(["sweep", "--executor", "serial",
                     "--results-json", str(results)])
        capsys.readouterr()
        assert code == 0
        swept = {row["program"]
                 for row in json.loads(results.read_text())}
        assert swept
        assert all(not LIBRARY[name]().has_dynamic_policy()
                   for name in swept)

    def test_explicit_dynamic_selection_still_allowed(self, capsys):
        # By request the NI baseline judges the declassifier unsound —
        # the sweep runs (no usage error) and reports the disagreement.
        code = main(["sweep", "--programs", "downgrade-launder",
                     "--executor", "serial"])
        out = capsys.readouterr().out
        assert code == 1
        assert "unsound" in out

    def test_trace_summarize_reports_dynamic_line(self, tmp_path,
                                                  capsys):
        from repro import obs
        from repro.flowchart.library import (downgrade_partial_program,
                                             policy_tighten_program)
        from repro.obs.events import JsonlSink
        from repro.surveillance.dynamic import surveil

        trace = tmp_path / "trace.jsonl"
        with JsonlSink(str(trace)) as sink:
            with obs.observed(sinks=[sink], reset=True):
                surveil(policy_tighten_program(), (1, 0),
                        frozenset((1,)))
                surveil(downgrade_partial_program(), (1, 2),
                        frozenset((1,)))
        code = main(["trace", "summarize", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert ("dynamic:   1 policy change(s) (max epoch 1), "
                "1 downgrade(s), 1 epoch violation(s)") in out


class TestAudit:
    @staticmethod
    def sweep_ledger(tmp_path, capsys):
        path = tmp_path / "audit.jsonl"
        code = main(["sweep", "--programs", "timing-loop,parity",
                     "--mechanism", "surveillance", "--executor", "serial",
                     "--chunk-size", "7", "--audit", str(path)])
        capsys.readouterr()
        assert code in (0, 1)  # 1 = unsound pairs found, still a sweep
        return path

    def test_verify_ok_then_tampered_exit_1(self, tmp_path, capsys):
        path = self.sweep_ledger(tmp_path, capsys)
        assert main(["audit", "verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "sealed" in out
        data = bytearray(path.read_bytes())
        data[data.index(b'"accept"') + 1] ^= 0x20
        path.write_bytes(bytes(data))
        assert main(["audit", "verify", str(path)]) == 1
        captured = capsys.readouterr()
        assert "TAMPERED" in captured.out
        assert "record" in captured.err  # names the offending record

    def test_tail_prints_canonical_jsonl(self, tmp_path, capsys):
        path = self.sweep_ledger(tmp_path, capsys)
        assert main(["audit", "tail", str(path), "--count", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert record["endpoint"] == "sweep"

    def test_query_by_kind(self, tmp_path, capsys):
        path = self.sweep_ledger(tmp_path, capsys)
        assert main(["audit", "query", str(path),
                     "--kind", "violation"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all(json.loads(line)["decision"] == "notice"
                   for line in lines)

    def test_query_rejects_unknown_kind(self, tmp_path, capsys):
        path = self.sweep_ledger(tmp_path, capsys)
        assert main(["audit", "query", str(path), "--kind", "bogus"]) == 2
        assert "unknown notice kind" in capsys.readouterr().err

    def test_stats_table_and_json(self, tmp_path, capsys):
        path = self.sweep_ledger(tmp_path, capsys)
        assert main(["audit", "stats", str(path)]) == 0
        assert "per-tenant decisions" in capsys.readouterr().out
        assert main(["audit", "stats", str(path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] > 0

    def test_missing_ledger_is_a_clean_error(self, tmp_path, capsys):
        assert main(["audit", "tail",
                     str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_summarize_prints_audit_line(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        path = tmp_path / "audit.jsonl"
        code = main(["sweep", "--programs", "parity",
                     "--mechanism", "surveillance", "--executor", "serial",
                     "--chunk-size", "7", "--audit", str(path),
                     "--trace", str(trace)])
        capsys.readouterr()
        assert code in (0, 1)
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "audit:" in out and "record(s) appended" in out


class TestDistCommand:
    SOURCE = ("program relay(x1, x2) { s := x1 + x2; send ch(s); "
              "recv ch(u); y := u * 2 }")

    def test_clean_run_matches_serial(self, capsys):
        code = main(["dist", "run", "--source", self.SOURCE,
                     "--policy", "allow(1, 2)", "--nodes", "2", "3", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "rows match: serial == distributed" in out
        assert "outcome=14" in out

    def test_chaosed_run_matches_serial(self, capsys):
        code = main(["dist", "run", "--source", self.SOURCE,
                     "--policy", "allow(1, 2)", "--nodes", "3",
                     "--chaos", "seed=1,drop=0.3,dup=0.2,kill=0.1",
                     "3", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "rows match: serial == distributed" in out

    def test_corrupting_plan_totalizes(self, capsys):
        code = main(["dist", "run", "--source", self.SOURCE,
                     "--policy", "allow(1, 2)", "--nodes", "2",
                     "--chaos", "seed=1,corrupt=1.0", "3", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "corruption totalized" in out
        assert "Λ!msg[corrupt:" in out

    def test_trace_writes_single_rooted_tree(self, tmp_path, capsys):
        from repro.obs import build_span_tree, validate_jsonl
        trace = tmp_path / "dist.jsonl"
        code = main(["dist", "run", "--source", self.SOURCE,
                     "--policy", "allow(1, 2)", "--nodes", "2",
                     "--trace", str(trace), "3", "4"])
        assert code == 0
        capsys.readouterr()
        lines = trace.read_text(encoding="utf-8").splitlines()
        count, problems = validate_jsonl(lines)
        assert problems == []
        events = [json.loads(line) for line in lines]
        forest = build_span_tree(events)
        assert forest.problems == []
        assert forest.single_rooted
        assert forest.roots[0].op == "dist_run"
        assert any(event["kind"] == "message_sent" for event in events)

    def test_bad_nodes_rejected(self, capsys):
        code = main(["dist", "run", "--source", self.SOURCE,
                     "--policy", "allow(1, 2)", "--nodes", "0", "3", "4"])
        assert code != 0
