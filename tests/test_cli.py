"""Unit tests for the command-line interface."""

import pytest

from repro.cli import LIBRARY, main


class TestRun:
    def test_library_program(self, capsys):
        code = main(["run", "--library", "mixer", "2", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "value: 10" in out
        assert "steps:" in out

    def test_inline_source(self, capsys):
        code = main(["run", "--source",
                     "program p(x1) { y := x1 * 2 }", "21"])
        assert code == 0
        assert "value: 42" in capsys.readouterr().out

    def test_program_file(self, tmp_path, capsys):
        path = tmp_path / "p.jl"
        path.write_text("program p(x1) { y := x1 + 1 }")
        code = main(["run", "--file", str(path), "4"])
        assert code == 0
        assert "value: 5" in capsys.readouterr().out

    def test_requires_exactly_one_source(self, capsys):
        code = main(["run", "--library", "mixer", "--source", "x", "1"])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err


class TestAnalyze:
    def test_sound_surveillance(self, capsys):
        code = main(["analyze", "--library", "forgetting",
                     "--policy", "allow(2)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sound:     True" in out
        assert "accepts:   4/16" in out

    def test_unsound_exit_code(self, capsys):
        code = main(["analyze", "--library", "mixer",
                     "--policy", "allow(1)", "--mechanism", "none"])
        out = capsys.readouterr().out
        assert code == 1
        assert "witness:" in out

    def test_time_observable_flag(self, capsys):
        sound = main(["analyze", "--library", "timing-loop",
                      "--policy", "allow()", "--mechanism", "timed",
                      "--time"])
        assert sound == 0
        unsound = main(["analyze", "--library", "timing-loop",
                        "--policy", "allow()", "--mechanism", "none",
                        "--time"])
        assert unsound == 1

    def test_maximal_mechanism(self, capsys):
        code = main(["analyze", "--library", "reconvergence",
                     "--policy", "allow(2)", "--mechanism", "maximal"])
        out = capsys.readouterr().out
        assert code == 0
        assert "accepts:   16/16" in out

    def test_verbose_table(self, capsys):
        main(["analyze", "--library", "forgetting", "--policy", "allow(2)",
              "--high", "1", "--verbose"])
        out = capsys.readouterr().out
        assert "per-input verdicts" in out
        assert "(1, 1)" in out

    def test_unknown_library_program(self, capsys):
        code = main(["analyze", "--library", "nope", "--policy",
                     "allow()"])
        assert code == 2
        assert "unknown library program" in capsys.readouterr().err

    def test_bad_policy(self, capsys):
        code = main(["analyze", "--library", "mixer", "--policy",
                     "deny(1)"])
        assert code == 2


class TestCertify:
    SOURCE = ("program p(x1, x2) { y := x1; "
              "if x2 == 0 { y := 0 } }")

    def test_rejected(self, capsys):
        code = main(["certify", "--source", self.SOURCE,
                     "--policy", "allow(2)"])
        out = capsys.readouterr().out
        assert code == 1
        assert "REJECTED" in out
        assert "label(y)" in out

    def test_certified(self, capsys):
        code = main(["certify", "--source",
                     "program p(x1, x2) { y := x1 }",
                     "--policy", "allow(1)"])
        assert code == 0
        assert "CERTIFIED" in capsys.readouterr().out


class TestLibrary:
    def test_lists_all_programs(self, capsys):
        assert main(["library"]) == 0
        out = capsys.readouterr().out
        for name in LIBRARY:
            assert name in out


class TestTransform:
    def test_ite_transform(self, capsys):
        code = main(["transform", "--library", "example7",
                     "--transform", "ite", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Ite(" in out
        assert "functionally equivalent" in out and "True" in out

    def test_while_transform(self, capsys):
        code = main(["transform", "--library", "timing-loop",
                     "--transform", "while", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "LoopExpr" in out

    def test_duplicate_transform(self, capsys):
        code = main(["transform", "--library", "example9",
                     "--transform", "duplicate", "--check"])
        assert code == 0

    def test_no_region_error(self, capsys):
        code = main(["transform", "--library", "mixer",
                     "--transform", "ite"])
        assert code == 2
        assert "no if-then-else region" in capsys.readouterr().err


class TestDot:
    def test_plain_dot(self, capsys):
        assert main(["dot", "--library", "max"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph {")
        assert "shape=diamond" in out

    def test_instrumented_dot(self, capsys):
        code = main(["dot", "--library", "forgetting",
                     "--instrument", "allow(2)"])
        assert code == 0
        assert "_viol" in capsys.readouterr().out


class TestExperiments:
    def test_index_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E01" in out and "E25" in out
        assert "Theorem 3" in out


class TestCertifyFlowchart:
    def test_library_program_uses_cfg_certifier(self, capsys):
        code = main(["certify", "--library", "reconvergence",
                     "--policy", "allow(2)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CFG certifier" in out and "CERTIFIED" in out

    def test_rejection(self, capsys):
        code = main(["certify", "--library", "forgetting",
                     "--policy", "allow(2)"])
        assert code == 1
        assert "REJECTED" in capsys.readouterr().out
