"""Unit tests for scripts/bench_compare.py (loaded by path)."""

import importlib.util
import json
import os

import pytest

SCRIPT = os.path.join(os.path.dirname(__file__), "..", "scripts",
                      "bench_compare.py")


@pytest.fixture(scope="module")
def bench_compare():
    spec = importlib.util.spec_from_file_location("bench_compare", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


BASELINE = {
    "kernel": {"compiled_s": {"best": 0.010, "mean": 0.012, "reps": 5}},
    "per_program": {"gcd": {"compiled_best_s": 0.00002, "points": 100}},
    "meta": {"cpu_count": 8},
}


class TestTimingLeaves:
    def test_only_best_leaves_are_collected(self, bench_compare):
        leaves = bench_compare.timing_leaves(BASELINE)
        assert leaves == {
            "kernel/compiled_s/best": 0.010,
            "per_program/gcd/compiled_best_s": 0.00002,
        }
        # mean/reps/points/cpu_count are numeric but not timings.
        assert not any("mean" in path or "reps" in path
                       or "points" in path or "cpu_count" in path
                       for path in leaves)


class TestCompare:
    def test_regression_over_threshold_flagged(self, bench_compare):
        rows, regressions = bench_compare.compare(
            {"a/best": 0.010}, {"a/best": 0.020},
            threshold=1.5, min_seconds=1e-3)
        assert regressions and regressions[0]["path"] == "a/best"
        assert rows[0]["ratio"] == 2.0

    def test_sub_floor_leaves_are_reported_not_gated(self, bench_compare):
        rows, regressions = bench_compare.compare(
            {"a/best": 0.00001}, {"a/best": 0.00005},
            threshold=1.5, min_seconds=1e-3)
        assert regressions == []
        assert rows[0]["gated"] is False

    def test_improvement_passes(self, bench_compare):
        _, regressions = bench_compare.compare(
            {"a/best": 0.010}, {"a/best": 0.005},
            threshold=1.5, min_seconds=1e-3)
        assert regressions == []


class TestMain:
    def test_exit_zero_when_clean(self, bench_compare, tmp_path, capsys):
        old = write(tmp_path, "old.json", BASELINE)
        new = write(tmp_path, "new.json", BASELINE)
        assert bench_compare.main([old, new]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_exit_one_on_regression(self, bench_compare, tmp_path,
                                    capsys):
        current = {"kernel": {"compiled_s": {"best": 0.030}}}
        old = write(tmp_path, "old.json", BASELINE)
        new = write(tmp_path, "new.json", current)
        assert bench_compare.main([old, new, "--threshold", "1.5"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_exit_two_when_nothing_in_common(self, bench_compare,
                                             tmp_path, capsys):
        old = write(tmp_path, "old.json", {"a": {"best": 1.0}})
        new = write(tmp_path, "new.json", {"b": {"best": 1.0}})
        assert bench_compare.main([old, new]) == 2
        assert "no timing leaves in common" in capsys.readouterr().err

    def test_json_output_shape(self, bench_compare, tmp_path, capsys):
        old = write(tmp_path, "old.json", BASELINE)
        new = write(tmp_path, "new.json", BASELINE)
        assert bench_compare.main([old, new, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["compared"] == 2
        assert payload["gated"] == 1  # the sub-ms per_program leaf is not
        assert payload["regressions"] == 0

    def test_repo_benchmarks_pass_the_ci_gate(self, bench_compare,
                                              capsys):
        root = os.path.join(os.path.dirname(__file__), "..")
        pr1 = os.path.join(root, "BENCH_PR1.json")
        pr3 = os.path.join(root, "BENCH_PR3.json")
        if not (os.path.exists(pr1) and os.path.exists(pr3)):
            pytest.skip("committed BENCH files not present")
        assert bench_compare.main([pr1, pr3, "--threshold", "1.5"]) == 0
