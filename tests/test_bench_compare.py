"""Unit tests for scripts/bench_compare.py (loaded by path)."""

import importlib.util
import json
import os

import pytest

SCRIPT = os.path.join(os.path.dirname(__file__), "..", "scripts",
                      "bench_compare.py")


@pytest.fixture(scope="module")
def bench_compare():
    spec = importlib.util.spec_from_file_location("bench_compare", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


BASELINE = {
    "kernel": {"compiled_s": {"best": 0.010, "mean": 0.012, "reps": 5}},
    "per_program": {"gcd": {"compiled_best_s": 0.00002, "points": 100}},
    "meta": {"cpu_count": 8},
}


class TestTimingLeaves:
    def test_only_best_leaves_are_collected(self, bench_compare):
        leaves = bench_compare.timing_leaves(BASELINE)
        assert leaves == {
            "kernel/compiled_s/best": 0.010,
            "per_program/gcd/compiled_best_s": 0.00002,
        }
        # mean/reps/points/cpu_count are numeric but not timings.
        assert not any("mean" in path or "reps" in path
                       or "points" in path or "cpu_count" in path
                       for path in leaves)


class TestCompare:
    def test_regression_over_threshold_flagged(self, bench_compare):
        rows, regressions = bench_compare.compare(
            {"a/best": 0.010}, {"a/best": 0.020},
            threshold=1.5, min_seconds=1e-3)
        assert regressions and regressions[0]["path"] == "a/best"
        assert rows[0]["ratio"] == 2.0

    def test_sub_floor_leaves_are_reported_not_gated(self, bench_compare):
        rows, regressions = bench_compare.compare(
            {"a/best": 0.00001}, {"a/best": 0.00005},
            threshold=1.5, min_seconds=1e-3)
        assert regressions == []
        assert rows[0]["gated"] is False

    def test_improvement_passes(self, bench_compare):
        _, regressions = bench_compare.compare(
            {"a/best": 0.010}, {"a/best": 0.005},
            threshold=1.5, min_seconds=1e-3)
        assert regressions == []


class TestMain:
    def test_exit_zero_when_clean(self, bench_compare, tmp_path, capsys):
        old = write(tmp_path, "old.json", BASELINE)
        new = write(tmp_path, "new.json", BASELINE)
        assert bench_compare.main([old, new]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_exit_one_on_regression(self, bench_compare, tmp_path,
                                    capsys):
        current = {"kernel": {"compiled_s": {"best": 0.030}}}
        old = write(tmp_path, "old.json", BASELINE)
        new = write(tmp_path, "new.json", current)
        assert bench_compare.main([old, new, "--threshold", "1.5"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_exit_two_when_nothing_in_common(self, bench_compare,
                                             tmp_path, capsys):
        old = write(tmp_path, "old.json", {"a": {"best": 1.0}})
        new = write(tmp_path, "new.json", {"b": {"best": 1.0}})
        assert bench_compare.main([old, new]) == 2
        assert "no timing leaves in common" in capsys.readouterr().err

    def test_json_output_shape(self, bench_compare, tmp_path, capsys):
        old = write(tmp_path, "old.json", BASELINE)
        new = write(tmp_path, "new.json", BASELINE)
        assert bench_compare.main([old, new, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["compared"] == 2
        assert payload["gated"] == 1  # the sub-ms per_program leaf is not
        assert payload["regressions"] == 0

    def test_repo_benchmarks_pass_the_ci_gate(self, bench_compare,
                                              capsys):
        root = os.path.join(os.path.dirname(__file__), "..")
        pr1 = os.path.join(root, "BENCH_PR1.json")
        pr3 = os.path.join(root, "BENCH_PR3.json")
        if not (os.path.exists(pr1) and os.path.exists(pr3)):
            pytest.skip("committed BENCH files not present")
        assert bench_compare.main([pr1, pr3, "--threshold", "1.5"]) == 0


def with_claims(claims):
    payload = dict(BASELINE)
    payload["claims"] = claims
    return payload


class TestClaimsGate:
    def test_true_to_false_claim_fails_loudly(self, bench_compare,
                                              tmp_path, capsys):
        old = write(tmp_path, "old.json",
                    with_claims({"speedup_holds": True}))
        new = write(tmp_path, "new.json",
                    with_claims({"speedup_holds": False}))
        assert bench_compare.main([old, new]) == 1
        err = capsys.readouterr().err
        assert "CLAIM REGRESSED" in err and "speedup_holds" in err

    def test_stable_new_and_recovered_claims_pass(self, bench_compare,
                                                  tmp_path):
        old = write(tmp_path, "old.json",
                    with_claims({"kept": True, "was_false": False}))
        new = write(tmp_path, "new.json",
                    with_claims({"kept": True, "was_false": True,
                                 "brand_new": False}))
        assert bench_compare.main([old, new]) == 0

    def test_claim_dropped_from_current_does_not_gate(self, bench_compare,
                                                      tmp_path):
        # A claim the new file no longer measures (renamed baseline,
        # retired section) is not a regression — only an explicit
        # true -> false flip is.
        old = write(tmp_path, "old.json", with_claims({"retired": True}))
        new = write(tmp_path, "new.json", with_claims({}))
        assert bench_compare.main([old, new]) == 0

    def test_helper_ignores_missing_or_malformed_blocks(self,
                                                        bench_compare):
        assert bench_compare.claims_regressions({}, {}) == []
        assert bench_compare.claims_regressions(
            {"claims": "oops"}, {"claims": {"a": False}}) == []
        assert bench_compare.claims_regressions(
            {"claims": {"a": True}}, {"claims": {"a": False}}) == [
                {"claim": "a", "baseline": True, "current": False}]

    def test_json_output_lists_claim_regressions(self, bench_compare,
                                                 tmp_path, capsys):
        old = write(tmp_path, "old.json", with_claims({"a": True}))
        new = write(tmp_path, "new.json", with_claims({"a": False}))
        assert bench_compare.main([old, new, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["claim_regressions"] == [
            {"claim": "a", "baseline": True, "current": False}]

    def test_allow_demotion_waives_named_flip_only(self, bench_compare,
                                                   tmp_path, capsys):
        old = write(tmp_path, "old.json",
                    with_claims({"waived": True, "real": True}))
        new = write(tmp_path, "new.json",
                    with_claims({"waived": False, "real": False}))
        assert bench_compare.main(
            [old, new, "--allow-demotion", "waived"]) == 1
        err = capsys.readouterr().err
        assert "claim demotion waived: waived" in err
        assert "CLAIM REGRESSED: real" in err

    def test_allow_demotion_alone_exits_zero(self, bench_compare,
                                             tmp_path, capsys):
        old = write(tmp_path, "old.json", with_claims({"waived": True}))
        new = write(tmp_path, "new.json", with_claims({"waived": False}))
        assert bench_compare.main(
            [old, new, "--json", "--allow-demotion", "waived"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["claim_regressions"] == []
        assert payload["claim_demotions_waived"] == [
            {"claim": "waived", "baseline": True, "current": False}]


class TestCommittedLadder:
    """The exact bench_compare ladder CI runs must pass from a checkout."""

    ROOT = os.path.join(os.path.dirname(__file__), "..")

    def run_step(self, bench_compare, old, new, extra=()):
        old = os.path.join(self.ROOT, old)
        new = os.path.join(self.ROOT, new)
        if not (os.path.exists(old) and os.path.exists(new)):
            pytest.skip("committed BENCH files not present")
        return bench_compare.main([old, new, "--threshold", "1.5", *extra])

    def test_pr3_to_pr4(self, bench_compare, capsys):
        assert self.run_step(bench_compare, "BENCH_PR3.json",
                             "BENCH_PR4.json") == 0

    def test_pr4_to_pr5_needs_the_documented_waiver(self, bench_compare,
                                                    capsys):
        # PR5 recorded telemetry_..._vs_pr3 as false because its
        # baseline was two PRs stale (its own notes say so); CI waives
        # exactly that key and nothing else.
        assert self.run_step(bench_compare, "BENCH_PR4.json",
                             "BENCH_PR5.json") == 1
        assert self.run_step(
            bench_compare, "BENCH_PR4.json", "BENCH_PR5.json",
            ["--allow-demotion",
             "telemetry_noop_overhead_under_3pct_vs_pr3"]) == 0

    def test_pr5_to_pr6(self, bench_compare, capsys):
        assert self.run_step(bench_compare, "BENCH_PR5.json",
                             "BENCH_PR6.json") == 0
