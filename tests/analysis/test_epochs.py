"""Tests for the epoch-aware influence fixpoint (DYN001–DYN003).

The core obligations:

- the epoch verdict judges each flow by the policy in force when it
  *completes* (van Delft/Hunt/Sands), so a tightening policy change is
  rejected even though the write was licensed when it happened;
- per-epoch static labels dominate the dynamic monitor's labels at
  every program counter the monitor visits, under the matching
  in-force policy bucket;
- the diagnostics fire on the designed witnesses: DYN001 on the
  completion-time failure, DYN002 on retroactive disallowing, DYN003
  on epoch-ambiguous halts.
"""

import pytest

from repro.analysis import (DynamicPolicyPass, epoch_influence_analysis,
                            epoch_verdict, lint_flowchart)
from repro.core.policy import AllowPolicy
from repro.flowchart.library import (downgrade_guarded_program,
                                     downgrade_launder_program,
                                     downgrade_partial_program,
                                     dynamic_policy_suite,
                                     policy_branch_program,
                                     policy_loop_program,
                                     policy_loosen_program,
                                     policy_tighten_program)
from repro.surveillance.dynamic import surveil
from repro.verify.enumerate import all_allow_policies

GRID = [(a, b) for a in range(3) for b in range(3)]


def codes(flowchart, policy):
    report = lint_flowchart(flowchart, policy)
    return {d.code for d in report.diagnostics}, report


class TestEpochVerdict:
    def test_tightening_rejected_under_every_policy(self):
        # y := x1; policy allow(): the flow completes under allow(),
        # so no initial policy can license it.
        fc = policy_tighten_program()
        for policy in all_allow_policies(2):
            assert not epoch_verdict(fc, policy).certified

    def test_loosening_certified_under_every_policy(self):
        # y := x1 + x2; policy allow(1, 2): completion-time policy
        # admits everything regardless of the initial one.
        fc = policy_loosen_program()
        for policy in all_allow_policies(2):
            assert epoch_verdict(fc, policy).certified

    def test_fixed_policy_influence_would_be_unsound_here(self):
        # The latent bug this subsystem exists to close: the
        # single-policy influence verdict certifies the tightening
        # program against allow(1) — the dynamic monitor rejects every
        # input.  The epoch verdict must disagree with the fixed one.
        from repro.analysis import influence_analysis

        fc = policy_tighten_program()
        policy = AllowPolicy([1], 2)
        assert influence_analysis(fc).verdict(policy).certified
        assert not epoch_verdict(fc, policy).certified
        assert all(surveil(fc, point, policy.allowed).violated
                   for point in GRID)

    def test_downgrade_discharges_designated_indices(self):
        # y := x1 + x2; downgrade y(2): statically certified for
        # allow(1) because the admitted edge dropped index 2.
        fc = downgrade_partial_program()
        assert epoch_verdict(fc, AllowPolicy([1], 2)).certified
        assert not epoch_verdict(fc, AllowPolicy([2], 2)).certified

    def test_certified_implies_monitor_accepts_grid(self):
        # Static-epoch certification must imply the dynamic monitor
        # never fires — the family's soundness obligation.
        for fc in dynamic_policy_suite():
            for policy in all_allow_policies(fc.arity):
                if epoch_verdict(fc, policy).certified:
                    for point in GRID:
                        assert not surveil(fc, point,
                                           policy.allowed).violated, \
                            (fc.name, policy.name, point)


class TestDiagnostics:
    def test_dyn001_on_completion_time_failure(self):
        found, report = codes(policy_tighten_program(), AllowPolicy([1], 2))
        assert "DYN001" in found
        assert report.exit_code == 1

    def test_dyn002_on_retroactive_disallow(self):
        # y was licensed under allow(1) when written, then the policy
        # tightened to allow() — the warning names the variable.
        found, report = codes(policy_tighten_program(), AllowPolicy([1], 2))
        assert "DYN002" in found
        dyn002 = [d for d in report.diagnostics if d.code == "DYN002"]
        assert any(d.data["variable"] == "y" for d in dyn002)

    def test_dyn003_on_epoch_ambiguous_halt(self):
        # The branch installs allow(1, 2) on one path only, so the
        # halt is reachable under two distinct in-force policies.
        found, _ = codes(policy_branch_program(), AllowPolicy([1], 2))
        assert "DYN003" in found

    def test_flow002_on_certified_dynamic_program(self):
        found, report = codes(policy_loosen_program(), AllowPolicy([], 2))
        assert "FLOW002" in found
        assert "DYN001" not in found
        assert report.exit_code == 0
        flow002 = [d for d in report.diagnostics if d.code == "FLOW002"]
        # The certification came from the epoch pass, not the (gated)
        # fixed-policy influence pass.
        assert all(d.pass_name == "epochs" for d in flow002)

    def test_influence_pass_defers_on_dynamic_flowcharts(self):
        report = lint_flowchart(policy_tighten_program(),
                                AllowPolicy([1], 2))
        assert all(d.pass_name != "influence" for d in report.diagnostics)

    def test_classic_flowcharts_skip_the_epoch_pass(self):
        from repro.flowchart.library import forgetting_program

        report = lint_flowchart(forgetting_program(), AllowPolicy([1], 2))
        assert all(not d.code.startswith("DYN")
                   for d in report.diagnostics)


class TestPerEpochContainment:
    """Static per-epoch labels ⊇ dynamic labels at every visited PC."""

    @pytest.mark.parametrize("flowchart", dynamic_policy_suite(),
                             ids=lambda fc: fc.name)
    def test_static_dominates_dynamic_per_bucket(self, flowchart):
        for policy in all_allow_policies(flowchart.arity):
            analysis = epoch_influence_analysis(flowchart, policy.allowed)
            observed = []

            def observer(node, labels, pc_label, active, epoch):
                observed.append((node, dict(labels), pc_label,
                                 frozenset(active)))

            for point in GRID:
                observed.clear()
                surveil(flowchart, point, policy.allowed,
                        policy_observer=observer)
                for node, labels, pc_label, active in observed:
                    static_pc = analysis.pc_at(node, active)
                    assert pc_label <= static_pc, (
                        flowchart.name, policy.name, point, node)
                    for name, label in labels.items():
                        assert label <= analysis.label_at(
                            node, name, active), (
                            flowchart.name, policy.name, point, node, name)

    def test_loop_buckets_cover_both_policies(self):
        # The loop body re-installs allow(1) every iteration, so the
        # post-loop assignment is reachable under the initial policy
        # (zero iterations) and under allow(1).
        fc = policy_loop_program()
        analysis = epoch_influence_analysis(fc, frozenset((2,)))
        halt = next(iter(fc.halt_ids()))
        assert len(analysis.policies_at(halt)) == 2


class TestPassPlumbing:
    def test_pass_reports_iterations(self):
        lint_pass = DynamicPolicyPass()
        from repro.analysis import AnalysisContext

        context = AnalysisContext(policy_tighten_program(),
                                  AllowPolicy([1], 2))
        lint_pass.run(context)
        assert lint_pass.iterations >= 1

    def test_lint_report_carries_pass_stats(self):
        report = lint_flowchart(downgrade_guarded_program(),
                                AllowPolicy([2], 2))
        payload = report.to_dict()
        assert "pass_stats" in payload
        assert payload["pass_stats"]["epochs"]["iterations"] >= 1
        assert payload["pass_stats"]["unwinding"]["states_explored"] >= 1
        for stats in payload["pass_stats"].values():
            assert stats["seconds"] >= 0

    def test_launder_is_the_intransitive_witness(self):
        # y := x1; downgrade y(1): certified even under allow() — the
        # admitted edge is the only thing separating this from the
        # tightening rejection above.
        fc = downgrade_launder_program()
        for policy in all_allow_policies(2):
            assert epoch_verdict(fc, policy).certified
