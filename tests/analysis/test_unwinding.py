"""Tests for the unwinding checker (INT000–INT002).

Obligations:

- the exact reachable-state enumeration agrees with the epoch fixpoint
  on certification across the whole dynamic suite × every policy (the
  fixpoint is an approximation; on this finite label space the two
  must coincide on the library);
- INT001 (local respect) fires exactly when some reachable observation
  point carries undischarged influence;
- INT002 (step consistency) fires when the downgrade occurrence is
  conditioned on secrets outside the policy and the admitted edge;
- state-space size and iteration counts are recorded and positive.
"""

from repro.analysis import (UnwindingPass, epoch_verdict, lint_flowchart,
                            unwinding_check)
from repro.core.policy import AllowPolicy
from repro.flowchart.library import (downgrade_guarded_program,
                                     downgrade_launder_program,
                                     downgrade_partial_program,
                                     dynamic_policy_suite,
                                     forgetting_program)
from repro.verify.enumerate import all_allow_policies


class TestUnwindingCheck:
    def test_agrees_with_epoch_verdict_on_the_suite(self):
        for fc in dynamic_policy_suite():
            for policy in all_allow_policies(fc.arity):
                unwinding = unwinding_check(fc, policy)
                epoch = epoch_verdict(fc, policy)
                assert unwinding.certified == epoch.certified, \
                    (fc.name, policy.name)

    def test_records_state_space_and_iterations(self):
        for fc in dynamic_policy_suite():
            result = unwinding_check(fc, AllowPolicy([1], 2))
            assert result.states_explored >= len(fc.boxes) - 1
            assert result.iterations >= result.states_explored
            payload = result.to_dict()
            assert payload["states_explored"] == result.states_explored
            assert payload["iterations"] == result.iterations

    def test_local_respect_violation_names_the_excess(self):
        # y := x1 + x2; downgrade y(2) under allow(2): index 1 is
        # neither admitted nor discharged.
        result = unwinding_check(downgrade_partial_program(),
                                 AllowPolicy([2], 2))
        assert not result.certified
        assert any(v.excess == frozenset((1,))
                   for v in result.local_respect)

    def test_step_consistency_on_guarded_downgrade(self):
        # if x1 > 0 { downgrade y(1) } under allow(2): the occurrence
        # of the downgrade is conditioned on x1 — but index 1 IS the
        # discharged edge, so the leak through the decision is index 1
        # itself... which the edge admits.  Under allow() the PC at the
        # downgrade carries {1} and the edge drops {1}: still admitted.
        # The witness needs a *third* index or a test on the
        # non-discharged input; build one inline.
        from repro.flowchart.parser import parse_program

        fc = parse_program(
            "program guard_on_secret(x1, x2) {"
            "  if x2 > 0 { downgrade y(1) } else { y := x1 }"
            "}").compile()
        result = unwinding_check(fc, AllowPolicy([1], 2))
        assert result.step_consistency
        assert any(v.excess == frozenset((2,))
                   for v in result.step_consistency)

    def test_launder_certified_under_allow_none(self):
        result = unwinding_check(downgrade_launder_program(),
                                 AllowPolicy([], 2))
        assert result.certified
        assert not result.local_respect
        assert not result.step_consistency


class TestUnwindingPass:
    def test_skips_flowcharts_without_downgrades(self):
        lint_pass = UnwindingPass()
        from repro.analysis import AnalysisContext

        context = AnalysisContext(forgetting_program(), AllowPolicy([1], 2))
        assert lint_pass.run(context) == []
        assert lint_pass.iterations is None

    def test_int001_in_lint_report(self):
        report = lint_flowchart(downgrade_guarded_program(),
                                AllowPolicy([2], 2))
        assert any(d.code == "INT001" for d in report.diagnostics)
        assert report.exit_code == 1

    def test_int000_info_when_certified(self):
        report = lint_flowchart(downgrade_launder_program(),
                                AllowPolicy([], 2))
        int000 = [d for d in report.diagnostics if d.code == "INT000"]
        assert len(int000) == 1
        assert int000[0].data["states_explored"] >= 1
        assert report.exit_code == 0

    def test_int002_does_not_fail_the_lint(self):
        # The PC persists to the halt, so under a constant policy every
        # INT002 drags an INT001 along; only a later loosening
        # policy_change leaves the secret-guarded downgrade occurrence
        # as the sole finding — and a warning must not fail the lint.
        from repro.flowchart.parser import parse_program

        fc = parse_program(
            "program guard_on_secret(x1, x2) {"
            "  y := x1;"
            "  if x2 > 0 { downgrade y(1) };"
            "  policy allow(1, 2)"
            "}").compile()
        report = lint_flowchart(fc, AllowPolicy([1], 2))
        assert any(d.code == "INT002" for d in report.diagnostics)
        assert all(d.code != "INT001" for d in report.diagnostics)
        assert report.exit_code == 0


class TestDeterminism:
    def test_report_order_is_stable_across_runs(self):
        # The bugfix sweep target: two passes emitting the same
        # (severity, code, node) must still order deterministically —
        # pass_name is the final sort tiebreak.
        fc = downgrade_guarded_program()
        policy = AllowPolicy([2], 2)
        first = [d.to_dict() for d in
                 lint_flowchart(fc, policy).diagnostics]
        for _ in range(5):
            again = [d.to_dict() for d in
                     lint_flowchart(fc, policy).diagnostics]
            assert again == first

    def test_reversed_registration_yields_same_order(self):
        from repro.analysis import PassManager, default_passes

        fc = downgrade_guarded_program()
        policy = AllowPolicy([2], 2)
        forward = PassManager(default_passes()).run(fc, policy)
        backward = PassManager(
            list(reversed(default_passes()))).run(fc, policy)
        assert ([d.to_dict() for d in forward.diagnostics]
                == [d.to_dict() for d in backward.diagnostics])
