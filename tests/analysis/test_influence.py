"""Unit + property tests for the static influence fixpoint.

The load-bearing property (checked over the whole figure library, every
concrete input): the static per-PC labels dominate the dynamic labels
of *every* execution — high-water and forgetting alike, at every box
the run visits, not only at the halt.  That pointwise domination is the
whole soundness argument for certifying without executing.
"""

import pytest

from repro.analysis import influence_analysis, static_verdict
from repro.core import ProductDomain
from repro.core.errors import PolicyError
from repro.core.policy import AllowPolicy
from repro.flowchart.expr import Const, var
from repro.flowchart.library import (example8_program, extended_suite,
                                     forgetting_program,
                                     reconvergence_program, timing_loop)
from repro.flowchart.structured import Assign, If, StructuredProgram
from repro.surveillance.dynamic import surveil
from repro.verify import all_allow_policies

EMPTY = frozenset()


class TestFixpoint:
    def test_explicit_flow(self):
        fc = StructuredProgram(["x1", "x2"],
                               [Assign("y", var("x1") + var("x2"))],
                               name="sum").compile()
        analysis = influence_analysis(fc)
        assert analysis.output_label() == {1, 2}

    def test_implicit_flow_through_decision(self):
        fc = example8_program()  # if x2 = 1 then y := 1 else y := x1
        analysis = influence_analysis(fc)
        # Both arms assign under the x2 test; the else arm reads x1.
        assert analysis.output_label() == {1, 2}

    def test_pc_label_is_monotone_no_forgetting(self):
        # y := 1 after the branch reconverges: the dynamic *forgetting*
        # mechanism still carries C̄ = {1}; so must the static PC.
        fc = reconvergence_program()
        analysis = influence_analysis(fc)
        assert analysis.output_label() == {1}

    def test_iterations_terminate_on_loops(self):
        analysis = influence_analysis(timing_loop())
        assert analysis.iterations >= 1
        assert analysis.output_label()  # the loop leaks its bound

    def test_verdict_certified_and_rejected(self):
        fc = forgetting_program()
        assert static_verdict(fc, AllowPolicy([1, 2], 2)).certified
        verdict = static_verdict(fc, AllowPolicy([2], 2))
        assert not verdict.certified
        assert 1 in verdict.excess

    def test_verdict_arity_mismatch(self):
        with pytest.raises(PolicyError):
            static_verdict(forgetting_program(), AllowPolicy([1], 3))

    def test_verdict_requires_allow_policy(self):
        analysis = influence_analysis(forgetting_program())
        with pytest.raises(PolicyError):
            analysis.verdict("allow(1)")

    def test_test_label_reads_entry_state(self):
        fc = StructuredProgram(
            ["x1", "x2"],
            [Assign("t", var("x1")),
             If(var("t").eq(0), [Assign("y", Const(1))],
                [Assign("y", Const(2))])],
            name="copied-test").compile()
        analysis = influence_analysis(fc)
        (decision_id,) = fc.decision_ids()
        assert analysis.test_label(decision_id) == {1}


def _grid(arity):
    return ProductDomain.integer_grid(0, 2, arity)


class TestStaticDominatesDynamic:
    """Satellite property: static labels ⊇ dynamic labels, per PC."""

    @pytest.mark.parametrize(
        "flowchart", extended_suite(), ids=lambda fc: fc.name)
    @pytest.mark.parametrize("forgetting", [True, False],
                             ids=["forgetting", "highwater"])
    def test_every_run_every_box(self, flowchart, forgetting):
        analysis = influence_analysis(flowchart)
        allowed = frozenset(range(1, flowchart.arity + 1))

        failures = []

        for point in _grid(flowchart.arity):
            def observer(node, labels, pc_label, point=point):
                static_pc = analysis.pc_influence.get(node, EMPTY)
                if not pc_label <= static_pc:
                    failures.append((point, node, "pc", pc_label,
                                     static_pc))
                state = analysis.var_influence.get(node, {})
                for name, label in labels.items():
                    if not label <= state.get(name, EMPTY):
                        failures.append((point, node, name, label,
                                         state.get(name, EMPTY)))

            surveil(flowchart, point, allowed, forgetting=forgetting,
                    observer=observer)

        assert not failures, failures[:5]

    @pytest.mark.parametrize(
        "flowchart", extended_suite(), ids=lambda fc: fc.name)
    def test_certified_implies_surveillance_never_trips(self, flowchart):
        analysis = influence_analysis(flowchart)
        for policy in all_allow_policies(flowchart.arity):
            if not analysis.verdict(policy).certified:
                continue
            for point in _grid(flowchart.arity):
                run = surveil(flowchart, point, policy.allowed)
                assert not run.violated, (flowchart.name, policy.name,
                                          point)
