"""Unit tests for the flowlint passes and the pass manager."""

import pytest

from repro.analysis import (AnalysisPass, PassManager, Severity,
                            lint_flowchart)
from repro.analysis.timing import arm_steps
from repro.core.policy import AllowPolicy
from repro.flowchart.analysis import dominators
from repro.flowchart.boxes import (AssignBox, DecisionBox, HaltBox,
                                   StartBox)
from repro.flowchart.expr import Compare, Const, var
from repro.flowchart.library import (extended_suite, forgetting_program,
                                     timing_loop)
from repro.flowchart.program import Flowchart
from repro.flowchart.structured import Assign, If, StructuredProgram, While


def codes(report):
    return [d.code for d in report.diagnostics]


class TestInfluencePass:
    def test_rejection_is_error(self):
        report = lint_flowchart(forgetting_program(), AllowPolicy([2], 2))
        assert "FLOW001" in codes(report)
        assert report.has_errors and report.exit_code == 1

    def test_certification_is_info(self):
        report = lint_flowchart(forgetting_program(),
                                AllowPolicy([1, 2], 2))
        assert "FLOW002" in codes(report)
        assert not report.has_errors

    def test_skipped_without_policy(self):
        report = lint_flowchart(forgetting_program())
        assert "FLOW001" not in codes(report)
        assert "FLOW002" not in codes(report)
        assert "influence" not in report.pass_seconds


class TestTimingChannelPass:
    def test_unequal_arms_flagged(self):
        fc = StructuredProgram(
            ["x1"],
            [If(var("x1").eq(0),
                [Assign("y", Const(1))],
                [Assign("t", Const(0)), Assign("y", Const(2))])],
            name="unequal-arms").compile()
        report = lint_flowchart(fc)
        assert "TIME001" in codes(report)

    def test_equal_arms_clean(self):
        fc = StructuredProgram(
            ["x1"],
            [If(var("x1").eq(0), [Assign("y", Const(1))],
                [Assign("y", Const(2))])],
            name="equal-arms").compile()
        report = lint_flowchart(fc)
        assert "TIME001" not in codes(report)
        assert "TIME002" not in codes(report)

    def test_loop_arm_is_unbounded(self):
        report = lint_flowchart(timing_loop())
        assert "TIME002" in codes(report)

    def test_policy_silences_allowed_tests(self):
        fc = StructuredProgram(
            ["x1"],
            [If(var("x1").eq(0),
                [Assign("y", Const(1))],
                [Assign("t", Const(0)), Assign("y", Const(2))])],
            name="allowed-test").compile()
        report = lint_flowchart(fc, AllowPolicy([1], 1))
        assert "TIME001" not in codes(report)
        report = lint_flowchart(fc, AllowPolicy([], 1))
        assert "TIME001" in codes(report)

    def test_arm_steps_straight_line(self):
        fc = StructuredProgram(
            ["x1"],
            [If(var("x1").eq(0),
                [Assign("y", Const(1))],
                [Assign("t", Const(0)), Assign("y", Const(2))])],
            name="arm-count").compile()
        (decision_id,) = fc.decision_ids()
        box = fc.boxes[decision_id]
        dom = dominators(fc)
        from repro.flowchart.analysis import (immediate_postdominator,
                                              postdominators)
        join = immediate_postdominator(fc, decision_id, postdominators(fc))
        true_steps = arm_steps(fc, box.true_next, join, decision_id, dom)
        false_steps = arm_steps(fc, box.false_next, join, decision_id, dom)
        assert {true_steps, false_steps} == {1, 2}


class TestUninitializedReadPass:
    def test_flags_maybe_unassigned_read(self):
        # r is assigned only on the true arm, then read unconditionally.
        fc = StructuredProgram(
            ["x1"],
            [If(var("x1").eq(0), [Assign("r", Const(1))], []),
             Assign("y", var("r"))],
            name="maybe-uninit").compile()
        report = lint_flowchart(fc)
        hits = [d for d in report.diagnostics if d.code == "HYG001"]
        assert hits and hits[0].data["variable"] == "r"

    def test_clean_when_assigned_on_all_paths(self):
        fc = StructuredProgram(
            ["x1"],
            [If(var("x1").eq(0), [Assign("r", Const(1))],
                [Assign("r", Const(2))]),
             Assign("y", var("r"))],
            name="both-arms").compile()
        assert "HYG001" not in codes(lint_flowchart(fc))

    def test_unassigned_output_flagged(self):
        fc = StructuredProgram(["x1"], [Assign("t", var("x1"))],
                               name="no-output").compile()
        report = lint_flowchart(fc)
        hits = [d for d in report.diagnostics if d.code == "HYG001"]
        assert any(d.data["variable"] == "y" for d in hits)


class TestUnreachableCodePass:
    def make_constant_branch(self):
        # Hand-built: decision on a constant, with the false arm dead.
        boxes = {
            "s0": StartBox("d"),
            "d": DecisionBox(Compare("==", Const(0), Const(0)), "a", "b"),
            "a": AssignBox("y", Const(1), "h"),
            "b": AssignBox("y", Const(2), "h"),
            "h": HaltBox(),
        }
        return Flowchart(boxes, ["x1"], "y", name="const-branch")

    def test_constant_predicate_and_dead_arm(self):
        report = lint_flowchart(self.make_constant_branch())
        assert "HYG003" in codes(report)
        hits = [d for d in report.diagnostics if d.code == "HYG002"]
        assert [d.node for d in hits] == ["b"]

    def test_clean_program_has_no_unreachable(self):
        assert "HYG002" not in codes(lint_flowchart(forgetting_program()))


class TestDeadAssignmentPass:
    def test_overwritten_value_flagged(self):
        fc = StructuredProgram(
            ["x1"],
            [Assign("y", var("x1")), Assign("y", Const(0))],
            name="clobber").compile()
        hits = [d for d in lint_flowchart(fc).diagnostics
                if d.code == "HYG004"]
        assert len(hits) == 1

    def test_live_through_loop_not_flagged(self):
        fc = StructuredProgram(
            ["x1"],
            [Assign("n", var("x1")), Assign("y", Const(0)),
             While(var("n").gt(0),
                   [Assign("y", var("y") + Const(1)),
                    Assign("n", var("n") - Const(1))])],
            name="live-loop").compile()
        assert "HYG004" not in codes(lint_flowchart(fc))


class TestDivisionByZeroPass:
    def test_constant_zero_divisor(self):
        fc = StructuredProgram(
            ["x1"], [Assign("y", var("x1") // Const(0))],
            name="div0").compile()
        report = lint_flowchart(fc)
        hits = [d for d in report.diagnostics if d.code == "HYG005"]
        assert hits and hits[0].data["operator"] == "//"

    def test_folded_zero_divisor(self):
        fc = StructuredProgram(
            ["x1"], [Assign("y", var("x1") % (Const(1) - Const(1)))],
            name="mod-folded").compile()
        assert "HYG005" in codes(lint_flowchart(fc))

    def test_variable_divisor_not_flagged(self):
        fc = StructuredProgram(
            ["x1", "x2"], [Assign("y", var("x1") // var("x2"))],
            name="div-var").compile()
        assert "HYG005" not in codes(lint_flowchart(fc))


class TestPassManager:
    def test_duplicate_name_rejected(self):
        manager = PassManager.with_default_passes()
        class Dup(AnalysisPass):
            name = "influence"
        with pytest.raises(ValueError):
            manager.register(Dup())

    def test_custom_pass_runs(self):
        class Always(AnalysisPass):
            name = "always"
            def run(self, context):
                from repro.analysis import Diagnostic
                return [Diagnostic("X001", Severity.INFO, self.name,
                                   "hello")]
        report = PassManager([Always()]).run(forgetting_program())
        assert codes(report) == ["X001"]
        assert "always" in report.pass_seconds

    def test_library_is_clean_at_error_severity(self):
        # The reproduction's own figure programs must lint clean: no
        # error-severity diagnostics without a policy.
        for flowchart in extended_suite():
            report = lint_flowchart(flowchart)
            assert not report.has_errors, (flowchart.name,
                                           codes(report))
