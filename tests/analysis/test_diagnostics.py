"""Unit tests for repro.analysis.diagnostics."""

from repro.analysis import Diagnostic, LintReport, Severity


def diag(code="HYG001", severity=Severity.WARNING, node=None):
    return Diagnostic(code, severity, "test-pass", f"message for {code}",
                      node=node, data={"k": 1})


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_is_lowercase_name(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.INFO) == "info"


class TestDiagnostic:
    def test_to_dict_round_trips_fields(self):
        d = diag(node="s3")
        payload = d.to_dict()
        assert payload["code"] == "HYG001"
        assert payload["severity"] == "warning"
        assert payload["pass"] == "test-pass"
        assert payload["node"] == "s3"
        assert payload["data"] == {"k": 1}

    def test_render_includes_node_when_present(self):
        assert "[s3]" in diag(node="s3").render()
        assert "[" not in diag(node=None).render()

    def test_data_is_copied(self):
        source = {"k": 1}
        d = Diagnostic("X", Severity.INFO, "p", "m", data=source)
        source["k"] = 2
        assert d.data == {"k": 1}


class TestLintReport:
    def make(self, diagnostics):
        return LintReport("prog", diagnostics, {"test-pass": 0.001},
                          policy_name="allow(1)")

    def test_sorted_most_severe_first(self):
        report = self.make([diag("HYG001", Severity.WARNING),
                            diag("FLOW001", Severity.ERROR),
                            diag("FLOW002", Severity.INFO)])
        severities = [d.severity for d in report.diagnostics]
        assert severities == [Severity.ERROR, Severity.WARNING,
                              Severity.INFO]

    def test_exit_code_follows_errors(self):
        assert self.make([diag()]).exit_code == 0
        assert self.make([diag("F", Severity.ERROR)]).exit_code == 1
        assert self.make([]).exit_code == 0

    def test_counts(self):
        report = self.make([diag("A", Severity.ERROR),
                            diag("B", Severity.ERROR),
                            diag("C", Severity.INFO)])
        assert report.counts() == {"error": 2, "warning": 0, "info": 1}

    def test_render_mentions_program_policy_and_counts(self):
        text = self.make([diag()]).render()
        assert "prog" in text and "allow(1)" in text
        assert "1 warning(s)" in text

    def test_to_dict_shape(self):
        payload = self.make([diag()]).to_dict()
        assert payload["flowchart"] == "prog"
        assert payload["policy"] == "allow(1)"
        assert len(payload["diagnostics"]) == 1
        assert "test-pass" in payload["pass_seconds"]
