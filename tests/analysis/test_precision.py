"""Tests for the static-vs-dynamic precision harness.

The acceptance criterion of the whole subsystem lives here: over the
full figure library × every allow policy, the static verdicts must
NEVER accept a pair the exhaustive semantic soundness check rejects,
and the harness must report the completeness ladder for every program.
"""

import pytest

from repro.analysis import (PairPrecision, pair_precision,
                            precision_harness)
from repro.core import ProductDomain
from repro.core.policy import AllowPolicy
from repro.flowchart.library import (dynamic_policy_suite, extended_suite,
                                     forgetting_program,
                                     reconvergence_program)

# One harness run shared by the module: ~90 pairs, well under a second.
REPORT = precision_harness()
ALL_PROGRAMS = list(extended_suite()) + list(dynamic_policy_suite())
SUITE_NAMES = {fc.name for fc in ALL_PROGRAMS}


class TestSoundness:
    def test_no_unsound_static_accepts(self):
        assert REPORT.unsound_pairs() == []

    def test_every_pair_respects_the_ladder(self):
        # static ≤ highwater ≤ dynamic, pointwise per pair.  For
        # classic pairs dynamic ≤ maximal too, and a certified
        # influence verdict implies a certified CFG one (the CFG
        # certifier is strictly the sharper static analysis).  Dynamic
        # families break both on purpose: an admitted downgrade is
        # accepted by the monitor but violates the fixed-policy NI
        # baseline the maximal mechanism encodes, and the CFG certifier
        # conservatively rejects every dynamic flowchart.
        for pair in REPORT.pairs:
            assert pair.static_accepts <= pair.highwater_accepts
            assert pair.highwater_accepts <= pair.dynamic_accepts
            if pair.family == "classic":
                assert pair.dynamic_accepts <= pair.maximal_accepts
                if pair.static_certified:
                    assert pair.cfg_certified
            else:
                # The dynamic families' semantic reference is the
                # monitor itself: an epoch-certified pair must accept
                # the whole grid.
                assert not pair.cfg_certified
                if pair.static_certified:
                    assert pair.dynamic_accepts == pair.domain_size

    def test_exhaustive_sound_iff_maximal_accepts_all(self):
        for pair in REPORT.pairs:
            assert pair.exhaustive_sound == (
                pair.maximal_accepts == pair.domain_size)

    def test_intransitive_gap_is_witnessed(self):
        # At least one downgrader pair shows the intransitive gap: the
        # monitor accepts everything while the NI baseline rejects —
        # the whole point of an admitted declassification edge.
        assert any(pair.family == "downgrader"
                   and pair.dynamic_accepts == pair.domain_size
                   and not pair.exhaustive_sound
                   for pair in REPORT.pairs)


class TestCoverage:
    def test_every_library_program_reported(self):
        assert {pair.program_name for pair in REPORT.pairs} == SUITE_NAMES
        assert set(REPORT.per_program()) == SUITE_NAMES

    def test_every_allow_policy_per_program(self):
        by_program = {}
        for pair in REPORT.pairs:
            by_program.setdefault(pair.program_name, set()).add(
                pair.policy_name)
        for flowchart in ALL_PROGRAMS:
            assert len(by_program[flowchart.name]) == \
                2 ** flowchart.arity

    def test_dynamic_families_present(self):
        families = {pair.family for pair in REPORT.pairs}
        assert families == {"classic", "policy-change", "downgrader"}
        dynamic = [pair for pair in REPORT.pairs
                   if pair.family != "classic"]
        assert len(dynamic) >= 20
        for pair in dynamic:
            assert pair.unwinding_certified is not None
            assert pair.unwinding_states > 0
            assert pair.unwinding_iterations > 0

    def test_gap_fields_present_for_every_pair(self):
        payload = REPORT.to_dict()
        assert len(payload["pairs"]) == len(REPORT.pairs)
        for row in payload["pairs"]:
            assert "static_gap" in row and "dynamic_gap" in row
            if row["family"] == "classic":
                assert row["static_gap"] >= 0
            else:
                # Gaps are measured against the NI-baseline maximal
                # mechanism; a certified declassifier legitimately
                # exceeds it, so the gap may go negative.
                assert "unsound_static" in row and not row["unsound_static"]


class TestKnownGaps:
    """Pin the paper's own counterexamples as harness rows."""

    def grid(self, arity):
        return ProductDomain.integer_grid(0, 2, arity)

    def test_reconvergence_page_49(self):
        # Q is constantly 1: exhaustively sound for allow(2), maximal
        # accepts everything, yet dynamic surveillance and the
        # influence verdict both reject — the page-49 phenomenon.
        fc = reconvergence_program()
        pair = pair_precision(fc, AllowPolicy([2], 2), self.grid(2))
        assert pair.exhaustive_sound
        assert pair.maximal_accepts == pair.domain_size
        assert pair.dynamic_accepts == 0
        assert not pair.static_certified
        assert pair.static_gap == pair.domain_size

    def test_forgetting_page_48(self):
        # Forgetting lets surveillance accept runs the high-water
        # mechanism rejects: dynamic > highwater on allow(2).
        fc = forgetting_program()
        pair = pair_precision(fc, AllowPolicy([2], 2), self.grid(2))
        assert pair.dynamic_accepts > pair.highwater_accepts == 0
        assert not pair.static_certified

    def test_full_policy_always_certified(self):
        for flowchart in extended_suite():
            policy = AllowPolicy(list(range(1, flowchart.arity + 1)),
                                 flowchart.arity)
            pair = pair_precision(flowchart, policy,
                                  self.grid(flowchart.arity))
            assert pair.static_certified, flowchart.name
            assert pair.static_accepts == pair.domain_size


class TestReportShape:
    def test_totals_and_render(self):
        totals = REPORT.totals()
        assert totals["pairs"] == len(REPORT.pairs)
        assert totals["unsound_static_accepts"] == 0
        text = REPORT.render()
        assert "unsound static accepts: 0" in text
        assert "forgetting" in text

    def test_false_positive_counts_are_gaps_not_bugs(self):
        fp = REPORT.false_positives()
        # The monotone influence pass is coarser than the CFG certifier.
        assert fp["influence"] >= fp["cfg"] >= 0

    def test_pair_repr_smoke(self):
        assert "PairPrecision" in repr(REPORT.pairs[0])
        assert "PrecisionReport" in repr(REPORT)
