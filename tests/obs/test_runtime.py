"""The runtime flag, the guarded hooks, and the instrumented hot layers.

These tests exercise the real integration: running flowcharts,
surveillance, and lint passes under ``obs.observed(...)`` and checking
the counters and events they leave behind.
"""

import pytest

from repro import obs
from repro.core.errors import FuelExhaustedError
from repro.core.policy import allow
from repro.flowchart import library
from repro.flowchart.fastpath import clear_result_memo, execute_compiled
from repro.flowchart.interpreter import execute
from repro.obs import runtime
from repro.verify.enumerate import default_grid


@pytest.fixture(autouse=True)
def _clean_runtime():
    """Every test starts and ends with observability off."""
    obs.disable()
    yield
    obs.disable()


class TestFlag:
    def test_off_by_default(self):
        assert runtime.active is False
        assert runtime.trace_active is False

    def test_emit_is_noop_when_off(self):
        runtime.emit("sweep_end", pairs=0, elapsed_s=0.0)  # must not raise

    def test_observed_toggles_and_restores(self):
        with obs.observed(reset=True):
            assert runtime.active is True
        assert runtime.active is False

    def test_reset_clears_previous_counters(self):
        with obs.observed(reset=True):
            runtime.inc("leftover")
        with obs.observed(reset=True):
            pass
        assert "leftover" not in obs.snapshot()["counters"]

    def test_unknown_event_kind_rejected_when_tracing(self):
        with obs.observed(sinks=[obs.RingBufferSink()], reset=True):
            with pytest.raises(ValueError, match="unknown event kind"):
                runtime.emit("telepathy")


class TestInterpreterInstrumentation:
    def test_run_counters_and_steps(self):
        flowchart = library.mixer_program()
        with obs.observed(reset=True):
            result = execute(flowchart, (2, 3))
        counters = obs.snapshot()["counters"]
        assert counters["run.count.interpreted"] == 1
        assert counters["run.steps_total"] == result.steps

    def test_fuel_exhaustion_recorded(self):
        flowchart = library.gcd_program()
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            with pytest.raises(FuelExhaustedError):
                execute(flowchart, (12, 18), fuel=2)
        assert obs.snapshot()["counters"]["run.fuel_exhausted"] == 1
        events = ring.events("fuel_exhausted")
        assert events and events[0]["fuel"] == 2

    def test_box_step_sampling(self):
        flowchart = library.gcd_program()
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], box_sample_every=2, reset=True):
            result = execute(flowchart, (12, 18))
        sampled = ring.events("box_step")
        assert len(sampled) == result.steps // 2
        assert all(event["program"] == flowchart.name for event in sampled)

    def test_no_box_steps_without_sampling(self):
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            execute(library.gcd_program(), (12, 18))
        assert ring.events("box_step") == []


class TestCompiledInstrumentation:
    def test_memo_hits_and_misses_counted(self):
        flowchart = library.mixer_program()
        clear_result_memo()
        with obs.observed(reset=True):
            first = execute_compiled(flowchart, (2, 3))
            second = execute_compiled(flowchart, (2, 3))
        counters = obs.snapshot()["counters"]
        assert counters["run.count.compiled"] == 2
        assert counters["memo.exec.misses"] == 1
        assert counters["memo.exec.hits"] == 1
        assert first.steps == second.steps

    def test_compiled_fuel_exhaustion_recorded(self):
        flowchart = library.gcd_program()
        clear_result_memo()
        with obs.observed(reset=True):
            with pytest.raises(FuelExhaustedError):
                execute_compiled(flowchart, (12, 18), fuel=2)
        assert obs.snapshot()["counters"]["run.fuel_exhausted"] == 1


class TestSurveillanceInstrumentation:
    def test_violations_and_runs_counted(self):
        from repro.surveillance.dynamic import surveil

        flowchart = library.forgetting_program()
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            run = surveil(flowchart, (1, 1), frozenset())  # allow() -> Λ
        assert run.violated
        counters = obs.snapshot()["counters"]
        assert counters["surveillance.runs"] == 1
        assert counters["violations.raised"] == 1
        assert counters["violations.surveillance"] == 1
        assert ring.events("violation")

    def test_instrumented_mechanism_memo_and_violations(self):
        from repro.surveillance.instrument import instrumented_mechanism

        flowchart = library.forgetting_program()
        domain = default_grid(flowchart.arity)
        policy = allow(arity=flowchart.arity)
        with obs.observed(reset=True):
            mechanism = instrumented_mechanism(flowchart, policy, domain)
            mechanism(0, 0)
            instrumented_mechanism(flowchart, policy, domain)
        counters = obs.snapshot()["counters"]
        assert counters["memo.instrument.hits"] == 1
        assert counters["memo.instrument.misses"] == 1
        assert counters["violations.instrumented"] == 1


class TestLintInstrumentation:
    def test_lint_pass_events_and_counters(self):
        from repro.analysis import lint_flowchart

        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            report = lint_flowchart(library.mixer_program())
        counters = obs.snapshot()["counters"]
        assert counters["lint.runs"] == 1
        assert counters["lint.passes"] == len(report.pass_seconds)
        events = ring.events("lint_pass")
        assert {event["pass"] for event in events} == set(report.pass_seconds)


class TestMemoStatExport:
    def test_export_memo_stats_sets_gauges(self):
        from repro.flowchart.fastpath import export_memo_stats

        flowchart = library.mixer_program()
        clear_result_memo()
        execute_compiled(flowchart, (1, 2))
        execute_compiled(flowchart, (1, 2))
        with obs.observed(reset=True):
            stats = export_memo_stats()
        gauges = obs.snapshot()["gauges"]
        assert gauges["memo.exec.hits"] == stats["hits"] >= 1
        assert gauges["memo.exec.maxsize"] == stats["maxsize"]
