"""Unit tests for the metrics primitives."""

import threading

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               STEP_BUCKETS)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter("c")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestGauge:
    def test_set_replaces(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.set(1.0)
        assert gauge.value == 1.0


class TestHistogram:
    def test_summary_fields(self):
        histogram = Histogram("h", bounds=(1, 10))
        for value in (0.5, 5, 50):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["sum"] == 55.5
        assert snapshot["min"] == 0.5
        assert snapshot["max"] == 50

    def test_bucket_assignment_including_inf_tail(self):
        histogram = Histogram("h", bounds=(1, 10))
        for value in (0.5, 5, 50):
            histogram.observe(value)
        buckets = histogram.snapshot()["buckets"]
        assert buckets["1"] == 1
        assert buckets["10"] == 1
        assert buckets["+Inf"] == 1

    def test_empty_histogram_snapshot(self):
        snapshot = Histogram("h").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] is None and snapshot["max"] is None

    def test_step_buckets_cover_typical_run_lengths(self):
        histogram = Histogram("steps", bounds=STEP_BUCKETS)
        histogram.observe(7)
        assert histogram.snapshot()["buckets"]["10"] == 1


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.gauge("size").set(7)
        registry.histogram("t").observe(0.2)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"runs": 2}
        assert snapshot["gauges"] == {"size": 7}
        assert snapshot["histograms"]["t"]["count"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}


class TestPrometheusExport:
    @staticmethod
    def parse(text):
        """Parse Prometheus text exposition back into samples + types."""
        types, samples = {}, {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                types[name] = kind
            elif line:
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value)
        return types, samples

    def test_round_trip_recovers_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("sweep.points_evaluated").inc(42)
        registry.gauge("memo.exec.size").set(7)
        hist = registry.histogram("chunk.seconds", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)

        types, samples = self.parse(registry.to_prometheus())

        assert types["repro_sweep_points_evaluated"] == "counter"
        assert samples["repro_sweep_points_evaluated"] == 42
        assert types["repro_memo_exec_size"] == "gauge"
        assert samples["repro_memo_exec_size"] == 7
        assert types["repro_chunk_seconds"] == "histogram"
        # Cumulative buckets, +Inf tail, then sum/count.
        assert samples['repro_chunk_seconds_bucket{le="0.1"}'] == 1
        assert samples['repro_chunk_seconds_bucket{le="1.0"}'] == 2
        assert samples['repro_chunk_seconds_bucket{le="+Inf"}'] == 3
        assert samples["repro_chunk_seconds_count"] == 3
        assert abs(samples["repro_chunk_seconds_sum"] - 5.55) < 1e-9

    def test_round_trip_matches_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(3)
        registry.gauge("c-d").set(1.5)
        _, samples = self.parse(registry.to_prometheus())
        snapshot = registry.snapshot()
        assert samples["repro_a_b"] == snapshot["counters"]["a.b"]
        assert samples["repro_c_d"] == snapshot["gauges"]["c-d"]

    def test_empty_registry_exports_empty_text(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        text = registry.to_prometheus(prefix="acme")
        assert "acme_runs 1" in text


class TestHistogramConcurrency:
    def test_multithreaded_observe_loses_nothing(self):
        """Hammer one histogram from many threads; every observation
        must land in exactly one bucket and the summary must balance."""
        hist = Histogram("h", bounds=(0.25, 0.5, 0.75))
        per_thread = 2000
        values = (0.1, 0.3, 0.6, 0.9)

        def hammer(seed):
            for index in range(per_thread):
                hist.observe(values[(index + seed) % len(values)])

        threads = [threading.Thread(target=hammer, args=(seed,))
                   for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snapshot = hist.snapshot()
        total = 8 * per_thread
        assert snapshot["count"] == total
        assert sum(snapshot["buckets"].values()) == total
        # 8 threads x 2000 observations cycle the 4 values evenly.
        assert set(snapshot["buckets"].values()) == {total // 4}


class TestLabeledMetrics:
    def test_labels_fold_into_the_name_sorted(self):
        from repro.obs.metrics import labeled_name, split_labels

        name = labeled_name("serve.decisions",
                            {"tenant": "alice", "decision": "accept"})
        assert name == ('serve.decisions{decision="accept",'
                        'tenant="alice"}')
        base, labels = split_labels(name)
        assert base == "serve.decisions"
        assert labels == {"decision": "accept", "tenant": "alice"}

    def test_label_values_escape_quotes_and_newlines(self):
        from repro.obs.metrics import labeled_name, split_labels

        tricky = 'he said "hi"\nback\\slash'
        _, labels = split_labels(labeled_name("m", {"k": tricky}))
        assert labels["k"] == tricky

    def test_registry_distinguishes_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("serve.decisions", labels={"tenant": "a"}).inc()
        registry.counter("serve.decisions", labels={"tenant": "b"}).inc(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]['serve.decisions{tenant="a"}'] == 1
        assert snapshot["counters"]['serve.decisions{tenant="b"}'] == 2

    def test_labeled_exposition_renders_proper_label_syntax(self):
        registry = MetricsRegistry()
        registry.counter("serve.decisions",
                         labels={"tenant": "a", "decision": "accept"}).inc(3)
        hist = registry.histogram("serve.latency_s", bounds=(0.1, 1.0),
                                  labels={"endpoint": "/execute"})
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.to_prometheus()
        assert ('repro_serve_decisions{decision="accept",tenant="a"} 3'
                in text)
        # le joins the label set last; cumulatives accumulate.
        assert ('repro_serve_latency_s_bucket{endpoint="/execute",'
                'le="0.1"} 1') in text
        assert ('repro_serve_latency_s_bucket{endpoint="/execute",'
                'le="+Inf"} 2') in text
        assert 'repro_serve_latency_s_count{endpoint="/execute"} 2' in text
        # One TYPE line per family, not per label set.
        assert text.count("# TYPE repro_serve_latency_s histogram") == 1


class TestShuffledBucketSnapshots:
    def test_reordered_bucket_keys_render_correct_cumulatives(self):
        """A snapshot whose bucket dict round-tripped through JSON with
        reordered keys must still render numerically-sorted le series."""
        from repro.obs.metrics import snapshot_to_prometheus

        snapshot = {
            "counters": {}, "gauges": {},
            "histograms": {
                "chunk.seconds": {
                    "count": 6, "sum": 3.0, "min": 0.01, "max": 2.0,
                    # Deliberately shuffled: lexicographic order would
                    # put "10.0" before "2.0" and break the cumsum.
                    "buckets": {"10.0": 1, "0.5": 2, "+Inf": 0,
                                "2.0": 2, "0.1": 1},
                },
            },
        }
        text = snapshot_to_prometheus(snapshot)
        lines = [line for line in text.splitlines() if "_bucket" in line]
        assert lines == [
            'repro_chunk_seconds_bucket{le="0.1"} 1',
            'repro_chunk_seconds_bucket{le="0.5"} 3',
            'repro_chunk_seconds_bucket{le="2.0"} 5',
            'repro_chunk_seconds_bucket{le="10.0"} 6',
            'repro_chunk_seconds_bucket{le="+Inf"} 6',
        ]

    def test_cli_from_json_round_trip_with_shuffled_keys(self, tmp_path,
                                                         capsys):
        """repro metrics --from-json --prometheus on a shuffled snapshot."""
        import json

        from repro.cli import main

        snapshot = {
            "counters": {"sweep.count": 1},
            "gauges": {},
            "histograms": {
                "sweep.pair_seconds": {
                    "count": 3, "sum": 1.5, "min": 0.1, "max": 1.0,
                    "buckets": {"+Inf": 0, "1.0": 1, "0.25": 2},
                },
            },
        }
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snapshot))
        code = main(["metrics", "--from-json", str(path), "--prometheus"])
        out = capsys.readouterr().out
        assert code == 0
        bucket_lines = [line for line in out.splitlines()
                        if "_bucket" in line]
        assert bucket_lines == [
            'repro_sweep_pair_seconds_bucket{le="0.25"} 2',
            'repro_sweep_pair_seconds_bucket{le="1.0"} 3',
            'repro_sweep_pair_seconds_bucket{le="+Inf"} 3',
        ]
