"""Unit tests for the metrics primitives."""

import threading

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               STEP_BUCKETS)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter("c")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestGauge:
    def test_set_replaces(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.set(1.0)
        assert gauge.value == 1.0


class TestHistogram:
    def test_summary_fields(self):
        histogram = Histogram("h", bounds=(1, 10))
        for value in (0.5, 5, 50):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["sum"] == 55.5
        assert snapshot["min"] == 0.5
        assert snapshot["max"] == 50

    def test_bucket_assignment_including_inf_tail(self):
        histogram = Histogram("h", bounds=(1, 10))
        for value in (0.5, 5, 50):
            histogram.observe(value)
        buckets = histogram.snapshot()["buckets"]
        assert buckets["1"] == 1
        assert buckets["10"] == 1
        assert buckets["+Inf"] == 1

    def test_empty_histogram_snapshot(self):
        snapshot = Histogram("h").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] is None and snapshot["max"] is None

    def test_step_buckets_cover_typical_run_lengths(self):
        histogram = Histogram("steps", bounds=STEP_BUCKETS)
        histogram.observe(7)
        assert histogram.snapshot()["buckets"]["10"] == 1


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.gauge("size").set(7)
        registry.histogram("t").observe(0.2)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"runs": 2}
        assert snapshot["gauges"] == {"size": 7}
        assert snapshot["histograms"]["t"]["count"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}


class TestPrometheusExport:
    @staticmethod
    def parse(text):
        """Parse Prometheus text exposition back into samples + types."""
        types, samples = {}, {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                types[name] = kind
            elif line:
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value)
        return types, samples

    def test_round_trip_recovers_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("sweep.points_evaluated").inc(42)
        registry.gauge("memo.exec.size").set(7)
        hist = registry.histogram("chunk.seconds", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)

        types, samples = self.parse(registry.to_prometheus())

        assert types["repro_sweep_points_evaluated"] == "counter"
        assert samples["repro_sweep_points_evaluated"] == 42
        assert types["repro_memo_exec_size"] == "gauge"
        assert samples["repro_memo_exec_size"] == 7
        assert types["repro_chunk_seconds"] == "histogram"
        # Cumulative buckets, +Inf tail, then sum/count.
        assert samples['repro_chunk_seconds_bucket{le="0.1"}'] == 1
        assert samples['repro_chunk_seconds_bucket{le="1.0"}'] == 2
        assert samples['repro_chunk_seconds_bucket{le="+Inf"}'] == 3
        assert samples["repro_chunk_seconds_count"] == 3
        assert abs(samples["repro_chunk_seconds_sum"] - 5.55) < 1e-9

    def test_round_trip_matches_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(3)
        registry.gauge("c-d").set(1.5)
        _, samples = self.parse(registry.to_prometheus())
        snapshot = registry.snapshot()
        assert samples["repro_a_b"] == snapshot["counters"]["a.b"]
        assert samples["repro_c_d"] == snapshot["gauges"]["c-d"]

    def test_empty_registry_exports_empty_text(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        text = registry.to_prometheus(prefix="acme")
        assert "acme_runs 1" in text
