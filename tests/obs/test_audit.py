"""The tamper-evident audit ledger: chain, seal, analytics.

The contract under test is the ISSUE 9 acceptance list: ``verify``
detects **every** single-record mutation, truncation, and reorder
(reporting the offending record number); sampling is a deterministic
function of record content; rotation yields standalone-verifiable
generations; and the per-tenant stats flag windowed violation spikes.
"""

import json

import pytest

from repro.core.errors import ReproError
from repro.obs.audit import (AuditLedger, SpikeTracker, budget_fingerprint,
                             classify_notice, decision_payload, ledger_stats,
                             load_ledger, merge_segments, query_records,
                             tail_records, verify_ledger)


def build_ledger(path, count=8, tenant="alice"):
    with AuditLedger(str(path), fresh=True) as ledger:
        for index in range(count):
            notice = "Λ!fuel[9]" if index % 3 == 2 else None
            ledger.append("notice" if notice else "accept", notice=notice,
                          tenant=tenant, endpoint="/execute",
                          provenance={"point": [index]})
    return str(path)


class TestChainVerify:
    def test_clean_ledger_verifies_sealed(self, tmp_path):
        path = build_ledger(tmp_path / "audit.jsonl")
        result = verify_ledger(path)
        assert result.ok and result.sealed
        assert result.records == 8
        assert result.problems == []

    def test_every_single_byte_flip_is_detected(self, tmp_path):
        """Flip each byte of the file in turn; verify must fail each time.

        The chain hashes raw line bytes, so even parse-neutral edits
        (whitespace, digit swaps inside strings) must break it.
        """
        path = build_ledger(tmp_path / "audit.jsonl", count=4)
        original = open(path, "rb").read()
        for offset in range(len(original)):
            mutated = bytearray(original)
            mutated[offset] ^= 0x01
            if mutated[offset] in (0x0A, 0x0D) or original[offset] == 0x0A:
                continue  # newline edits are structural, covered below
            with open(path, "wb") as handle:
                handle.write(bytes(mutated))
            assert not verify_ledger(path).ok, (
                f"byte flip at offset {offset} went undetected")
        with open(path, "wb") as handle:
            handle.write(original)
        assert verify_ledger(path).ok

    def test_mutation_reports_offending_record_number(self, tmp_path):
        path = build_ledger(tmp_path / "audit.jsonl")
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        lines[3] = lines[3].replace("accept", "acCept", 1)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        result = verify_ledger(path)
        assert not result.ok
        # The break surfaces at record 5 (1-based): record 4's bytes no
        # longer hash to record 5's prev pointer.
        assert any("record 5" in problem or "record 4" in problem
                   for problem in result.problems), result.problems

    def test_dropped_line_is_detected(self, tmp_path):
        path = build_ledger(tmp_path / "audit.jsonl")
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        del lines[2]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        result = verify_ledger(path)
        assert not result.ok
        assert any("record 3" in problem for problem in result.problems), (
            result.problems)

    def test_swapped_lines_are_detected(self, tmp_path):
        path = build_ledger(tmp_path / "audit.jsonl")
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        lines[1], lines[2] = lines[2], lines[1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        result = verify_ledger(path)
        assert not result.ok
        assert any("record 2" in problem for problem in result.problems), (
            result.problems)

    def test_tail_truncation_is_detected_by_the_seal(self, tmp_path):
        """Chopping whole records off the end keeps the chain intact —
        only the head seal can notice."""
        path = build_ledger(tmp_path / "audit.jsonl")
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:5]) + "\n")
        result = verify_ledger(path)
        assert not result.ok
        assert any("seal" in problem or "head" in problem
                   for problem in result.problems), result.problems

    def test_last_record_mutation_is_detected(self, tmp_path):
        """The final record has no successor hashing it; the seal must."""
        path = build_ledger(tmp_path / "audit.jsonl")
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        lines[-1] = lines[-1].replace("accept", "acXept", 1)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        assert not verify_ledger(path).ok

    def test_missing_ledger_is_an_error(self, tmp_path):
        with pytest.raises(ReproError):
            load_ledger(str(tmp_path / "nope.jsonl"))


class TestResumeAndRotation:
    def test_reopen_continues_the_chain(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        with AuditLedger(path) as ledger:
            ledger.append("accept", tenant="a", endpoint="/execute")
        with AuditLedger(path) as ledger:
            ledger.append("accept", tenant="a", endpoint="/execute")
        result = verify_ledger(path)
        assert result.ok and result.records == 2

    def test_rotation_generations_verify_standalone(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        with AuditLedger(path, max_bytes=600, keep=3) as ledger:
            for index in range(30):
                ledger.append("accept", tenant="t", endpoint="/execute",
                              provenance={"point": [index]})
        rotated = f"{path}.1"
        assert verify_ledger(path).ok
        assert verify_ledger(rotated).ok
        total = len(load_ledger(path)) + len(load_ledger(rotated))
        assert total >= 2  # records survive across generations

    def test_deferred_seal_trails_then_closes_exact(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        ledger = AuditLedger(path, fresh=True, seal_every=8)
        for index in range(5):
            ledger.append("accept", tenant="t", endpoint="/execute",
                          provenance={"point": [index]})
        # The data file is ahead of the seal until the ledger closes
        # (or reaches seal_every) — verify reports the stale seal.
        # (append_record flushes the data file itself.)
        stale = json.load(open(AuditLedger.head_path(path)))
        assert stale["records"] == 0
        assert not verify_ledger(path).ok
        ledger.close()
        result = verify_ledger(path)
        assert result.ok and result.records == 5

    def test_deferred_seal_rotation_seals_retired_generation(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        with AuditLedger(path, max_bytes=600, keep=3,
                         seal_every=64) as ledger:
            for index in range(30):
                ledger.append("accept", tenant="t", endpoint="/execute",
                              provenance={"point": [index]})
        assert verify_ledger(path).ok
        assert verify_ledger(f"{path}.1").ok

    def test_sampling_is_deterministic_by_content(self, tmp_path):
        first = str(tmp_path / "a.jsonl")
        second = str(tmp_path / "b.jsonl")
        for path in (first, second):
            with AuditLedger(path, sample=0.5, fresh=True) as ledger:
                for index in range(64):
                    ledger.append("accept", tenant="t", endpoint="/execute",
                                  provenance={"point": [index]})
        assert open(first, "rb").read() == open(second, "rb").read()
        kept = len(load_ledger(first))
        assert 0 < kept < 64  # thinned, but not emptied


class TestPayloads:
    def test_decision_payload_rejects_unknown_decisions(self):
        with pytest.raises(ReproError):
            decision_payload("maybe")

    def test_classify_notice_taxonomy(self):
        assert classify_notice(None) == "accept"
        assert classify_notice("Λ!fuel[100]") == "fuel"
        assert classify_notice("Λ!cap[8]") == "cap"
        assert classify_notice("Λ!crash[boom]") == "crash"
        assert classify_notice("Λ@e3") == "epoch"
        assert classify_notice("Λ") == "violation"

    def test_budget_fingerprint_is_stable_and_sensitive(self):
        base = budget_fingerprint(fuel=100, value_cap=8, backend="batch")
        assert base == budget_fingerprint(fuel=100, value_cap=8,
                                          backend="batch")
        assert base != budget_fingerprint(fuel=101, value_cap=8,
                                          backend="batch")

    def test_merge_segments_appends_in_given_order(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        segments = [[decision_payload("accept", endpoint="sweep",
                                      provenance={"chunk": c, "i": i})
                     for i in range(2)] for c in range(3)]
        with AuditLedger(path, fresh=True) as ledger:
            appended = merge_segments(ledger, segments)
        assert appended == 6
        records = load_ledger(path)
        assert [r["provenance"]["chunk"] for r in records] == [
            0, 0, 1, 1, 2, 2]
        assert verify_ledger(path).ok


class TestQueryAndStats:
    def test_query_filters_compose(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with AuditLedger(path, fresh=True) as ledger:
            ledger.append("accept", tenant="a", endpoint="/execute", ts=1.0)
            ledger.append("notice", notice="Λ!fuel[5]", tenant="a",
                          endpoint="/execute", ts=2.0)
            ledger.append("notice", notice="Λ", tenant="b",
                          endpoint="/lint", ts=3.0)
            ledger.append("accept", tenant="b", endpoint="sweep")  # no ts
        records = load_ledger(path)
        assert len(query_records(records, tenant="a")) == 2
        assert len(query_records(records, kind="fuel")) == 1
        assert len(query_records(records, endpoint="/lint")) == 1
        # Time filters exclude clock-less (sweep) records.
        assert len(query_records(records, since=1.5, until=2.5)) == 1
        assert len(query_records(records, tenant="b", kind="violation")) == 1

    def test_tail_returns_last_records(self, tmp_path):
        path = build_ledger(tmp_path / "t.jsonl", count=12)
        tail = tail_records(path, count=3)
        assert [record["rec"] for record in tail] == [9, 10, 11]

    def test_stats_flags_a_windowed_spike(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        with AuditLedger(path, fresh=True) as ledger:
            for index in range(100):
                ledger.append("accept", tenant="a", endpoint="/execute",
                              provenance={"i": index})
            for index in range(25):
                ledger.append("notice", notice="Λ", tenant="a",
                              endpoint="/execute", provenance={"j": index})
        stats = ledger_stats(load_ledger(path), window=50)
        row = stats["tenants"]["a"]
        assert row["total"] == 125 and row["notices"] == 25
        assert row["violation_rate"] == pytest.approx(0.2)
        assert row["window"]["rate"] == pytest.approx(0.5)
        assert row["window"]["spike"] is True

    def test_stats_quiet_tenant_never_spikes(self, tmp_path):
        path = build_ledger(tmp_path / "quiet.jsonl", count=30)
        stats = ledger_stats(load_ledger(path), window=50)
        assert stats["tenants"]["alice"]["window"]["spike"] is False


class TestSpikeTracker:
    def test_spike_fires_once_then_cools_down(self):
        tracker = SpikeTracker(window=10, spike_min_count=5)
        for _ in range(50):
            assert tracker.update("t", False) is None
        fired = [tracker.update("t", True) for _ in range(10)]
        rates = [rate for rate in fired if rate is not None]
        assert len(rates) == 1  # one alert per spike, not one per record

    def test_tenants_are_tracked_independently(self):
        tracker = SpikeTracker(window=10, spike_min_count=5)
        for _ in range(40):
            tracker.update("noisy", False)
            tracker.update("calm", False)
        for _ in range(10):
            tracker.update("noisy", True)
            tracker.update("calm", False)
        stats_fired = [tracker.update("calm", False) for _ in range(5)]
        assert all(rate is None for rate in stats_fired)
