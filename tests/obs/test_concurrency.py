"""Hammer tests: the memo and metrics registry under server concurrency.

`repro serve` shares one `_LRUMemo` and one `MetricsRegistry` across
every request thread, so torn reads that a CLI run could never observe
become routine: `memo_stats()` used to read `len`/`hits`/`misses`
without the memo lock and could report `size > maxsize` mid-trim.
These tests drive many threads through the shared structures and
assert every observable snapshot is internally consistent.
"""

import threading

import pytest

from repro.flowchart.fastpath import _LRUMemo, export_memo_stats, memo_stats
from repro.flowchart import library
from repro.flowchart.fastpath import execute_compiled
from repro.obs.metrics import MetricsRegistry

THREADS = 8
ROUNDS = 400


def hammer(worker, threads=THREADS):
    """Run `worker(index)` across threads, re-raising the first error."""
    errors = []

    def run(index):
        try:
            worker(index)
        except BaseException as error:  # noqa: BLE001 - reported below
            errors.append(error)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


class TestMemoHammer:
    def test_stats_never_tear_under_put_get_resize(self):
        memo = _LRUMemo(32)
        stop = threading.Event()

        def mutate(index):
            for round_ in range(ROUNDS):
                memo.put((index, round_), round_)
                memo.get((index, round_ - 1))
                if round_ % 50 == 0:
                    memo.resize(8 if round_ % 100 else 32)

        def observe(_):
            while not stop.is_set():
                stats = memo.stats()
                assert 0 <= stats["size"] <= max(stats["maxsize"], 0), stats
                assert stats["hits"] >= 0 and stats["misses"] >= 0

        observer = threading.Thread(target=observe, args=(0,))
        observer.start()
        try:
            hammer(mutate)
        finally:
            stop.set()
            observer.join()
        final = memo.stats()
        assert final["size"] <= final["maxsize"]

    def test_shared_exec_memo_consistent_across_threads(self):
        flowchart = library.parity_program()

        def run(index):
            for value in range(40):
                execute_compiled(flowchart, ((index * 40 + value) % 16,))
                stats = memo_stats()
                assert stats["size"] <= stats["maxsize"], stats

        hammer(run)

    def test_export_memo_stats_reports_consistent_size(self):
        stats = export_memo_stats()
        assert stats["size"] <= stats["maxsize"]


class TestRegistryHammer:
    def test_counters_lose_no_increments(self):
        registry = MetricsRegistry()

        def bump(_):
            for _ in range(ROUNDS):
                registry.counter("serve.requests").inc()
                registry.histogram("serve.latency").observe(0.001)
                registry.gauge("serve.inflight").set(1)

        hammer(bump)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["serve.requests"] == THREADS * ROUNDS
        histogram = snapshot["histograms"]["serve.latency"]
        assert histogram["count"] == THREADS * ROUNDS

    def test_snapshot_while_mutating_is_well_formed(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def mutate(index):
            for round_ in range(ROUNDS):
                registry.counter(f"c{index % 3}").inc()
                registry.histogram("h").observe(float(round_ % 7))
                registry.gauge("g").set(float(round_))

        def observe(_):
            while not stop.is_set():
                snapshot = registry.snapshot()
                for histogram in snapshot["histograms"].values():
                    assert histogram["count"] >= 0
                    if histogram["count"]:
                        assert histogram["min"] <= histogram["max"]
                for value in snapshot["counters"].values():
                    assert value >= 0

        observer = threading.Thread(target=observe, args=(0,))
        observer.start()
        try:
            hammer(mutate)
        finally:
            stop.set()
            observer.join()
