"""Offline trace analytics over plain event dicts — no runtime needed."""

import json

from repro.obs import (find_explanations, load_events, render_tree,
                       slowest_spans, summarize)
from repro.obs.trace import build_span_tree


def span_pair(span_id, op, parent=None, elapsed=0.5, seq=0, **fields):
    start = {"kind": "span_start", "seq": seq, "t": 0.0,
             "span": span_id, "op": op, **fields}
    if parent is not None:
        start["parent"] = parent
    end = {"kind": "span_end", "seq": seq + 1, "t": elapsed,
           "span": span_id, "op": op, "elapsed_s": elapsed}
    return [start, end]


def sample_trace():
    events = []
    events += span_pair("10-1", "sweep", elapsed=1.0, executor="thread")
    events += span_pair("10-2", "pair", parent="10-1", elapsed=0.6,
                        seq=2, pair=0, program="gcd", policy="allow()")
    events += span_pair("11-1", "chunk", parent="10-2", elapsed=0.4,
                        seq=4, pair=0, chunk=0)
    events.append({"kind": "violation", "seq": 6, "t": 0.3,
                   "program": "gcd", "span": "11-1"})
    events.append({"kind": "chunk_done", "seq": 7, "t": 0.4, "pair": 0,
                   "chunk": 0, "points": 9, "accepts": 4, "span": "11-1"})
    events.append({"kind": "explanation", "seq": 8, "t": 0.35,
                   "program": "gcd", "policy": "allow()", "point": [1, 2],
                   "site": "h0", "chain": [], "verdict": "violation"})
    return events


class TestLoadEvents:
    def test_skips_blank_and_truncated_lines(self):
        lines = [json.dumps({"kind": "violation", "seq": 0, "t": 0.0,
                             "program": "p"}),
                 "",
                 '{"kind": "viol']  # killed mid-write
        events = load_events(lines)
        assert len(events) == 1
        assert events[0]["program"] == "p"

    def test_skips_non_object_lines(self):
        assert load_events(["[1, 2]", "3"]) == []


class TestSummarize:
    def test_counts_and_span_aggregates(self):
        summary = summarize(sample_trace())
        assert summary["events"] == 9
        assert summary["kinds"]["span_start"] == 3
        assert summary["processes"] == 2  # pid prefixes 10 and 11
        assert summary["violations"] == 1
        assert summary["points_evaluated"] == 9
        assert summary["points_accepted"] == 4
        spans = summary["spans"]
        assert spans["total"] == 3
        assert spans["roots"] == 1
        assert spans["problems"] == []
        assert spans["by_op"]["pair"]["count"] == 1
        assert spans["by_op"]["pair"]["max_s"] == 0.6

    def test_empty_trace(self):
        summary = summarize([])
        assert summary["events"] == 0
        assert summary["processes"] == 0


class TestSlowestSpans:
    def test_ranked_slowest_first_and_capped(self):
        rows = slowest_spans(sample_trace(), top=2)
        assert [row["op"] for row in rows] == ["sweep", "pair"]
        assert rows[1]["program"] == "gcd"

    def test_top_zero_returns_nothing(self):
        assert slowest_spans(sample_trace(), top=0) == []


class TestFindExplanations:
    def test_filters_by_point_and_program(self):
        events = sample_trace()
        assert len(find_explanations(events)) == 1
        assert find_explanations(events, point=[1, 2])
        assert find_explanations(events, point=[0, 0]) == []
        assert find_explanations(events, program="gcd")
        assert find_explanations(events, program="mixer") == []


class TestRenderTree:
    def test_indented_rendering(self):
        text = render_tree(build_span_tree(sample_trace()))
        lines = text.splitlines()
        assert lines[0].startswith("sweep [10-1]")
        assert lines[1].startswith("  pair [10-2]")
        assert "program=gcd" in lines[1]
        assert lines[2].startswith("    chunk [11-1]")

    def test_truncation_is_announced(self):
        events = []
        events += span_pair("1-1", "pair", elapsed=1.0)
        for index in range(5):
            events += span_pair(f"1-{index + 2}", "point", parent="1-1",
                                seq=2 * index + 2, elapsed=0.1)
        text = render_tree(build_span_tree(events), max_children=2)
        assert "... 3 more child span(s) of pair elided" in text
        assert text.count("point [") == 2

    def test_problems_rendered_with_bang(self):
        events = [{"kind": "span_start", "seq": 0, "t": 0.0,
                   "span": "1-1", "op": "sweep"}]
        text = render_tree(build_span_tree(events))
        assert "! span 1-1 (sweep) never closed" in text
