"""Ledger durability: fsync at seal boundaries, torn-tail recovery.

Every seal asserts "these N records exist with this head hash", so the
data must be on disk before the sidecar claims it is.  ``durable=True``
(the default) fsyncs both the ledger file and the sidecar at every
seal boundary; ``durable=False`` opts a hot path back down to
flush-only crash consistency.  A crash mid-write leaves an
unterminated final line, which a resumed ledger truncates away and
re-seals, so the chain continues from the longest well-formed prefix.
"""

import os

import pytest

from repro.obs.audit import AuditLedger, load_ledger, verify_ledger


@pytest.fixture
def counted_fsync(monkeypatch):
    calls = []
    real_fsync = os.fsync

    def spy(fd):
        calls.append(fd)
        real_fsync(fd)

    monkeypatch.setattr(os, "fsync", spy)
    return calls


class TestDurableSeals:
    def test_default_ledger_fsyncs_every_seal(self, tmp_path, counted_fsync):
        path = str(tmp_path / "ledger.jsonl")
        with AuditLedger(path, fresh=True) as ledger:
            counted_fsync.clear()
            ledger.append("accept")
        # One data fsync + one sidecar fsync per seal (seal_every=1),
        # and close() found nothing unsealed so added none.
        assert len(counted_fsync) == 2

    def test_opt_out_never_fsyncs(self, tmp_path, counted_fsync):
        path = str(tmp_path / "ledger.jsonl")
        with AuditLedger(path, fresh=True, durable=False) as ledger:
            for _ in range(5):
                ledger.append("accept")
            ledger.flush()
        assert counted_fsync == []
        assert verify_ledger(path).ok

    def test_deferred_seal_fsyncs_once_per_batch(self, tmp_path,
                                                 counted_fsync):
        path = str(tmp_path / "ledger.jsonl")
        with AuditLedger(path, fresh=True, seal_every=0) as ledger:
            counted_fsync.clear()
            ledger.append("accept")
            ledger.append("notice", notice="Λ")
            assert counted_fsync == []  # no inline seal, no inline fsync
            ledger.flush()
            assert len(counted_fsync) == 2
        assert verify_ledger(path).ok

    def test_rotation_seals_durably(self, tmp_path, counted_fsync):
        path = str(tmp_path / "ledger.jsonl")
        with AuditLedger(path, fresh=True, max_bytes=200) as ledger:
            for index in range(8):
                ledger.append("accept", endpoint=f"/e{index}")
        assert os.path.exists(path + ".1")
        assert verify_ledger(path).ok
        assert verify_ledger(path + ".1").ok
        assert counted_fsync  # every generation sealed through fsync


class TestTornTailRecovery:
    def _seed_ledger(self, path, records=3):
        with AuditLedger(path, fresh=True) as ledger:
            for index in range(records):
                ledger.append("accept", endpoint=f"/e{index}")

    def test_resume_truncates_torn_tail_and_reseals(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        self._seed_ledger(path)
        with open(path, "ab") as handle:
            handle.write(b'{"decision":"acc')  # killed mid-write
        ledger = AuditLedger(path)
        assert ledger.records == 3
        ledger.append("notice", notice="Λ")
        ledger.close()
        result = verify_ledger(path)
        assert result.ok, result.problems
        assert result.records == 4
        assert [r["rec"] for r in load_ledger(path)] == [0, 1, 2, 3]

    def test_torn_only_file_recovers_to_genesis(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"torn')
        ledger = AuditLedger(path)
        assert ledger.records == 0
        ledger.append("accept")
        ledger.close()
        result = verify_ledger(path)
        assert result.ok, result.problems
        assert result.records == 1

    def test_clean_tail_is_left_alone(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        self._seed_ledger(path)
        before = open(path, "rb").read()
        ledger = AuditLedger(path)
        assert ledger.records == 3
        ledger.close()
        assert open(path, "rb").read() == before

    def test_torn_tail_after_stale_seal_rescans(self, tmp_path):
        # Non-durable crash shape: the sidecar seals 3 records but the
        # third line was torn.  Recovery truncates to 2 and re-seals.
        path = str(tmp_path / "ledger.jsonl")
        self._seed_ledger(path)
        with open(path, "rb+") as handle:
            data = handle.read()
            handle.truncate(len(data) - 10)  # tear the final record
        ledger = AuditLedger(path)
        assert ledger.records == 2
        ledger.close()
        result = verify_ledger(path)
        assert result.ok, result.problems
        assert result.records == 2
