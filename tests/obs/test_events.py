"""Unit tests for trace events: schema validation and sinks."""

import json

from repro.obs.events import (EVENT_KINDS, JsonlSink, RingBufferSink,
                              validate_event, validate_jsonl)


def good_event(**overrides):
    event = {"kind": "chunk_done", "seq": 0, "t": 0.1,
             "pair": 0, "chunk": 1, "points": 9, "accepts": 4}
    event.update(overrides)
    return event


class TestValidateEvent:
    def test_valid_event_has_no_problems(self):
        assert validate_event(good_event()) == []

    def test_missing_envelope_field(self):
        event = good_event()
        del event["seq"]
        assert any("seq" in problem for problem in validate_event(event))

    def test_wrong_field_type(self):
        problems = validate_event(good_event(t="soon"))
        assert any("'t'" in problem for problem in problems)

    def test_bool_is_not_an_integer(self):
        problems = validate_event(good_event(seq=True))
        assert any("seq" in problem for problem in problems)

    def test_unknown_kind(self):
        problems = validate_event(good_event(kind="telepathy"))
        assert any("unknown event kind" in problem for problem in problems)

    def test_missing_kind_required_field(self):
        event = good_event()
        del event["accepts"]
        assert any("accepts" in problem for problem in validate_event(event))

    def test_non_dict_rejected(self):
        assert validate_event([1, 2]) != []

    def test_every_kind_has_schema_coverage(self):
        from repro.obs.events import EVENT_SCHEMA
        assert set(EVENT_SCHEMA["kinds"]) == set(EVENT_KINDS)


class TestValidateJsonl:
    def test_counts_events_and_skips_blank_lines(self):
        lines = [json.dumps(good_event()), "", json.dumps(good_event(seq=1))]
        count, problems = validate_jsonl(lines)
        assert count == 2 and problems == []

    def test_reports_non_json_with_line_number(self):
        count, problems = validate_jsonl(["{not json"])
        assert count == 1
        assert problems and problems[0].startswith("line 1:")

    def test_reports_schema_problems_per_line(self):
        lines = [json.dumps(good_event()),
                 json.dumps({"kind": "chunk_done", "seq": 1, "t": 0.2})]
        _, problems = validate_jsonl(lines)
        assert problems and all(p.startswith("line 2:") for p in problems)

    def test_event_index_differs_from_line_number_across_blanks(self):
        lines = [json.dumps(good_event()), "", "", "{not json"]
        count, problems = validate_jsonl(lines)
        assert count == 2
        assert problems[0].startswith("line 4: event 2:")

    def test_malformed_line_problem_names_line_and_event(self):
        count, problems = validate_jsonl(["{not json"])
        assert count == 1
        assert problems[0].startswith("line 1: event 1: not JSON")

    def test_schema_mismatch_names_the_offending_key(self):
        event = good_event()
        del event["accepts"]
        event["seq"] = "zero"
        _, problems = validate_jsonl([json.dumps(event)])
        assert any("'seq'" in problem for problem in problems)
        assert any("'accepts'" in problem for problem in problems)
        assert all(problem.startswith("line 1: event 1:")
                   for problem in problems)


class TestJsonlSink:
    def test_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.write(good_event())
        sink.write(good_event(seq=1))
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "chunk_done"

    def test_wraps_existing_file_object_without_closing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as handle:
            sink = JsonlSink(handle)
            sink.write(good_event())
            sink.close()
            assert not handle.closed

    def test_flushes_every_event_immediately(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        try:
            sink.write(good_event())
            # Visible to other readers before close: crash-safety.
            assert len(path.read_text().splitlines()) == 1
        finally:
            sink.close()

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.write(good_event())
        assert sink._closed
        assert len(path.read_text().splitlines()) == 1

    def test_write_after_close_is_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.write(good_event())
        sink.close()
        sink.write(good_event(seq=1))  # must not raise or reopen
        sink.close()  # idempotent
        assert len(path.read_text().splitlines()) == 1


class TestRingBufferSink:
    def test_keeps_most_recent_events(self):
        sink = RingBufferSink(capacity=2)
        for seq in range(5):
            sink.write(good_event(seq=seq))
        assert len(sink) == 2
        assert [event["seq"] for event in sink.events()] == [3, 4]

    def test_filters_by_kind(self):
        sink = RingBufferSink()
        sink.write(good_event())
        sink.write({"kind": "sweep_end", "seq": 1, "t": 0.2,
                    "pairs": 1, "elapsed_s": 0.5})
        assert [e["kind"] for e in sink.events("sweep_end")] == ["sweep_end"]
