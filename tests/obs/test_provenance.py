"""Violation provenance: influence chains, verdicts, and event payloads."""

import pytest

from repro import obs
from repro.core.policy import allow
from repro.flowchart import library
from repro.verify.enumerate import default_grid


@pytest.fixture(autouse=True)
def _clean_runtime():
    obs.disable()
    yield
    obs.disable()


class TestDynamicExplain:
    def test_violation_chain_ends_at_violating_site(self):
        flowchart = library.mixer_program()
        explanation = obs.explain(flowchart, allow(1, arity=2), (1, 2))
        assert explanation.verdict == "violation"
        assert explanation.violated
        assert explanation.disallowed == [2]
        # The chain's final step is the halt check at the verdict site.
        assert explanation.chain[-1].kind == "check"
        assert explanation.chain[-1].node == explanation.site
        assert explanation.site in flowchart.boxes

    def test_chain_traces_disallowed_input_to_output(self):
        flowchart = library.mixer_program()
        explanation = obs.explain(flowchart, allow(1, arity=2), (1, 2))
        kinds = [step.kind for step in explanation.chain]
        assert kinds[0] == "input"
        assert "assign" in kinds
        # The slice keeps only the disallowed index's path: x2 seeds it,
        # x1 (allowed) does not appear as an input introduction.
        inputs = [step for step in explanation.chain
                  if step.kind == "input"]
        assert [step.target for step in inputs] == ["x2"]
        assert inputs[0].label == [2]
        # Every step after the introduction carries the offending index.
        for step in explanation.chain[1:]:
            assert 2 in step.label

    def test_accepted_point_explained(self):
        flowchart = library.mixer_program()
        explanation = obs.explain(flowchart, allow(1, 2, arity=2), (1, 2))
        assert explanation.verdict == "accepted"
        assert not explanation.violated
        assert explanation.disallowed == []
        assert explanation.chain  # full influence history, not empty

    def test_timed_variant_blames_the_guarded_test(self):
        flowchart = library.gcd_program()
        explanation = obs.explain(flowchart, allow(arity=2), (6, 4),
                                  timed=True)
        assert explanation.verdict == "violation"
        assert explanation.clause.startswith("timed guard")
        assert explanation.chain[-1].kind == "check"

    def test_fuel_exhaustion_verdict(self):
        flowchart = library.gcd_program()
        explanation = obs.explain(flowchart, allow(arity=2), (12, 18),
                                  fuel=2)
        assert explanation.verdict == "fuel_exhausted"
        assert explanation.fuel["exhausted"] is True
        assert explanation.fuel["budget"] == 2
        assert explanation.chain == []

    def test_replay_does_not_touch_metrics(self):
        flowchart = library.mixer_program()
        with obs.observed(reset=True):
            obs.explain(flowchart, allow(arity=2), (1, 2))
            counters = obs.snapshot()["counters"]
        assert "violations.raised" not in counters
        assert "surveillance.runs" not in counters


class TestStaticExplain:
    def test_static_violation_lists_carrying_sites(self):
        flowchart = library.mixer_program()
        explanation = obs.explain_static(flowchart, allow(1, arity=2))
        assert explanation.mode == "static"
        assert explanation.point is None
        assert explanation.verdict == "violation"
        assert explanation.disallowed == [2]
        kinds = {step.kind for step in explanation.chain}
        assert "input" in kinds and "assign" in kinds and "check" in kinds

    def test_static_accept_when_policy_covers_output(self):
        flowchart = library.mixer_program()
        explanation = obs.explain_static(flowchart, allow(1, 2, arity=2))
        assert explanation.verdict == "accepted"

    def test_static_reject_implies_chain_for_every_program(self):
        for flowchart in library.extended_suite():
            policy = allow(1, arity=flowchart.arity)
            explanation = obs.explain_static(flowchart, policy)
            if explanation.verdict == "violation":
                assert explanation.chain, flowchart.name

    def test_static_accept_agrees_with_dynamic(self):
        # Static certification is sound: wherever flowlint accepts,
        # every concrete replay must accept too.
        for flowchart in library.extended_suite():
            policy = allow(1, arity=flowchart.arity)
            if obs.explain_static(flowchart, policy).verdict != "accepted":
                continue
            grid = default_grid(flowchart.arity)
            for point in list(grid)[:6]:
                dynamic = obs.explain(flowchart, policy, point)
                assert dynamic.verdict == "accepted", (
                    flowchart.name, point)


class TestExplanationEvents:
    def test_event_round_trips_through_renderer(self):
        flowchart = library.mixer_program()
        explanation = obs.explain(flowchart, allow(1, arity=2), (1, 2))
        fields = explanation.event_fields()
        assert obs.render_explanation_event(fields) == explanation.render()

    def test_surveillance_mechanism_emits_explanations(self):
        from repro.surveillance.dynamic import surveillance_mechanism

        flowchart = library.mixer_program()
        policy = allow(1, arity=2)
        domain = default_grid(flowchart.arity)
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True, explain=True):
            mechanism = surveillance_mechanism(flowchart, policy, domain)
            for point in domain:
                mechanism(*point)
        violations = ring.events("violation")
        explanations = ring.events("explanation")
        assert violations and len(explanations) == len(violations)
        for event in explanations:
            assert event["program"] == flowchart.name
            assert event["chain"]

    def test_instrumented_mechanism_emits_equal_explanations(self):
        from repro.surveillance.instrument import instrumented_mechanism

        flowchart = library.mixer_program()
        policy = allow(1, arity=2)
        domain = default_grid(flowchart.arity)
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True, explain=True):
            mechanism = instrumented_mechanism(flowchart, policy, domain)
            for point in domain:
                mechanism(*point)
        explanations = ring.events("explanation")
        assert explanations
        direct = obs.explain(flowchart, policy,
                             explanations[0]["point"])
        assert explanations[0]["chain"] == [
            step.to_dict() for step in direct.chain]

    def test_lint_emits_static_explanation_on_flow001(self):
        from repro.analysis import PassManager

        manager = PassManager.with_default_passes()
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True, explain=True):
            manager.run(library.mixer_program(), allow(1, arity=2))
        explanations = ring.events("explanation")
        assert explanations and explanations[0]["mode"] == "static"
