"""Hierarchical spans: emission, nesting, and cross-process trees."""

import pytest

from repro import obs
from repro.flowchart import library
from repro.obs import runtime
from repro.verify import FACTORIES, parallel_soundness_sweep
from repro.verify.enumerate import soundness_sweep


@pytest.fixture(autouse=True)
def _clean_runtime():
    obs.disable()
    yield
    obs.disable()


def sweep_programs():
    return [library.forgetting_program(), library.parity_program()]


class TestSpanPrimitives:
    def test_span_begin_is_noop_without_tracing(self):
        assert runtime.span_begin("sweep") is None
        runtime.span_finish(None)  # must not raise

    def test_span_events_pair_up(self):
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            with obs.span("sweep", executor="serial"):
                pass
        starts = ring.events("span_start")
        ends = ring.events("span_end")
        assert len(starts) == len(ends) == 1
        assert starts[0]["span"] == ends[0]["span"]
        assert starts[0]["op"] == "sweep"
        assert ends[0]["elapsed_s"] >= 0

    def test_pushed_spans_nest(self):
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            with obs.span("sweep"):
                with obs.span("pair"):
                    pass
        starts = {event["op"]: event for event in ring.events("span_start")}
        assert starts["pair"]["parent"] == starts["sweep"]["span"]
        assert "parent" not in starts["sweep"]

    def test_leaf_events_are_attributed_to_current_span(self):
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            with obs.span("sweep") as handle:
                runtime.emit("sweep_end", pairs=0, elapsed_s=0.0)
        [event] = ring.events("sweep_end")
        assert event["span"] == handle.id

    def test_explicit_parent_overrides_stack(self):
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            with obs.span("sweep"):
                child = runtime.span_begin("chunk", parent="999-1")
                runtime.span_finish(child)
        starts = {event["op"]: event for event in ring.events("span_start")}
        assert starts["chunk"]["parent"] == "999-1"


class TestSweepSpanTrees:
    def assert_single_rooted(self, events, expect_points=True):
        forest = obs.build_span_tree(events)
        assert forest.problems == []
        assert forest.single_rooted
        root = forest.roots[0]
        assert root.op == "sweep"
        ops = {node.op for _, node in root.walk()}
        assert "pair" in ops
        if expect_points:
            assert "point" in ops
        for _, node in root.walk():
            assert node.closed

    def test_serial_enumerate_sweep(self):
        ring = obs.RingBufferSink(capacity=65536)
        with obs.observed(sinks=[ring], reset=True):
            soundness_sweep(sweep_programs(), FACTORIES["surveillance"])
        self.assert_single_rooted(ring.events(), expect_points=False)

    def test_parallel_serial_executor(self):
        ring = obs.RingBufferSink(capacity=65536)
        with obs.observed(sinks=[ring], reset=True):
            parallel_soundness_sweep(sweep_programs(), "surveillance",
                                     executor="serial")
        self.assert_single_rooted(ring.events())
        forest = obs.build_span_tree(ring.events())
        # Every point span hangs off a chunk span, never the sweep.
        for node in forest.spans.values():
            if node.op == "point":
                assert forest.spans[node.parent].op == "chunk"

    def test_parallel_thread_executor(self):
        ring = obs.RingBufferSink(capacity=65536)
        with obs.observed(sinks=[ring], reset=True):
            parallel_soundness_sweep(sweep_programs(), "surveillance",
                                     executor="thread", max_workers=2)
        self.assert_single_rooted(ring.events())

    def test_parallel_process_executor(self, tmp_path):
        # Worker events reach the parent's trace only on fork-start
        # platforms (the workers inherit the sink fd); elsewhere the
        # supervisor's own spans must still form a single rooted tree.
        path = tmp_path / "trace.jsonl"
        with obs.JsonlSink(str(path)) as sink:
            obs.enable(metrics=True, sinks=[sink], reset=True)
            try:
                parallel_soundness_sweep(sweep_programs(), "surveillance",
                                         executor="process", max_workers=2)
            finally:
                obs.disable()
        events = obs.load_trace(str(path))
        forest = obs.build_span_tree(events)
        assert forest.problems == []
        assert forest.single_rooted
        assert forest.roots[0].op == "sweep"


class TestForestProblems:
    def test_orphan_parent_promoted_to_root(self):
        events = [
            {"kind": "span_start", "seq": 0, "t": 0.0, "span": "1-1",
             "op": "chunk", "parent": "1-99"},
            {"kind": "span_end", "seq": 1, "t": 0.1, "span": "1-1",
             "op": "chunk", "elapsed_s": 0.1},
        ]
        forest = obs.build_span_tree(events)
        assert len(forest.roots) == 1
        assert any("unknown parent" in problem
                   for problem in forest.problems)

    def test_unclosed_span_reported(self):
        events = [{"kind": "span_start", "seq": 0, "t": 0.0,
                   "span": "1-1", "op": "sweep"}]
        forest = obs.build_span_tree(events)
        assert any("never closed" in problem
                   for problem in forest.problems)

    def test_duplicate_end_reported(self):
        events = [
            {"kind": "span_start", "seq": 0, "t": 0.0, "span": "1-1",
             "op": "sweep"},
            {"kind": "span_end", "seq": 1, "t": 0.1, "span": "1-1",
             "op": "sweep", "elapsed_s": 0.1},
            {"kind": "span_end", "seq": 2, "t": 0.2, "span": "1-1",
             "op": "sweep", "elapsed_s": 0.2},
        ]
        forest = obs.build_span_tree(events)
        assert any("duplicate span_end" in problem
                   for problem in forest.problems)

    def test_end_without_start_reported(self):
        events = [{"kind": "span_end", "seq": 0, "t": 0.1, "span": "1-7",
                   "op": "pair", "elapsed_s": 0.1}]
        forest = obs.build_span_tree(events)
        assert any("span_end without span_start" in problem
                   for problem in forest.problems)
