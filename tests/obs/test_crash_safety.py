"""JsonlSink crash-safety: a SIGKILLed sweep leaves a readable trace.

The sink flushes every event as it is written, so killing the writer
mid-sweep loses at most the final, partially-written line.  This test
actually kills a subprocess (SIGKILL — no atexit, no cleanup) and
checks the surviving trace validates line-for-line.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.obs import load_events
from repro.obs.events import validate_jsonl

WRITER = """
import sys
from repro import obs
from repro.flowchart import library
from repro.verify import FACTORIES
from repro.verify.enumerate import soundness_sweep

sink = obs.JsonlSink(sys.argv[1])
obs.enable(metrics=True, sinks=[sink], reset=True, explain=True)
programs = [library.forgetting_program(), library.gcd_program()]
while True:
    soundness_sweep(programs, FACTORIES["surveillance"])
"""


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"),
                    reason="SIGKILL not available on this platform")
def test_sigkill_mid_sweep_preserves_flushed_events(tmp_path):
    path = tmp_path / "trace.jsonl"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen([sys.executable, "-c", WRITER, str(path)],
                            env=env)
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if path.exists() and path.stat().st_size > 4096:
                break
            if proc.poll() is not None:
                pytest.fail(f"writer exited early: {proc.returncode}")
            time.sleep(0.02)
        else:
            pytest.fail("writer produced no trace output in time")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    lines = path.read_text(encoding="utf-8").splitlines()
    assert lines

    # Every line except possibly the last (the one the kill landed in)
    # must be a complete, schema-valid event.
    complete = lines[:-1]
    count, problems = validate_jsonl(complete)
    assert problems == []
    assert count == len(complete) >= 10

    # The tolerant reader recovers at least every complete event.
    events = load_events(lines)
    assert len(events) >= len(complete)
    kinds = {event["kind"] for event in events}
    assert "span_start" in kinds
    assert "violation" in kinds
