"""Unit tests for repro.minsky.fcompile — the Fenton compiler."""

import pytest

from repro.core import ProductDomain, allow, check_soundness
from repro.flowchart.interpreter import execute
from repro.flowchart.parser import parse_program
from repro.minsky.fcompile import (CompileError, Discipline, compilable,
                                   compile_to_fenton)
from repro.minsky.fenton import NULL, fenton_mechanism
from repro.surveillance import surveillance_mechanism

GRID = ProductDomain.integer_grid(0, 3, 2)


def run_machine(machine, registers_map, inputs):
    registers = [0] * len(registers_map)
    for position, name in enumerate(("x1", "x2"), 0):
        if name in registers_map:
            registers[registers_map[name]] = inputs[position]
    return machine.run(registers, [NULL] * len(registers_map),
                       fuel=200_000)


def assert_value_agreement(source, domain=GRID):
    program = parse_program(source)
    flowchart = program.compile()
    for discipline in Discipline:
        machine, registers_map = compile_to_fenton(program,
                                                   discipline=discipline)
        for point in domain:
            expected = execute(flowchart, point).value
            got = run_machine(machine, registers_map, point).outcome
            assert got == expected, (discipline, point, got, expected)


class TestValueCorrectness:
    def test_constants_and_copies(self):
        assert_value_agreement(
            "program p(x1, x2) { y := 3; r := x1; y := r }")

    def test_increment_decrement(self):
        assert_value_agreement(
            "program p(x1, x2) { y := x1; y := y + 2; y := y - 1 }")

    def test_saturating_subtraction(self):
        # On naturals, 0 - 1 = 0; the flowchart program is arranged to
        # stay non-negative so both models agree.
        program = parse_program("program p(x1, x2) { y := x1; y := y - 1 }")
        machine, registers_map = compile_to_fenton(program)
        assert run_machine(machine, registers_map, (0, 0)).outcome == 0
        assert run_machine(machine, registers_map, (3, 0)).outcome == 2

    def test_add_variable(self):
        assert_value_agreement(
            "program p(x1, x2) { y := x1; y := y + x2 }")

    def test_copy_preserves_source(self):
        program = parse_program(
            "program p(x1, x2) { r := x1; y := x1 }")
        machine, registers_map = compile_to_fenton(program)
        result = run_machine(machine, registers_map, (3, 0))
        assert result.outcome == 3
        assert result.registers[registers_map["x1"]] == 3  # preserved

    def test_if_else(self):
        assert_value_agreement(
            "program p(x1, x2) { if x2 == 0 { y := x1 } else { y := 0 } }")

    def test_if_nonzero_form(self):
        assert_value_agreement(
            "program p(x1, x2) { if x2 != 0 { y := 1 } else { y := 2 } }")

    def test_while_loop(self):
        assert_value_agreement("""
            program p(x1, x2) {
                r := x1;
                while r != 0 { y := y + 2; r := r - 1 }
            }
        """)

    def test_nested_control(self):
        assert_value_agreement("""
            program p(x1, x2) {
                r := x1;
                while r != 0 {
                    if x2 == 0 { y := y + 1 } else { y := y + 2 };
                    r := r - 1
                }
            }
        """)


class TestCompilableSubset:
    def test_compilable_predicate(self):
        good = parse_program("program p(x1) { y := x1; y := y + 1 }")
        assert compilable(good)
        bad = parse_program("program p(x1) { y := x1 * 2 }")
        assert not compilable(bad)

    @pytest.mark.parametrize("source", [
        "program p(x1) { y := x1 * 2 }",            # multiplication
        "program p(x1, x2) { y := x1 + x2 + 1 }",   # nested binop target
        "program p(x1) { if x1 == 1 { y := 1 } }",  # non-zero comparison
        "program p(x1) { while x1 == 0 { y := 1 } }",
    ])
    def test_rejected_constructs(self, source):
        with pytest.raises(CompileError):
            compile_to_fenton(parse_program(source))


class TestDisciplines:
    SOURCE = ("program demo(x1, x2) "
              "{ if x2 == 0 { y := x1 } else { y := 0 } }")

    def _mechanism(self, discipline):
        program = parse_program(self.SOURCE)
        machine, registers_map = compile_to_fenton(program,
                                                   discipline=discipline)
        return fenton_mechanism(machine, GRID,
                                priv_registers=[registers_map["x1"]],
                                check_output_mark=True)

    def test_taint_sound(self):
        mechanism = self._mechanism(Discipline.TAINT)
        assert check_soundness(mechanism, allow(2, arity=2)).sound

    def test_join_unsound_via_zero_trip_leak(self):
        """The compiled-code twin of Example 1's critique: restoring P
        at joins without pre-marking leaks through zero-trip loops."""
        mechanism = self._mechanism(Discipline.JOIN)
        report = check_soundness(mechanism, allow(2, arity=2))
        assert not report.sound
        # The witness pair differs only in the denied x1, and the
        # zero-trip case (x1 = 0) is the accepted one.
        witness = report.witness
        assert witness.first[1] == witness.second[1]

    def test_premark_sound(self):
        mechanism = self._mechanism(Discipline.PREMARK)
        assert check_soundness(mechanism, allow(2, arity=2)).sound

    def test_premark_matches_surveillance_here(self):
        program = parse_program(self.SOURCE)
        fenton = self._mechanism(Discipline.PREMARK)
        surveillance = surveillance_mechanism(program.compile(),
                                              allow(2, arity=2), GRID)
        assert (fenton.acceptance_set()
                == surveillance.acceptance_set())


class TestPremarkBeatsSurveillanceOnReconvergence:
    SOURCE = ("program d2(x1, x2) "
              "{ if x1 == 0 { r := 1 } else { r := 2 }; y := x2 }")

    def test_completeness_gap(self):
        """Fenton's restoration behaves like the structured certifier's
        PC-label restoration: the reconvergent branch on denied x1 is
        forgotten at the join, so every run is accepted — while
        flowchart surveillance (monotone C̄) rejects them all."""
        program = parse_program(self.SOURCE)
        policy = allow(2, arity=2)
        machine, registers_map = compile_to_fenton(
            program, discipline=Discipline.PREMARK)
        fenton = fenton_mechanism(machine, GRID,
                                  priv_registers=[registers_map["x1"]],
                                  check_output_mark=True)
        assert check_soundness(fenton, policy).sound
        assert fenton.acceptance_set() == frozenset(GRID)
        surveillance = surveillance_mechanism(program.compile(), policy,
                                              GRID)
        assert surveillance.acceptance_set() == frozenset()
