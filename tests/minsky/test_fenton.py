"""Unit tests for repro.minsky.fenton — Example 1's data-mark machine."""

import pytest

from repro.core import ProductDomain, allow, allow_none, check_soundness
from repro.core.errors import ExecutionError, UndefinedSemanticsError
from repro.minsky.fenton import (NULL, PRIV, DataMarkMachine, FDecJz, FHalt,
                                 FInc, HaltMode,
                                 balanced_negative_inference_program,
                                 fenton_mechanism,
                                 negative_inference_program,
                                 undefined_trailing_halt_program)

GRID1 = ProductDomain.integer_grid(0, 4, 1)


class TestDataMarkRules:
    def test_branch_on_priv_marks_pc(self):
        # One branch on a priv register, then halt: P is priv at halt.
        machine = DataMarkMachine([FDecJz(1, 1, 1), FHalt()],
                                  register_count=2,
                                  halt_mode=HaltMode.NOTICE)
        result = machine.run([0, 1], [NULL, PRIV])
        assert result.violated

    def test_branch_on_null_keeps_pc_null(self):
        machine = DataMarkMachine([FDecJz(1, 1, 1), FHalt()],
                                  register_count=2,
                                  halt_mode=HaltMode.NOTICE)
        result = machine.run([0, 1], [NULL, NULL])
        assert not result.violated

    def test_inc_under_priv_control_marks_register(self):
        machine = DataMarkMachine(
            [FDecJz(1, 1, 2), FInc(0, 2), FHalt()],
            register_count=2, halt_mode=HaltMode.NOTICE)
        result = machine.run([0, 1], [NULL, PRIV])
        # r0 was incremented while P was priv.
        assert result.marks[0] == PRIV

    def test_mark_restoration_at_join(self):
        """Fenton's discipline: P's mark pops back at the join point."""
        machine = DataMarkMachine(
            [FDecJz(1, 1, 1, join=1), FHalt()],
            register_count=2, halt_mode=HaltMode.NOTICE)
        result = machine.run([0, 1], [NULL, PRIV])
        # The halt at the join sees a restored null P: normal halt.
        assert not result.violated

    def test_halt_mode_noop_falls_through(self):
        machine = DataMarkMachine(
            [FDecJz(1, 1, 1), FHalt(), FHalt()],
            register_count=2, halt_mode=HaltMode.NOOP)
        # First halt skipped (P priv); second halt... also priv, so
        # undefined (it is the last statement).
        with pytest.raises(UndefinedSemanticsError):
            machine.run([0, 1], [NULL, PRIV])

    def test_validation(self):
        with pytest.raises(ExecutionError):
            DataMarkMachine([], register_count=1)
        with pytest.raises(ExecutionError, match="bad address"):
            DataMarkMachine([FInc(0, 9)], register_count=1)
        with pytest.raises(ExecutionError, match="bad join"):
            DataMarkMachine([FDecJz(0, 0, 0, join=9)], register_count=1)

    def test_bad_marks_rejected(self):
        machine = DataMarkMachine([FHalt()], register_count=1)
        with pytest.raises(ExecutionError, match="bad mark"):
            machine.run([0], ["secret"])


class TestNegativeInference:
    """The paper's Example 1 critique, end to end."""

    def test_notice_mode_unsound(self):
        """Interpretation (b): an error message iff x = 0 — unsound for
        allow() because the message's presence reveals x."""
        machine = negative_inference_program(HaltMode.NOTICE)
        mechanism = fenton_mechanism(machine, GRID1, priv_registers=[1])
        report = check_soundness(mechanism, allow_none(1))
        assert not report.sound

    def test_notice_appears_exactly_at_zero(self):
        machine = negative_inference_program(HaltMode.NOTICE)
        mechanism = fenton_mechanism(machine, GRID1, priv_registers=[1])
        from repro.core import is_violation

        for x, in GRID1:
            assert is_violation(mechanism(x)) == (x == 0)

    def test_balanced_noop_is_sound(self):
        """Interpretation (a) on the balanced program: constant 0."""
        machine = balanced_negative_inference_program(HaltMode.NOOP)
        mechanism = fenton_mechanism(machine, GRID1, priv_registers=[1])
        assert check_soundness(mechanism, allow_none(1)).sound
        assert all(mechanism(x) == 0 for x, in GRID1)

    def test_balanced_notice_is_unsound(self):
        """Same program, halt-as-notice: the only change is the halt
        interpretation, and soundness flips."""
        machine = balanced_negative_inference_program(HaltMode.NOTICE)
        mechanism = fenton_mechanism(machine, GRID1, priv_registers=[1])
        assert not check_soundness(mechanism, allow_none(1)).sound

    def test_undefined_trailing_halt(self):
        """The halt-as-noop semantics is undefined when the halt is the
        last statement — surfaced as an explicit error."""
        machine = undefined_trailing_halt_program()
        mechanism = fenton_mechanism(machine, GRID1, priv_registers=[1])
        with pytest.raises(UndefinedSemanticsError):
            mechanism(1)

    def test_output_mark_check_catches_priv_output(self):
        """Fenton's output rule: priv output registers are suppressed —
        but with a *different* notice, itself distinguishable."""
        machine = negative_inference_program(HaltMode.NOTICE)
        mechanism = fenton_mechanism(machine, GRID1, priv_registers=[1],
                                     check_output_mark=True)
        from repro.core import is_violation

        # x != 0 runs now also violate (r0 incremented under priv P).
        assert all(is_violation(mechanism(x)) for x, in GRID1)
        # ...and the two notices differ, so the mechanism is *still*
        # unsound: Example 4's notice-channel, in Fenton's own machine.
        assert not check_soundness(mechanism, allow_none(1)).sound

    def test_unmarked_semantics_is_the_protected_program(self):
        machine = negative_inference_program(HaltMode.NOTICE)
        mechanism = fenton_mechanism(machine, GRID1, priv_registers=[1])
        assert mechanism.program(0) == 0
        assert all(mechanism.program(x) == 1 for x, in GRID1 if x > 0)
