"""Unit tests for repro.minsky.machine and .compile."""

import pytest

from repro.core import ProductDomain, VALUE_AND_TIME
from repro.core.errors import ExecutionError, FuelExhaustedError
from repro.minsky.compile import MacroAssembler, adder_machine, doubler_machine
from repro.minsky.machine import (DecJz, Halt, Inc, MinskyMachine,
                                  as_program)


class TestInterpreter:
    def test_inc_and_halt(self):
        machine = MinskyMachine([Inc(0, 1), Inc(0, 2), Halt()],
                                register_count=1)
        result = machine.run([0])
        assert result.value == 2
        assert result.steps == 3

    def test_decjz_zero_branch(self):
        machine = MinskyMachine(
            [DecJz(0, 1, 2), Inc(1, 0), Halt()], register_count=2,
            output_register=1)
        # Moves r0 into r1.
        assert machine.run([3, 0]).value == 3
        assert machine.run([0, 0]).value == 0

    def test_negative_initial_values_clamped(self):
        machine = MinskyMachine([Halt()], register_count=1)
        assert machine.run([-5]).registers == (0,)

    def test_fuel(self):
        # Tight infinite loop: Inc then jump back.
        machine = MinskyMachine([Inc(0, 0)], register_count=1)
        with pytest.raises(FuelExhaustedError):
            machine.run([0], fuel=25)

    def test_step_counts_deterministic(self):
        machine = adder_machine()
        assert (machine.run([0, 2, 3, 0]).steps
                == machine.run([0, 2, 3, 0]).steps)


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(ExecutionError):
            MinskyMachine([], register_count=1)

    def test_bad_jump_target_rejected(self):
        with pytest.raises(ExecutionError, match="bad address"):
            MinskyMachine([Inc(0, 5)], register_count=1)

    def test_bad_register_rejected(self):
        with pytest.raises(ExecutionError, match="bad register"):
            MinskyMachine([Inc(3, 0), Halt()], register_count=2)

    def test_bad_output_register_rejected(self):
        with pytest.raises(ExecutionError, match="output register"):
            MinskyMachine([Halt()], register_count=1, output_register=2)

    def test_wrong_register_count_on_run(self):
        machine = MinskyMachine([Halt()], register_count=2)
        with pytest.raises(ExecutionError):
            machine.run([0])


class TestMacros:
    def test_adder(self):
        machine = adder_machine()
        for a in range(4):
            for b in range(4):
                assert machine.run([0, a, b, 0]).value == a + b

    def test_doubler(self):
        machine = doubler_machine()
        for n in range(6):
            assert machine.run([0, n, 0]).value == 2 * n

    def test_assembler_label_errors(self):
        assembler = MacroAssembler(register_count=2)
        assembler.dec_jz(0, "missing")
        assembler.halt()
        with pytest.raises(ExecutionError, match="undefined label"):
            assembler.assemble()

    def test_duplicate_label_rejected(self):
        assembler = MacroAssembler(register_count=1)
        assembler.label("a")
        with pytest.raises(ExecutionError, match="duplicate"):
            assembler.label("a")

    def test_clear_loop(self):
        assembler = MacroAssembler(register_count=2, name="clearer")
        assembler.clear_loop(0)
        assembler.halt()
        machine = assembler.assemble()
        assert machine.run([7, 0]).value == 0

    def test_constant(self):
        assembler = MacroAssembler(register_count=2, name="const")
        assembler.constant(0, 5)
        assembler.halt()
        assert assembler.assemble().run([0, 0]).value == 5

    def test_copy_preserves_source(self):
        assembler = MacroAssembler(register_count=4, name="copier")
        assembler.copy(1, 0, scratch=2)
        assembler.halt()
        machine = assembler.assemble()
        result = machine.run([0, 3, 0, 0])
        assert result.value == 3        # target got the copy
        assert result.registers[1] == 3  # source preserved


class TestAsProgram:
    def test_example1_shape(self):
        """Example 1: Q(d1, ..., dk) computed by a Minsky machine started
        with its i-th register containing d_i."""
        domain = ProductDomain.integer_grid(0, 3, 2)
        q = as_program(adder_machine(), domain, input_registers=[1, 2])
        assert q(2, 3) == 5

    def test_time_observable_output(self):
        domain = ProductDomain.integer_grid(0, 3, 1)
        q = as_program(doubler_machine(), domain, input_registers=[1],
                       output_model=VALUE_AND_TIME)
        value, steps = q(3)
        assert value == 6
        assert steps > 0

    def test_register_count_mismatch(self):
        domain = ProductDomain.integer_grid(0, 3, 2)
        with pytest.raises(ExecutionError):
            as_program(adder_machine(), domain, input_registers=[1])
