"""Unit tests for repro.channels.inference (negative inference)."""

from repro.core import (ProductDomain, Program, allow, allow_none,
                        check_soundness)
from repro.channels.inference import (HOLMES_QUOTE, analyse_notice_channel,
                                      conditional_notice_mechanism,
                                      fenton_halt_mechanism)

GRID1 = ProductDomain.integer_grid(0, 4, 1)
GRID2 = ProductDomain.integer_grid(0, 2, 2)


class TestConditionalNotice:
    def test_warn_on_denied_predicate_is_unsound(self):
        q = Program(lambda a, b: 1, GRID2, name="const")
        mechanism = conditional_notice_mechanism(
            q, warn_when=lambda a, b: b == 0)
        assert not check_soundness(mechanism, allow(1, arity=2)).sound

    def test_warn_on_allowed_predicate_is_sound(self):
        q = Program(lambda a, b: a, GRID2, name="copy1")
        mechanism = conditional_notice_mechanism(
            q, warn_when=lambda a, b: a == 0)
        assert check_soundness(mechanism, allow(1, arity=2)).sound

    def test_contract_always_holds(self):
        q = Program(lambda a, b: a + b, GRID2)
        mechanism = conditional_notice_mechanism(
            q, warn_when=lambda a, b: (a + b) % 2 == 0)
        mechanism.check_contract()


class TestFentonHaltMechanism:
    def test_error_iff_secret_zero(self):
        from repro.core import is_violation

        q = Program(lambda x: 1, GRID1, name="const1")
        mechanism = fenton_halt_mechanism(q)
        for x, in GRID1:
            assert is_violation(mechanism(x)) == (x == 0)

    def test_unsound_for_allow_none(self):
        q = Program(lambda x: 1, GRID1, name="const1")
        assert not check_soundness(fenton_halt_mechanism(q),
                                   allow_none(1)).sound


class TestAnalysis:
    def test_unsound_channel_quantified(self):
        q = Program(lambda x: 1, GRID1)
        analysis = analyse_notice_channel(fenton_halt_mechanism(q),
                                          allow_none(1))
        assert not analysis.sound
        assert analysis.notice_inputs == 1   # only x = 0 warns
        assert analysis.quiet_inputs == len(GRID1) - 1
        assert analysis.revealed_predicate is not None

    def test_sound_channel_reports_clean(self):
        from repro.core import null_mechanism

        q = Program(lambda x: 1, GRID1)
        analysis = analyse_notice_channel(null_mechanism(q), allow_none(1))
        assert analysis.sound
        assert analysis.notice_inputs == len(GRID1)
        assert analysis.revealed_predicate is None

    def test_holmes_quote_present(self):
        assert "curious incident" in HOLMES_QUOTE
