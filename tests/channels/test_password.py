"""Unit tests for repro.channels.password (Example 5 + the work factor)."""

import pytest

from repro.core import check_soundness, program_as_mechanism
from repro.core.errors import DomainError
from repro.channels.password import (PagedComparator, brute_force_attack,
                                     logon_leak_bits, logon_policy,
                                     logon_program, page_boundary_attack,
                                     table_domain, work_factor_row)

USERIDS = ["alice", "bob"]
PASSWORDS = ["pw1", "pw2"]


class TestLogonProgram:
    def test_accepts_correct_pair(self):
        q = logon_program(USERIDS, PASSWORDS)
        table = frozenset([("alice", "pw1"), ("bob", "pw2")])
        assert q("alice", table, "pw1") is True
        assert q("alice", table, "pw2") is False

    def test_table_domain_size(self):
        # Each userid independently assigned one of 2 passwords.
        assert len(table_domain(USERIDS, PASSWORDS)) == 4

    def test_unsound_for_allow_1_3(self):
        """Example 5: Q as its own mechanism leaks table information."""
        q = logon_program(USERIDS, PASSWORDS)
        assert not check_soundness(program_as_mechanism(q),
                                   logon_policy()).sound

    def test_leak_is_exactly_one_bit(self):
        """'The amount of information obtained by the user is small.'"""
        assert logon_leak_bits(USERIDS, PASSWORDS) == 1.0


class TestPagedComparator:
    def test_accepts_exact_match(self):
        comparator = PagedComparator("abc")
        accepted, _ = comparator.attempt("abc", boundary_after=3)
        assert accepted

    def test_rejects_mismatch(self):
        comparator = PagedComparator("abc")
        accepted, _ = comparator.attempt("abd", boundary_after=3)
        assert not accepted

    def test_fault_reveals_prefix_progress(self):
        comparator = PagedComparator("abc")
        # Boundary after 1 char: a fault occurs iff the first char matched.
        _, faults_hit = comparator.attempt("axx", boundary_after=1)
        _, faults_miss = comparator.attempt("xxx", boundary_after=1)
        assert faults_hit > 0
        assert faults_miss == 0

    def test_counts_attempts(self):
        comparator = PagedComparator("ab")
        comparator.attempt("aa", 1)
        comparator.attempt("ab", 1)
        assert comparator.comparisons == 2

    def test_validation(self):
        with pytest.raises(DomainError):
            PagedComparator("")
        with pytest.raises(DomainError):
            PagedComparator("abc", page_size=0)


class TestAttacks:
    ALPHABET = ["a", "b", "c"]

    def test_brute_force_succeeds(self):
        result = brute_force_attack("cb", self.ALPHABET)
        assert result.recovered == "cb"

    def test_brute_force_worst_case_is_n_to_k(self):
        result = brute_force_attack("ccc", self.ALPHABET)
        assert result.guesses == 3 ** 3

    def test_page_attack_succeeds(self):
        result = page_boundary_attack("cab", self.ALPHABET)
        assert result.recovered == "cab"

    def test_page_attack_within_nk_bound(self):
        for secret in ("aaa", "ccc", "bac", "cba"):
            result = page_boundary_attack(secret, self.ALPHABET)
            assert result.succeeded
            assert result.guesses <= 3 * 3 + 1

    def test_page_attack_beats_brute_force(self):
        secret = "cc"
        brute = brute_force_attack(secret, self.ALPHABET)
        paged = page_boundary_attack(secret, self.ALPHABET)
        assert paged.guesses < brute.guesses


class TestWorkFactorRow:
    def test_row_matches_paper_bounds(self):
        row = work_factor_row(3, 3)
        assert row["brute_guesses"] == row["brute_bound"] == 27
        assert row["paged_guesses"] <= row["paged_bound"] == 10
        assert row["brute_ok"] and row["paged_ok"]

    def test_gap_grows_with_k(self):
        small = work_factor_row(4, 2)
        large = work_factor_row(4, 4)
        small_ratio = small["brute_guesses"] / small["paged_guesses"]
        large_ratio = large["brute_guesses"] / large["paged_guesses"]
        assert large_ratio > small_ratio

    def test_secret_validation(self):
        with pytest.raises(DomainError):
            work_factor_row(2, 3, secret="zzzz")


class TestFormalPagedLogon:
    """The paged comparator inside the Section 2 framework."""

    def test_paged_program_output_shape(self):
        from repro.channels.password import paged_logon_program

        q = paged_logon_program(["a", "b"], 2)
        accepted, faults = q("ab", "ab")
        assert accepted is True and faults >= 1
        accepted, faults = q("ab", "bb")
        assert accepted is False and faults == 0

    def test_paged_leaks_more_than_constant_time(self):
        from repro.channels.password import per_query_leak_comparison

        comparison = per_query_leak_comparison(["a", "b"], 2)
        assert comparison["constant_time_bits"] == 1.0
        assert comparison["paged_bits"] > comparison["constant_time_bits"]

    def test_both_unsound_but_differently(self):
        from repro.channels.password import (constant_time_logon_program,
                                             paged_logon_program)
        from repro.core import (allow, check_soundness,
                                program_as_mechanism)

        policy = allow(2, arity=2)
        constant = constant_time_logon_program(["a", "b"], 2)
        paged = paged_logon_program(["a", "b"], 2)
        assert not check_soundness(program_as_mechanism(constant),
                                   policy).sound
        assert not check_soundness(program_as_mechanism(paged),
                                   policy).sound
