"""Unit tests for repro.channels.tape (the one-way tape and tab(i))."""

import pytest

from repro.core import allow, check_soundness, program_as_mechanism
from repro.core.errors import DomainError
from repro.channels.tape import (block_domain, per_cell_tab_reader,
                                 sequential_reader, tab_reader, tape_domain)


class TestBlockDomain:
    def test_all_lengths_up_to_max(self):
        domain = block_domain(2)
        assert set(domain) == {(0,), (1,), (0, 0), (0, 1), (1, 0), (1, 1)}

    def test_bad_length(self):
        with pytest.raises(DomainError):
            block_domain(0)

    def test_tape_domain_arity(self):
        assert tape_domain(3, 2).arity == 3


class TestSequentialReader:
    def test_value_is_target_block(self):
        q = sequential_reader(2, 2)
        value, _ = q((1,), (1, 0))
        assert value == 0b10

    def test_time_includes_crossed_blocks(self):
        q = sequential_reader(2, 2)
        _, short = q((1,), (1,))
        _, long = q((1, 1), (1,))
        assert long == short + 1  # one extra cell of z1 crossed

    def test_unsound_for_allow_target(self):
        """The paper's claim: no sequential reader of z2 is sound when
        time is observable — it encodes len(z1)."""
        q = sequential_reader(2, 2)
        assert not check_soundness(program_as_mechanism(q),
                                   allow(2, arity=2)).sound


class TestTabReader:
    def test_constant_time_tab_is_sound(self):
        q = tab_reader(2, 2, constant_time=True)
        assert check_soundness(program_as_mechanism(q),
                               allow(2, arity=2)).sound

    def test_block_counting_tab_is_sound(self):
        """Cost per skipped *block* is public structure, not data."""
        q = tab_reader(2, 2, constant_time=False)
        assert check_soundness(program_as_mechanism(q),
                               allow(2, arity=2)).sound

    def test_tab_time_independent_of_z1(self):
        q = tab_reader(2, 2)
        times = {q(z1, (1,))[1] for z1 in block_domain(2)}
        assert len(times) == 1

    def test_value_matches_sequential(self):
        tab = tab_reader(2, 2)
        seq = sequential_reader(2, 2)
        for point in tape_domain(2, 2):
            assert tab(*point)[0] == seq(*point)[0]


class TestBrokenTab:
    def test_per_cell_tab_reopens_the_leak(self):
        """'Perhaps tab(i) takes time dependent on the length of z1...'"""
        q = per_cell_tab_reader(2, 2)
        assert not check_soundness(program_as_mechanism(q),
                                   allow(2, arity=2)).sound

    def test_leak_is_exactly_length_of_z1(self):
        q = per_cell_tab_reader(2, 2)
        _, time_short = q((1,), (0,))
        _, time_long = q((1, 1), (0,))
        assert time_long - time_short == 1


class TestThirdBlock:
    def test_generalises_to_later_blocks(self):
        sequential = sequential_reader(3, 3, max_length=2)
        assert not check_soundness(program_as_mechanism(sequential),
                                   allow(3, arity=3)).sound
        tab = tab_reader(3, 3, max_length=2)
        assert check_soundness(program_as_mechanism(tab),
                               allow(3, arity=3)).sound
