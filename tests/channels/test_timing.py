"""Unit tests for repro.channels.timing (the Section 2 timing channel)."""

import math

import pytest

from repro.core import ProductDomain
from repro.channels.timing import (leak_bits, step_count_table,
                                   timing_attack, timing_report)
from repro.flowchart.library import timing_loop

GRID = ProductDomain.integer_grid(0, 9, 1)


class TestCodebook:
    def test_step_counts_injective_on_interval(self):
        table = step_count_table(timing_loop(), GRID)
        assert len(set(table.values())) == len(table)

    def test_attack_recovers_input_exactly(self):
        flowchart = timing_loop()
        table = step_count_table(flowchart, GRID)
        for point, steps in table.items():
            assert timing_attack(flowchart, GRID, steps) == [point]

    def test_attack_on_unseen_time_returns_nothing(self):
        assert timing_attack(timing_loop(), GRID, observed_steps=1) == []


class TestLeakQuantification:
    def test_full_channel_capacity(self):
        bits = leak_bits(timing_loop(), GRID)
        assert bits == math.log2(len(GRID))

    def test_constant_time_program_leaks_nothing(self):
        from repro.flowchart.library import mixer_program

        domain = ProductDomain.integer_grid(0, 3, 2)
        assert leak_bits(mixer_program(), domain) == 0.0


class TestReportRow:
    def test_reproduces_paper_claims(self):
        row = timing_report(domain_high=12)
        # Q constant: sound as its own mechanism when time is hidden...
        assert row["sound_value_only"] is True
        # ...unsound the moment (value, steps) is the output.
        assert row["sound_with_time"] is False
        # The channel identifies the input exactly.
        assert row["exact_recovery"] is True
        assert row["leak_bits"] == row["domain_bits"]


class TestQuantizedClock:
    def test_quantum_one_is_full_capacity(self):
        from repro.channels.timing import quantized_leak_bits

        assert (quantized_leak_bits(timing_loop(), GRID, 1)
                == leak_bits(timing_loop(), GRID))

    def test_capacity_monotone_in_quantum(self):
        from repro.channels.timing import quantized_leak_bits

        capacities = [quantized_leak_bits(timing_loop(), GRID, quantum)
                      for quantum in (1, 2, 4, 8, 64)]
        assert capacities == sorted(capacities, reverse=True)

    def test_huge_quantum_closes_the_channel(self):
        from repro.channels.timing import quantized_leak_bits

        assert quantized_leak_bits(timing_loop(), GRID, 10_000) == 0.0

    def test_bad_quantum(self):
        from repro.channels.timing import quantized_leak_bits

        with pytest.raises(ValueError):
            quantized_leak_bits(timing_loop(), GRID, 0)
