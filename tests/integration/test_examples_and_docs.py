"""Keep the examples and documentation executable.

Every script in examples/ must run to completion, and every ```python
block in docs/TUTORIAL.md must execute (in order, sharing a namespace)
— so the shipped walkthroughs can never silently rot.
"""

import pathlib
import re
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))
TUTORIAL = REPO_ROOT / "docs" / "TUTORIAL.md"


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[script.stem for script in EXAMPLES])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=120, cwd=REPO_ROOT)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example narrates something


def test_expected_example_count():
    assert len(EXAMPLES) >= 8


def test_tutorial_blocks_execute_in_order():
    text = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 6
    namespace = {}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"tutorial-block-{index}", "exec"),
                 namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial block {index} failed: {error!r}\n"
                        f"{block}")


def test_readme_quickstart_runs():
    text = (REPO_ROOT / "README.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert blocks, "README must contain a runnable quickstart"
    namespace = {}
    for block in blocks:
        exec(compile(block, "readme-block", "exec"), namespace)
