"""Property-based tests over machine-generated programs: transforms,
instrumentation, certification, and the parser round trip.

These push the paper's constructions beyond the hand-picked figures:
hypothesis builds random structured programs and checks, for each, the
invariants the theory promises.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import ProductDomain, allow, check_soundness, is_violation
from repro.core import program_as_mechanism
from repro.flowchart.expr import BinOp, Compare, Const, Var, var
from repro.flowchart.interpreter import as_program, execute
from repro.flowchart.parser import parse_program, unparse_program
from repro.flowchart.structured import (Assign, If, Skip, StructuredProgram,
                                        While)
from repro.flowchart.transforms import (functionally_equivalent,
                                        ite_transform_all,
                                        while_transform_all)
from repro.staticflow import certify, eliminate_dead_surveillance
from repro.surveillance.dynamic import surveillance_mechanism
from repro.surveillance.instrument import (VIOLATION_FLAG,
                                           instrumented_mechanism)

GRID2 = ProductDomain.integer_grid(0, 2, 2)

VARIABLES = ("x1", "x2", "r", "s", "y")
WRITABLE = ("r", "s", "y")


def expressions():
    atoms = st.one_of(
        st.sampled_from(VARIABLES).map(Var),
        st.integers(min_value=0, max_value=3).map(Const),
    )
    return st.recursive(
        atoms,
        lambda children: st.tuples(
            st.sampled_from(["+", "-", "*"]), children, children
        ).map(lambda t: BinOp(*t)),
        max_leaves=4,
    )


def predicates():
    return st.tuples(
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        expressions(), expressions(),
    ).map(lambda t: Compare(*t))


def branch_statements(depth):
    """If/assign statements only — fodder for the ite transform."""
    assign = st.tuples(st.sampled_from(WRITABLE), expressions()).map(
        lambda t: Assign(*t))
    if depth == 0:
        return assign
    inner = st.lists(branch_statements(depth - 1), min_size=1, max_size=2)
    branch = st.tuples(predicates(), inner, inner).map(
        lambda t: If(t[0], t[1], t[2]))
    return st.one_of(assign, branch)


def branchy_programs():
    return st.lists(branch_statements(2), min_size=1, max_size=4).map(
        lambda body: StructuredProgram(["x1", "x2"], body, name="random"))


def loopy_programs():
    """Programs whose loops are bounded countdowns (guaranteed total)."""
    assign = st.tuples(st.sampled_from(WRITABLE), expressions()).map(
        lambda t: Assign(*t))
    body = st.lists(assign, min_size=1, max_size=2)
    loop = st.tuples(st.integers(min_value=0, max_value=3), body).map(
        lambda t: [Assign("c", Const(t[0])),
                   While(var("c").ne(0),
                         list(t[1]) + [Assign("c", var("c") - 1)])])
    segment = st.one_of(assign.map(lambda a: [a]), loop)
    return st.lists(segment, min_size=1, max_size=3).map(
        lambda segments: StructuredProgram(
            ["x1", "x2"], [s for seg in segments for s in seg],
            name="random-loops"))


@settings(max_examples=50, deadline=None)
@given(branchy_programs())
def test_ite_transform_all_preserves_semantics(program):
    flowchart = program.compile()
    transformed = ite_transform_all(flowchart)
    assert functionally_equivalent(flowchart, transformed, GRID2,
                                   fuel=20_000)


@settings(max_examples=50, deadline=None)
@given(branchy_programs())
def test_smart_ite_transform_preserves_semantics(program):
    flowchart = program.compile()
    transformed = ite_transform_all(flowchart, detect_identical_arms=True)
    assert functionally_equivalent(flowchart, transformed, GRID2,
                                   fuel=20_000)


@settings(max_examples=40, deadline=None)
@given(loopy_programs())
def test_while_transform_all_preserves_semantics(program):
    flowchart = program.compile()
    transformed = while_transform_all(flowchart)
    assert functionally_equivalent(flowchart, transformed, GRID2,
                                   fuel=20_000)


@settings(max_examples=30, deadline=None)
@given(branchy_programs(),
       st.sampled_from([(), (1,), (2,), (1, 2)]))
def test_instrumented_agrees_with_dynamic_on_random_programs(program,
                                                             indices):
    flowchart = program.compile()
    policy = allow(*indices, arity=2)
    q = as_program(flowchart, GRID2, fuel=20_000)
    dynamic = surveillance_mechanism(flowchart, policy, GRID2, program=q,
                                     fuel=20_000)
    literal = instrumented_mechanism(flowchart, policy, GRID2, program=q,
                                     fuel=20_000)
    for point in GRID2:
        left, right = dynamic(*point), literal(*point)
        assert is_violation(left) == is_violation(right)
        if not is_violation(left):
            assert left == right


@settings(max_examples=30, deadline=None)
@given(branchy_programs(), st.sampled_from([(), (1,), (2,), (1, 2)]))
def test_dead_surveillance_elimination_is_output_preserving(program,
                                                            indices):
    from repro.surveillance.instrument import instrument

    flowchart = program.compile()
    policy = allow(*indices, arity=2)
    full = instrument(flowchart, policy)
    optimised = eliminate_dead_surveillance(flowchart, policy)
    for point in GRID2:
        full_run = execute(full, point, fuel=40_000, capture_env=True)
        optimised_run = execute(optimised, point, fuel=40_000,
                                capture_env=True)
        assert full_run.value == optimised_run.value
        assert (full_run.env[VIOLATION_FLAG]
                == optimised_run.env[VIOLATION_FLAG])


@settings(max_examples=40, deadline=None)
@given(branchy_programs(), st.sampled_from([(), (1,), (2,), (1, 2)]))
def test_certified_implies_q_sound_on_random_programs(program, indices):
    """The certifier's guarantee, checked against ground truth."""
    policy = allow(*indices, arity=2)
    if certify(program, policy).certified:
        q = as_program(program.compile(), GRID2, fuel=20_000)
        assert check_soundness(program_as_mechanism(q), policy,
                               GRID2).sound


@settings(max_examples=50, deadline=None)
@given(loopy_programs())
def test_parser_round_trip(program):
    """parse(unparse(p)) is functionally equivalent to p."""
    text = unparse_program(program)
    reparsed = parse_program(text)
    assert functionally_equivalent(program.compile(), reparsed.compile(),
                                   GRID2, fuel=20_000)


@settings(max_examples=50, deadline=None)
@given(branchy_programs(), st.sampled_from([(), (1,), (2,), (1, 2)]))
def test_cfg_certifier_agrees_with_structured_on_random_programs(program,
                                                                 indices):
    """Differential: the FOW/CFG certifier and the structured certifier
    give the same verdict on every compiled structured program."""
    from repro.staticflow import certify, certify_flowchart

    policy = allow(*indices, arity=2)
    structured = certify(program, policy).certified
    cfg = certify_flowchart(program.compile(), policy).certified
    assert structured == cfg


@settings(max_examples=40, deadline=None)
@given(loopy_programs(), st.sampled_from([(), (1,), (2,), (1, 2)]))
def test_cfg_certifier_agrees_on_loopy_programs(program, indices):
    from repro.staticflow import certify, certify_flowchart

    policy = allow(*indices, arity=2)
    structured = certify(program, policy).certified
    cfg = certify_flowchart(program.compile(), policy).certified
    assert structured == cfg


@settings(max_examples=40, deadline=None)
@given(branchy_programs(), st.sampled_from([(), (1,), (2,), (1, 2)]))
def test_cfg_certified_implies_sound_on_random_programs(program, indices):
    from repro.staticflow import certify_flowchart

    policy = allow(*indices, arity=2)
    flowchart = program.compile()
    if certify_flowchart(flowchart, policy).certified:
        q = as_program(flowchart, GRID2, fuel=20_000)
        assert check_soundness(program_as_mechanism(q), policy,
                               GRID2).sound
