"""Property-based tests (hypothesis) for the core invariants.

The deep ones:

- *Noninterference of surveillance* — over random structured programs:
  if the surveillance mechanism passes two inputs that agree on the
  allowed positions, the passed values agree (a consequence of
  Theorem 3 checked on machine-generated programs, not just the paper's
  figures);
- *Soundness is closed under union* (Theorem 1, randomised);
- *The maximal mechanism dominates* arbitrary sound mechanisms
  (Theorem 2, randomised);
- label algebra, mask codec, and factor-reconstruction round trips.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (ProductDomain, Program, allow, check_soundness,
                        is_sound, is_violation, maximal_mechanism,
                        mechanism_from_table, union)
from repro.flowchart.expr import Const, Var, var
from repro.flowchart.interpreter import as_program
from repro.flowchart.structured import (Assign, If, Skip, StructuredProgram,
                                        While)
from repro.surveillance.dynamic import surveillance_mechanism
from repro.surveillance.labels import from_mask, join, to_mask

GRID2 = ProductDomain.integer_grid(0, 2, 2)

# -- strategies -----------------------------------------------------------

VARIABLES = ("x1", "x2", "r", "y")
WRITABLE = ("r", "s", "y")


def expressions():
    atoms = st.one_of(
        st.sampled_from(VARIABLES).map(Var),
        st.integers(min_value=0, max_value=3).map(Const),
    )
    return st.recursive(
        atoms,
        lambda children: st.tuples(
            st.sampled_from(["+", "-", "*"]), children, children
        ).map(lambda t: _binop(*t)),
        max_leaves=4,
    )


def _binop(op, left, right):
    from repro.flowchart.expr import BinOp

    return BinOp(op, left, right)


def predicates():
    return st.tuples(
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        expressions(), expressions(),
    ).map(lambda t: _compare(*t))


def _compare(op, left, right):
    from repro.flowchart.expr import Compare

    return Compare(op, left, right)


def statements(depth=2):
    assign = st.tuples(st.sampled_from(WRITABLE), expressions()).map(
        lambda t: Assign(*t))
    if depth == 0:
        return assign
    inner = st.lists(statements(depth - 1), min_size=1, max_size=2)
    branch = st.tuples(predicates(), inner, inner).map(
        lambda t: If(t[0], t[1], t[2]))
    # Bounded loop: guard on a countdown variable so programs are total.
    loop = st.tuples(inner).map(
        lambda t: [Assign("c", Const(2)),
                   While(var("c").ne(0),
                         list(t[0]) + [Assign("c", var("c") - 1)])])
    return st.one_of(assign, branch,
                     loop.map(lambda body: _as_block(body)))


class _Block(Skip):
    """Wrapper carrying a statement list through the strategy plumbing."""

    def __init__(self, body):
        self.body = body


def _as_block(body):
    return _Block(body)


def _flatten(statement_list):
    flat = []
    for statement in statement_list:
        if isinstance(statement, _Block):
            flat.extend(statement.body)
        else:
            flat.append(statement)
    return flat


def random_programs():
    return st.lists(statements(), min_size=1, max_size=4).map(
        lambda body: StructuredProgram(
            ["x1", "x2"], _flatten(body), name="random"))


# -- noninterference over random programs ---------------------------------

@settings(max_examples=60, deadline=None)
@given(random_programs(), st.sampled_from([(), (1,), (2,), (1, 2)]))
def test_surveillance_noninterference_on_random_programs(program, indices):
    """Theorem 3 on machine-generated programs: the surveillance
    mechanism is sound for every allow(...) policy."""
    flowchart = program.compile()
    policy = allow(*indices, arity=2)
    mechanism = surveillance_mechanism(flowchart, policy, GRID2,
                                       fuel=10_000)
    report = check_soundness(mechanism, policy, GRID2)
    assert report.sound, report.witness


@settings(max_examples=40, deadline=None)
@given(random_programs())
def test_surveillance_passes_only_true_outputs(program):
    """Mechanism contract on random programs: every non-notice output
    equals Q's output."""
    flowchart = program.compile()
    policy = allow(1, arity=2)
    mechanism = surveillance_mechanism(flowchart, policy, GRID2,
                                       fuel=10_000)
    mechanism.check_contract(GRID2)


@settings(max_examples=40, deadline=None)
@given(random_programs())
def test_maximal_dominates_surveillance_on_random_programs(program):
    """Theorem 2, randomised: Mmax >= Ms always."""
    from repro.core import as_complete

    flowchart = program.compile()
    policy = allow(2, arity=2)
    q = as_program(flowchart, GRID2, fuel=10_000)
    construction = maximal_mechanism(q, policy, GRID2)
    mechanism = surveillance_mechanism(flowchart, policy, GRID2,
                                       fuel=10_000, program=q)
    assert as_complete(construction.mechanism, mechanism, GRID2)


# -- Theorem 1, randomised over table mechanisms ---------------------------

def _table_mechanisms(q, policy):
    """Strategy: a sound mechanism accepting a random set of good classes."""
    classes = policy.classes(q.domain)
    good = [members for members in classes.values()
            if len({q(*point) for point in members}) == 1]

    def build(mask):
        table = {}
        for keep, members in zip(mask, good):
            if keep:
                for point in members:
                    table[point] = q(*members[0])
        return mechanism_from_table(q, table)

    return st.lists(st.booleans(), min_size=len(good),
                    max_size=len(good)).map(build)


MIXED_Q = Program(lambda a, b: b if a == 1 else a, GRID2, name="mixed")
MIXED_POLICY = allow(1, arity=2)


@settings(max_examples=50, deadline=None)
@given(_table_mechanisms(MIXED_Q, MIXED_POLICY),
       _table_mechanisms(MIXED_Q, MIXED_POLICY))
def test_union_preserves_soundness_and_dominates(left, right):
    from repro.core import as_complete

    assert is_sound(left, MIXED_POLICY)
    assert is_sound(right, MIXED_POLICY)
    joined = union(left, right)
    assert is_sound(joined, MIXED_POLICY)
    assert as_complete(joined, left)
    assert as_complete(joined, right)


@settings(max_examples=50, deadline=None)
@given(_table_mechanisms(MIXED_Q, MIXED_POLICY))
def test_maximal_dominates_random_sound_mechanisms(mechanism):
    from repro.core import as_complete

    construction = maximal_mechanism(MIXED_Q, MIXED_POLICY)
    assert as_complete(construction.mechanism, mechanism)


# -- factor reconstruction --------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.functions(like=lambda policy_value: None,
                    returns=st.integers(min_value=0, max_value=5),
                    pure=True))
def test_factoring_mechanisms_are_judged_sound(m_prime):
    """Any mechanism literally built as M' ∘ I must be judged sound —
    the converse direction of the checker."""
    policy = allow(1, arity=2)
    q = Program(lambda a, b: a, GRID2)

    def factored(a, b):
        value = m_prime(policy(a, b))
        return value if value == q(a, b) else _notice(value)

    from repro.core import ViolationNotice

    def _notice(value):
        return ViolationNotice(f"Λ{value}")

    mechanism = mechanism_from_table(
        q, {point: factored(*point) for point in GRID2})
    assert is_sound(mechanism, policy)


# -- label algebra -----------------------------------------------------------

label_sets = st.frozensets(st.integers(min_value=1, max_value=10),
                           max_size=6)


@given(label_sets, label_sets, label_sets)
def test_label_join_laws(a, b, c):
    assert join(a, b) == join(b, a)
    assert join(a, a) == a
    assert join(join(a, b), c) == join(a, join(b, c))
    assert join(a, frozenset()) == a


@given(label_sets)
def test_mask_round_trip(label):
    assert from_mask(to_mask(label)) == label


@given(label_sets, label_sets)
def test_mask_or_is_union(a, b):
    assert from_mask(to_mask(a) | to_mask(b)) == a | b


# -- domains ------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=3),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=3))
def test_product_domain_size_and_membership(low, span, arity):
    domain = ProductDomain.integer_grid(low, low + span, arity)
    assert len(domain) == (span + 1) ** arity
    points = list(domain)
    assert len(points) == len(set(points))
    assert all(point in domain for point in points)
