"""Kill a sweep mid-flight, resume it, and demand identical rows.

The checkpoint contract is crash-*safety*, not crash-avoidance: a
sweep SIGKILLed between journal writes must leave a journal that (a)
still validates against the trace-event schema (at worst one torn
final line, which the loader drops) and (b) resumes to rows
bit-identical to an uninterrupted run.  SIGTERM, by contrast, is the
graceful path: the CLI drains in-flight chunks and exits 130.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")

# Enough chunks to straddle a kill, slowed so the kill lands mid-sweep:
# every chunk attempt sleeps 50ms (chaos delay rate 1.0).
SWEEP = ["sweep", "--programs", "parity,max,mixer", "--executor",
         "thread", "--jobs", "2", "--chunk-size", "2",
         "--chaos", "seed=1,delay=1,delay_s=0.05"]


def run_cli(arguments, **kwargs):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run([sys.executable, "-m", "repro"] + arguments,
                          env=env, capture_output=True, text=True,
                          **kwargs)


def spawn_cli(arguments):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.Popen([sys.executable, "-m", "repro"] + arguments,
                            env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def journalled_chunks(path):
    if not os.path.exists(path):
        return 0
    with open(path, encoding="utf-8") as handle:
        return sum(1 for line in handle
                   if '"checkpoint_written"' in line)


def wait_for_chunks(path, minimum, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        count = journalled_chunks(path)
        if count >= minimum:
            return count
        time.sleep(0.01)
    pytest.fail(f"checkpoint never reached {minimum} journalled "
                f"chunk(s); saw {journalled_chunks(path)}")


@pytest.fixture(scope="module")
def baseline_rows(tmp_path_factory):
    path = tmp_path_factory.mktemp("baseline") / "rows.json"
    completed = run_cli(SWEEP + ["--results-json", str(path)])
    assert completed.returncode == 0, completed.stderr
    return json.loads(path.read_text())


def test_sigkill_then_resume_is_bit_identical(tmp_path, baseline_rows):
    checkpoint = str(tmp_path / "ck.jsonl")
    results = str(tmp_path / "rows.json")

    process = spawn_cli(SWEEP + ["--checkpoint", checkpoint])
    try:
        wait_for_chunks(checkpoint, 2)
        process.send_signal(signal.SIGKILL)
    finally:
        process.wait(timeout=30)
    assert not os.path.exists(results)  # it never got to the report

    # The torn journal still validates (the loader drops at most the
    # final partial line; validate_jsonl skips it the same way).
    validated = run_cli(["metrics", "--validate", checkpoint])
    assert validated.returncode == 0, validated.stdout + validated.stderr

    resumed = run_cli(SWEEP + ["--checkpoint", checkpoint, "--resume",
                               "--results-json", results])
    assert resumed.returncode == 0, resumed.stderr
    assert json.loads(open(results).read()) == baseline_rows


def test_sigterm_drains_and_exits_130(tmp_path, baseline_rows):
    checkpoint = str(tmp_path / "ck.jsonl")
    results = str(tmp_path / "rows.json")

    process = spawn_cli(SWEEP + ["--checkpoint", checkpoint])
    try:
        wait_for_chunks(checkpoint, 1)
        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    assert code == 130

    resumed = run_cli(SWEEP + ["--checkpoint", checkpoint, "--resume",
                               "--results-json", results])
    assert resumed.returncode == 0, resumed.stderr
    assert json.loads(open(results).read()) == baseline_rows


def test_resume_without_interruption_is_a_no_op_rerun(tmp_path,
                                                      baseline_rows):
    checkpoint = str(tmp_path / "ck.jsonl")
    results = str(tmp_path / "rows.json")
    completed = run_cli(SWEEP + ["--checkpoint", checkpoint])
    assert completed.returncode == 0, completed.stderr

    resumed = run_cli(SWEEP + ["--checkpoint", checkpoint, "--resume",
                               "--results-json", results])
    assert resumed.returncode == 0, resumed.stderr
    assert json.loads(open(results).read()) == baseline_rows
