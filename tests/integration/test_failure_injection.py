"""Failure injection: the library's behaviour at its edges.

Systems code is judged by its failure modes: what happens on diverging
programs, absurd fuel budgets, deep nesting, and adversarial notice
values.  These tests pin the failure contracts.
"""

import pytest

from repro.core import (ProductDomain, Program, ProtectionMechanism,
                        ViolationNotice, allow, check_soundness,
                        is_violation)
from repro.core.errors import (FuelExhaustedError, MechanismContractError,
                               ReproError)
from repro.flowchart.builder import FlowchartBuilder
from repro.flowchart.expr import BoolConst, Const, var
from repro.flowchart.interpreter import as_program, execute
from repro.flowchart.structured import (Assign, If, StructuredProgram,
                                        While)
from repro.surveillance import surveil, surveillance_mechanism

GRID1 = ProductDomain.integer_grid(0, 3, 1)


def diverging_flowchart():
    """while true { r := r + 1 } — never reaches a halt on its own."""
    return StructuredProgram(
        ["x1"],
        [While(BoolConst(True), [Assign("r", var("r") + 1)]),
         Assign("y", Const(1))],
        name="diverge").compile()


class TestFuelPropagation:
    def test_interpreter_raises(self):
        with pytest.raises(FuelExhaustedError):
            execute(diverging_flowchart(), (0,), fuel=100)

    def test_surveillance_raises_not_swallows(self):
        """A diverging run is an error, never a silent Λ — masking
        divergence as a violation notice would itself be a channel."""
        with pytest.raises(FuelExhaustedError):
            surveil(diverging_flowchart(), (0,), allowed=frozenset(),
                    fuel=100)

    def test_mechanism_call_propagates(self):
        mechanism = surveillance_mechanism(diverging_flowchart(),
                                           allow(1, arity=1), GRID1,
                                           fuel=100)
        with pytest.raises(FuelExhaustedError):
            mechanism(0)

    def test_program_wrapper_propagates(self):
        q = as_program(diverging_flowchart(), GRID1, fuel=100)
        with pytest.raises(FuelExhaustedError):
            q(0)

    def test_error_carries_budget(self):
        try:
            execute(diverging_flowchart(), (0,), fuel=77)
        except FuelExhaustedError as error:
            assert error.fuel == 77

    def test_all_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            execute(diverging_flowchart(), (0,), fuel=50)


class TestDeepNesting:
    def test_deeply_nested_branches(self):
        """64 nested ifs: compilation, execution, and surveillance all
        survive (no recursion blowups in the hot paths).

        The else arms stay empty — nesting the same body into *both*
        arms would duplicate it per level and blow the box count up
        exponentially (each arm is compiled separately).
        """
        body = [Assign("y", Const(1))]
        for _ in range(64):
            body = [If(var("x1").eq(0), body, [])]
        program = StructuredProgram(["x1"], body, name="deep")
        flowchart = program.compile()
        assert execute(flowchart, (0,)).value == 1
        run = surveil(flowchart, (0,), allowed=frozenset({1}))
        assert run.outcome == 1

    def test_long_straightline_program(self):
        builder = FlowchartBuilder(["x1"], name="long")
        builder.start()
        for _ in range(500):
            builder.assign("y", var("y") + 1)
        builder.halt()
        flowchart = builder.build()
        assert execute(flowchart, (0,)).value == 500


class TestAdversarialNotices:
    def test_notice_masquerading_as_value_is_caught(self):
        """A mechanism returning a *string* 'Λ' is not returning a
        notice — the contract checker flags it."""
        q = Program(lambda a: a, GRID1)
        fake = ProtectionMechanism(lambda a: "Λ", q, name="faker")
        with pytest.raises(MechanismContractError):
            fake.check_contract()

    def test_notice_equal_to_program_output_stays_distinct(self):
        """Example 1's critique of Fenton: E and F must be disjoint.
        A notice whose message renders like a value still is not one."""
        q = Program(lambda a: 0, GRID1)
        mechanism = ProtectionMechanism(
            lambda a: ViolationNotice("0") if a == 0 else 0, q)
        mechanism.check_contract()  # notices are always permitted
        assert is_violation(mechanism(0))
        assert mechanism(1) == 0
        # And the checker can still tell them apart.
        report = check_soundness(mechanism, allow(arity=1))
        assert not report.sound

    def test_empty_message_notice(self):
        notice = ViolationNotice("")
        assert is_violation(notice)
        assert notice == ViolationNotice("")


class TestDegenerateDomains:
    def test_singleton_domain(self):
        grid = ProductDomain.integer_grid(5, 5, 2)
        q = Program(lambda a, b: a * b, grid)
        from repro.core import maximal_mechanism, program_as_mechanism

        assert check_soundness(program_as_mechanism(q),
                               allow(arity=2)).sound  # constant on {pt}
        construction = maximal_mechanism(q, allow(arity=2))
        assert construction.mechanism(5, 5) == 25

    def test_single_input_program(self):
        flowchart = StructuredProgram(["x1"], [Assign("y", var("x1"))],
                                      name="id").compile()
        mechanism = surveillance_mechanism(flowchart, allow(1, arity=1),
                                           GRID1)
        assert all(mechanism(x) == x for (x,) in GRID1)
