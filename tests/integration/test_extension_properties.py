"""Property-based tests for the extension subsystems (osched, capability,
integrity, Denning lattices)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.capability import (Capability, CList, ConstOp, ReadOp, Script,
                              StatOp, SumOp, capability_monitor,
                              information_audit, intended_policy)
from repro.core import allow, check_soundness
from repro.flowchart.expr import var
from repro.flowchart.structured import Assign, StructuredProgram
from repro.osched import decode, run_transmission
from repro.staticflow.classes import chain_lattice
from repro.staticflow.denning import ClassAssignment, certify_lattice

OBJECTS = ("public", "secret")


# -- osched: the channel works for every secret, and quotas kill it -------

@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.data())
def test_shared_channel_decodes_every_secret(width, data):
    secret = data.draw(st.integers(min_value=0,
                                   max_value=(1 << width) - 1))
    observations = run_transmission(secret, width, partitioned=False)
    assert decode(observations) == secret


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.data())
def test_partitioned_observations_independent_of_secret(width, data):
    first = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    second = data.draw(st.integers(min_value=0,
                                   max_value=(1 << width) - 1))
    assert (run_transmission(first, width, partitioned=True)
            == run_transmission(second, width, partitioned=True))


# -- capability: soundness is exactly "no permitted op reads unreadable" --

def clists():
    rights = st.sets(st.sampled_from(["read", "stat"]))
    return st.tuples(rights, rights).map(
        lambda pair: CList([Capability("public", pair[0]),
                            Capability("secret", pair[1])]))


def scripts():
    operations = st.lists(
        st.one_of(
            st.sampled_from(OBJECTS).map(ReadOp),
            st.sampled_from(OBJECTS).map(StatOp),
            st.just(SumOp(OBJECTS)),
            st.integers(min_value=0, max_value=3).map(ConstOp),
        ),
        min_size=1, max_size=3)
    return operations.map(lambda ops: Script(ops, name="random"))


@settings(max_examples=60, deadline=None)
@given(clists(), scripts())
def test_capability_soundness_characterisation(clist, script):
    """The audit's verdict matches the theory: a *permitted* script is
    sound for the intended policy iff it reads no object the C-list
    cannot read; blocked scripts are vacuously sound (constant Λ)."""
    audit = information_audit(script, clist, OBJECTS)
    if not audit["access_granted"]:
        assert audit["sound"]
        return
    policy = intended_policy(clist, OBJECTS)
    readable = {name for position, name in enumerate(OBJECTS, 1)
                if position in policy.indices}
    expected_sound = script.reads() <= readable
    assert audit["sound"] == expected_sound


@settings(max_examples=40, deadline=None)
@given(clists(), scripts())
def test_capability_monitor_contract(clist, script):
    capability_monitor(script, clist, OBJECTS).check_contract()


# -- integrity: algebraic sanity over random designations ------------------

@settings(max_examples=40, deadline=None)
@given(st.sampled_from([(1,), (2,), (1, 2), ()]))
def test_identity_preserves_and_null_loses(indices):
    from repro.core import (ProductDomain, Program, null_mechanism,
                            preserves, program_as_mechanism, retain_inputs)

    grid = ProductDomain.integer_grid(0, 2, 2)
    q = Program(lambda a, b: (a, b), grid)
    policy = retain_inputs(*indices, arity=2)
    assert preserves(program_as_mechanism(q), policy)
    assert preserves(null_mechanism(q), policy) == (not indices)


# -- Denning lattices: clearance monotonicity ------------------------------

CHAIN = chain_lattice(["low", "mid", "high"])


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(CHAIN.elements), st.sampled_from(CHAIN.elements),
       st.sampled_from(CHAIN.elements))
def test_certification_monotone_in_clearance(source_a, source_b,
                                             clearance):
    """Raising the output clearance never un-certifies a program."""
    program = StructuredProgram(
        ["a", "b"], [Assign("y", var("a") + var("b"))], name="mix")
    sources = {"a": source_a, "b": source_b}

    def certified(bound):
        assignment = ClassAssignment(CHAIN, sources, {"y": bound})
        return certify_lattice(program, assignment).certified

    order = {"low": 0, "mid": 1, "high": 2}
    for higher in CHAIN.elements:
        if order[higher] >= order[clearance] and certified(clearance):
            assert certified(higher)


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(CHAIN.elements), st.sampled_from(CHAIN.elements))
def test_output_class_is_join_of_sources(source_a, source_b):
    program = StructuredProgram(
        ["a", "b"], [Assign("y", var("a") * var("b"))], name="mix")
    assignment = ClassAssignment(CHAIN, {"a": source_a, "b": source_b}, {})
    analysis = certify_lattice(program, assignment)
    assert analysis.classes["y"] == CHAIN.join(source_a, source_b)


# -- leakage measures: structural laws over random mechanisms --------------

def _table_mechanisms_for_leakage():
    """Random mechanisms given extensionally over a 3x3 grid."""
    from repro.core import ProductDomain, Program
    from repro.core.mechanism import mechanism_from_table

    grid = ProductDomain.integer_grid(0, 2, 2)
    q = Program(lambda a, b: a * 3 + b, grid, name="enum")

    def build(outputs):
        table = {point: q(*point) for point, output in zip(grid, outputs)
                 if output == "pass"}
        return q, mechanism_from_table(q, table)

    verdicts = st.lists(st.sampled_from(["pass", "block"]),
                        min_size=9, max_size=9)
    return verdicts.map(build)


@settings(max_examples=60, deadline=None)
@given(_table_mechanisms_for_leakage(),
       st.sampled_from([(), (1,), (2,), (1, 2)]))
def test_leakage_measures_agree_on_soundness(build, indices):
    """All three measures are zero exactly when the mechanism is sound,
    and Shannon never exceeds the worst-class bound."""
    from repro.core import allow, check_soundness, leakage_profile

    q, mechanism = build
    policy = allow(*indices, arity=2)
    profile = leakage_profile(mechanism, policy)
    sound = check_soundness(mechanism, policy).sound
    assert (profile.shannon == 0.0) == sound
    assert (profile.min_entropy == 0.0) == sound
    assert (profile.worst_class == 0.0) == sound
    assert profile.shannon <= profile.worst_class + 1e-9
    assert profile.min_entropy >= 0.0
