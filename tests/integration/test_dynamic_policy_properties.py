"""Property-based tests for the dynamic-policy subsystem.

Machine-generated programs with ``policy`` and ``downgrade`` statements
injected at random positions must satisfy the two contracts the
hand-written dynamic suite pins:

- *per-epoch static containment*: at every program counter the monitor
  visits, under whatever policy is then in force, the epoch-aware
  influence fixpoint's labels (for that policy bucket) dominate the
  monitor's labels — static ⊇ dynamic, bucket by bucket;
- *engine agreement*: the interpreter-level surveillance mechanism,
  the compiled instrumented mechanism, and the batch tier produce
  identical outputs point-for-point, epoch-tagged notices included.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import ProductDomain
from repro.core.policy import AllowPolicy
from repro.flowchart.batchpath import execute_batch
from repro.flowchart.expr import Const, Var, var
from repro.flowchart.structured import (Assign, Downgrade, If,
                                        PolicyChange, StructuredProgram,
                                        While)
from repro.surveillance.dynamic import surveil, surveillance_mechanism
from repro.surveillance.instrument import (EPOCH_VAR, VIOLATION_FLAG,
                                           instrument,
                                           instrumented_mechanism)
from repro.analysis import epoch_influence_analysis

GRID = [(a, b) for a in range(3) for b in range(3)]
DOMAIN = ProductDomain.integer_grid(0, 2, 2)

VARIABLES = ("x1", "x2", "r", "y")
WRITABLE = ("r", "y")


def expressions():
    atoms = st.one_of(
        st.sampled_from(VARIABLES).map(Var),
        st.integers(min_value=0, max_value=3).map(Const),
    )
    return st.recursive(
        atoms,
        lambda children: st.tuples(
            st.sampled_from(["+", "-"]), children, children
        ).map(lambda t: _binop(*t)),
        max_leaves=3,
    )


def _binop(op, left, right):
    from repro.flowchart.expr import BinOp

    return BinOp(op, left, right)


def predicates():
    return st.tuples(
        st.sampled_from(["==", "!=", "<", ">"]),
        expressions(), expressions(),
    ).map(lambda t: _compare(*t))


def _compare(op, left, right):
    from repro.flowchart.expr import Compare

    return Compare(op, left, right)


def index_sets(min_size=0):
    return st.sets(st.sampled_from([1, 2]), min_size=min_size)


def dynamic_statements(depth=1):
    assign = st.tuples(st.sampled_from(WRITABLE), expressions()).map(
        lambda t: Assign(*t))
    policy = index_sets().map(lambda s: PolicyChange(sorted(s)))
    downgrade = st.tuples(
        st.sampled_from(WRITABLE),
        index_sets(min_size=1),
    ).map(lambda t: Downgrade(t[0], sorted(t[1])))
    flat = st.one_of(assign, policy, downgrade)
    if depth == 0:
        return flat
    inner = st.lists(dynamic_statements(depth - 1), min_size=1, max_size=2)
    branch = st.tuples(predicates(), inner, inner).map(
        lambda t: If(t[0], t[1], t[2]))
    loop = inner.map(
        lambda body: If(var("x1").ne(0),
                        [Assign("c", Const(2)),
                         While(var("c").ne(0),
                               list(body) + [Assign("c", var("c") - 1)])],
                        []))
    return st.one_of(flat, branch, loop)


def dynamic_programs():
    # Force at least one dynamic construct so every example exercises
    # the new machinery (a plain program tests nothing new here).
    spine = st.one_of(
        index_sets().map(lambda s: PolicyChange(sorted(s))),
        st.tuples(st.sampled_from(WRITABLE),
                  index_sets(min_size=1)).map(
            lambda t: Downgrade(t[0], sorted(t[1]))),
    )
    return st.tuples(
        st.lists(dynamic_statements(), min_size=1, max_size=3),
        spine,
        st.lists(dynamic_statements(), min_size=0, max_size=2),
    ).map(lambda t: StructuredProgram(
        ["x1", "x2"], list(t[0]) + [t[1]] + list(t[2]), name="random-dyn"))


POLICIES = [AllowPolicy(sorted(s), 2)
            for s in ([], [1], [2], [1, 2])]


@settings(max_examples=40, deadline=None)
@given(dynamic_programs(), st.sampled_from(POLICIES))
def test_static_per_epoch_labels_dominate_dynamic(program, policy):
    flowchart = program.compile()
    analysis = epoch_influence_analysis(flowchart, policy.allowed)
    observed = []

    def observer(node, labels, pc_label, active, epoch):
        observed.append((node, dict(labels), pc_label, frozenset(active)))

    for point in GRID:
        observed.clear()
        surveil(flowchart, point, policy.allowed, policy_observer=observer)
        for node, labels, pc_label, active in observed:
            assert pc_label <= analysis.pc_at(node, active), (point, node)
            for name, label in labels.items():
                assert label <= analysis.label_at(node, name, active), \
                    (point, node, name)


@settings(max_examples=40, deadline=None)
@given(dynamic_programs(), st.sampled_from(POLICIES))
def test_three_engines_agree_on_epoch_tagged_notices(program, policy):
    flowchart = program.compile()
    surv = surveillance_mechanism(flowchart, policy, DOMAIN)
    inst = instrumented_mechanism(flowchart, policy, DOMAIN)
    instrumented = instrument(flowchart, policy)
    batch = execute_batch(instrumented, GRID, need_env=True, memo=False)
    has_epochs = bool(flowchart.policy_change_ids())
    for index, point in enumerate(GRID):
        reference = surv(*point)
        assert inst(*point) == reference, point
        env = batch.env(index)
        run = surveil(flowchart, point, frozenset(policy.allowed))
        assert (env.get(VIOLATION_FLAG, 0) == 1) == run.violated, point
        if run.violated and has_epochs:
            assert str(reference) == f"Λ@e{env.get(EPOCH_VAR, 0)}", point


@settings(max_examples=30, deadline=None)
@given(dynamic_programs(), st.sampled_from(POLICIES))
def test_epoch_certification_implies_monitor_silence(program, policy):
    # The soundness direction of the tentpole, on random programs: a
    # statically certified (flowchart, policy) pair never triggers the
    # monitor anywhere on the grid.
    from repro.analysis import epoch_verdict

    flowchart = program.compile()
    if not epoch_verdict(flowchart, policy).certified:
        return
    for point in GRID:
        assert not surveil(flowchart, point, policy.allowed).violated, point
