"""End-to-end reproduction of every paper claim — one test per experiment.

These are the integration tests behind EXPERIMENTS.md: each experiment
E01–E27 from DESIGN.md asserts the qualitative claim the paper makes
(or the extension claim the paper names), through the public API only.
"""

import math

import pytest

from repro import (LAMBDA, ProductDomain, VALUE_AND_TIME, allow, allow_all,
                   allow_none, as_complete, check_soundness, compare,
                   compile_with_transforms, highwater_mechanism, instrument,
                   instrumented_mechanism, is_sound, is_violation, join,
                   maximal_mechanism, more_complete, null_mechanism,
                   program_as_mechanism, surveillance_mechanism,
                   timed_surveillance_mechanism, union)
from repro.core import (Order, Program, SoundMechanismLattice,
                        mechanism_from_table, maximality_cost,
                        theorem4_family)
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.flowchart.transforms import (duplicate_assignment_transform,
                                        find_ite_regions,
                                        functionally_equivalent,
                                        ite_transform)

GRID1 = ProductDomain.integer_grid(0, 5, 1)
GRID2 = ProductDomain.integer_grid(0, 3, 2)


class TestE01TrivialMechanisms:
    """Example 3: the two trivial mechanisms."""

    def test_null_sound_for_every_policy_and_useless(self):
        q = as_program(library.mixer_program(), GRID2)
        null = null_mechanism(q)
        for policy in (allow_none(2), allow(1, arity=2), allow_all(2)):
            assert is_sound(null, policy)
        assert null.acceptance_set() == frozenset()

    def test_program_as_own_mechanism_soundness_varies(self):
        q = as_program(library.mixer_program(), GRID2)
        own = program_as_mechanism(q)
        assert is_sound(own, allow_all(2))       # may be sound...
        assert not is_sound(own, allow(1, arity=2))  # ...or not


class TestE02Union:
    """Theorem 1: M1 ∨ M2 is sound and >= both."""

    def test_union_theorem(self):
        # Q constant on the x1 = 0 and x1 = 2 policy classes of allow(1):
        # two incomparable sound mechanisms, one accepting each class.
        q = Program(lambda a, b: b if a == 1 else a, GRID2, name="mixed")
        policy = allow(1, arity=2)
        left = mechanism_from_table(
            q, {point: q(*point) for point in GRID2 if point[0] == 0},
            name="M-x1=0")
        right = mechanism_from_table(
            q, {point: q(*point) for point in GRID2 if point[0] == 2},
            name="M-x1=2")
        assert is_sound(left, policy) and is_sound(right, policy)
        assert compare(left, right).order is Order.INCOMPARABLE
        joined = union(left, right)
        assert is_sound(joined, policy)
        assert as_complete(joined, left)
        assert as_complete(joined, right)
        assert (joined.acceptance_set()
                == left.acceptance_set() | right.acceptance_set())


class TestE03Maximal:
    """Theorem 2: the maximal sound mechanism exists (finite domains)."""

    def test_maximal_dominates_lattice_and_named_mechanisms(self):
        flowchart = library.forgetting_program()
        policy = allow(2, arity=2)
        q = as_program(flowchart, GRID2)
        construction = maximal_mechanism(q, policy)
        lattice = SoundMechanismLattice(q, policy)
        for element in lattice.elements():
            assert as_complete(construction.mechanism,
                               lattice.realise(element))
        assert as_complete(construction.mechanism,
                           surveillance_mechanism(flowchart, policy, GRID2,
                                                  program=q))
        assert as_complete(construction.mechanism,
                           highwater_mechanism(flowchart, policy, GRID2,
                                               program=q))


class TestE04SurveillanceSound:
    """Theorem 3 + the instrumentation ablation."""

    def test_theorem3_on_paper_figures(self):
        from repro.verify import all_allow_policies

        for flowchart in library.paper_figures():
            domain = ProductDomain.integer_grid(0, 2, flowchart.arity)
            for policy in all_allow_policies(flowchart.arity):
                mechanism = surveillance_mechanism(flowchart, policy, domain)
                assert is_sound(mechanism, policy), (flowchart.name,
                                                     policy.name)

    def test_literal_instrumentation_equivalent(self):
        flowchart = library.forgetting_program()
        policy = allow(2, arity=2)
        q = as_program(flowchart, GRID2)
        dynamic = surveillance_mechanism(flowchart, policy, GRID2, program=q)
        literal = instrumented_mechanism(flowchart, policy, GRID2, program=q)
        assert all(dynamic(*point) == literal(*point) for point in GRID2)


class TestE05TimedSurveillance:
    """Theorem 3': timing-aware surveillance under observable time."""

    def test_untimed_unsound_timed_sound(self):
        flowchart = library.timing_loop()
        policy = allow_none(1)
        q = as_program(flowchart, GRID1, VALUE_AND_TIME)
        untimed = surveillance_mechanism(flowchart, policy, GRID1,
                                         output_model=VALUE_AND_TIME,
                                         program=q)
        timed = timed_surveillance_mechanism(flowchart, policy, GRID1,
                                             program=q)
        assert not is_sound(untimed, policy)
        assert is_sound(timed, policy)


class TestE06HighWater:
    """Page 48: Ms > Mh; Mh always Λ, Ms gives Λ only when x2 != 0."""

    def test_page48_comparison(self):
        flowchart = library.forgetting_program()
        policy = allow(2, arity=2)
        q = as_program(flowchart, GRID2)
        surveillance = surveillance_mechanism(flowchart, policy, GRID2,
                                              program=q)
        highwater = highwater_mechanism(flowchart, policy, GRID2, program=q)
        assert highwater.acceptance_set() == frozenset()
        assert (surveillance.acceptance_set()
                == frozenset(p for p in GRID2 if p[1] == 0))
        assert more_complete(surveillance, highwater)


class TestE07NotMaximal:
    """Page 49: surveillance always Λ on constant-1 Q; Mmax = Q wins."""

    def test_surveillance_not_maximal(self):
        flowchart = library.reconvergence_program()
        policy = allow(2, arity=2)
        q = as_program(flowchart, GRID2)
        surveillance = surveillance_mechanism(flowchart, policy, GRID2,
                                              program=q)
        assert surveillance.acceptance_set() == frozenset()
        own = program_as_mechanism(q)
        assert is_sound(own, policy)  # Q is constant
        assert more_complete(own, surveillance)


class TestE08IteTransformHelps:
    """Example 7: the transform makes surveillance maximal on Q'."""

    def test_transform_yields_maximal(self):
        flowchart = library.example7_program()
        policy = allow(2, arity=2)
        q = as_program(flowchart, GRID2)
        region = find_ite_regions(flowchart)[0]
        rewritten = ite_transform(flowchart, region)
        assert functionally_equivalent(flowchart, rewritten, GRID2)
        mechanism = surveillance_mechanism(rewritten, policy, GRID2,
                                           program=q)
        assert mechanism.acceptance_set() == frozenset(GRID2)
        assert all(mechanism(*point) == 1 for point in GRID2)
        from repro.core import certify_maximal

        assert certify_maximal(mechanism, q, policy, GRID2)


class TestE09TransformHurts:
    """Example 8: M > M' — the transform can lose completeness."""

    def test_untransformed_beats_transformed(self):
        flowchart = library.example8_program()
        policy = allow(2, arity=2)
        q = as_program(flowchart, GRID2)
        untransformed = surveillance_mechanism(flowchart, policy, GRID2,
                                               program=q)
        region = find_ite_regions(flowchart)[0]
        rewritten = ite_transform(flowchart, region)
        transformed = surveillance_mechanism(rewritten, policy, GRID2,
                                             program=q)
        # M accepts exactly x2 = 1; M' always gives Λ.
        assert (untransformed.acceptance_set()
                == frozenset(p for p in GRID2 if p[1] == 1))
        assert transformed.acceptance_set() == frozenset()
        assert more_complete(untransformed, transformed)


class TestE10Duplication:
    """Example 9: ite transform always Λ; duplication only when x1 != 0."""

    def test_duplication_beats_ite(self):
        flowchart = library.example9_program()
        policy = allow(1, arity=2)
        q = as_program(flowchart, GRID2)
        region = find_ite_regions(flowchart)[0]
        ite_mech = surveillance_mechanism(ite_transform(flowchart, region),
                                          policy, GRID2, program=q)
        duplicated = duplicate_assignment_transform(flowchart, region)
        assert functionally_equivalent(flowchart, duplicated, GRID2)
        dup_mech = surveillance_mechanism(duplicated, policy, GRID2,
                                          program=q)
        assert ite_mech.acceptance_set() == frozenset()
        assert (dup_mech.acceptance_set()
                == frozenset(p for p in GRID2 if p[0] == 0))
        assert is_sound(dup_mech, policy)
        assert more_complete(dup_mech, ite_mech)

    def test_section5_compiler_finds_duplication(self):
        from repro.flowchart.expr import Const, var
        from repro.flowchart.structured import (Assign, If,
                                                StructuredProgram)

        program = StructuredProgram(
            ["x1", "x2"],
            [If(var("x1").eq(0), [Assign("y", Const(0))],
                [Assign("y", var("x2"))])],
            name="example9")
        outcome = compile_with_transforms(program, allow(1, arity=2), GRID2)
        assert (outcome.mechanism.acceptance_set()
                == frozenset(p for p in GRID2 if p[0] == 0))


class TestE11TimingChannel:
    """Section 2: the constant function that leaks through time."""

    def test_full_story(self):
        from repro.channels.timing import timing_report

        row = timing_report(domain_high=10)
        assert row["sound_value_only"] and not row["sound_with_time"]
        assert row["exact_recovery"]
        assert row["leak_bits"] == pytest.approx(math.log2(11))


class TestE12Tape:
    """Section 2: sequential read leaks len(z1); tab(i) restores soundness."""

    def test_tape_story(self):
        from repro.channels.tape import (per_cell_tab_reader,
                                         sequential_reader, tab_reader)

        policy = allow(2, arity=2)
        assert not is_sound(program_as_mechanism(sequential_reader(2, 2)),
                            policy)
        assert is_sound(program_as_mechanism(tab_reader(2, 2)), policy)
        assert not is_sound(
            program_as_mechanism(per_cell_tab_reader(2, 2)), policy)


class TestE13Logon:
    """Example 5: the logon program is unsound but leaks only 1 bit."""

    def test_logon_story(self):
        from repro.channels.password import (logon_leak_bits, logon_policy,
                                             logon_program)

        q = logon_program(["alice", "bob"], ["p", "q"])
        assert not is_sound(program_as_mechanism(q), logon_policy())
        assert logon_leak_bits(["alice", "bob"], ["p", "q"]) == 1.0


class TestE14WorkFactor:
    """Section 2: n^k brute force vs n·k page-boundary attack."""

    def test_bounds(self):
        from repro.channels.password import work_factor_row

        for n, k in ((3, 2), (4, 3), (5, 3)):
            row = work_factor_row(n, k)
            assert row["brute_guesses"] == n ** k
            assert row["paged_guesses"] <= n * k + 1
            assert row["paged_ok"] and row["brute_ok"]


class TestE15Fenton:
    """Example 1: the halt-semantics critique."""

    def test_halt_interpretation_decides_soundness(self):
        from repro.minsky.fenton import (HaltMode,
                                         balanced_negative_inference_program,
                                         fenton_mechanism)

        domain = ProductDomain.integer_grid(0, 4, 1)
        notice = fenton_mechanism(
            balanced_negative_inference_program(HaltMode.NOTICE), domain,
            priv_registers=[1])
        noop = fenton_mechanism(
            balanced_negative_inference_program(HaltMode.NOOP), domain,
            priv_registers=[1])
        assert not is_sound(notice, allow_none(1))
        assert is_sound(noop, allow_none(1))


class TestE16FileSystem:
    """Example 2 + Example 4: sound monitor vs notice-leaking monitors."""

    def test_filesystem_story(self):
        from repro.filesystem import (content_leaking_monitor,
                                      decision_leaking_monitor,
                                      directory_gated_policy,
                                      filesystem_domain, read_file_program,
                                      reference_monitor)

        domain = filesystem_domain(2, 0, 2)
        q = read_file_program(1, 2, domain)
        policy = directory_gated_policy(2)
        assert is_sound(reference_monitor(q, 1), policy)
        assert not is_sound(content_leaking_monitor(q, 1), policy)
        assert not is_sound(decision_leaking_monitor(q, 1, 1), policy)


class TestE17Undecidability:
    """Theorem 4's finite shadow: certifying M(0)=0 needs the whole domain."""

    def test_cost_unbounded_and_verdict_unstable(self):
        from repro.core import decide_theorem4_output_at_zero

        a_fn = lambda x: 0 if x < 20 else 1
        costs = []
        verdicts = []
        for high in (9, 19, 29):
            domain = ProductDomain.integer_grid(0, high, 1)
            q = theorem4_family(a_fn, domain)
            costs.append(maximality_cost(q, allow_none(1), domain))
            verdicts.append(decide_theorem4_output_at_zero(
                maximal_mechanism(q, allow_none(1), domain)))
        assert costs == [10, 20, 30]          # linear in the window
        assert verdicts == [True, True, False]  # flips when window grows


class TestE18StaticVsDynamic:
    """Section 5: whole-program certification vs per-run surveillance."""

    def test_gap_both_ways(self):
        from repro.flowchart.expr import Const, var
        from repro.flowchart.structured import (Assign, If, Skip,
                                                StructuredProgram)
        from repro.staticflow import certify

        # Dynamic wins on runs: forgetting / allow(2).
        forgetting = StructuredProgram(
            ["x1", "x2"],
            [Assign("y", var("x1")),
             If(var("x2").eq(0), [Assign("y", Const(0))], [Skip()])],
            name="forgetting")
        policy = allow(2, arity=2)
        assert not certify(forgetting, policy).certified
        dynamic = surveillance_mechanism(forgetting.compile(), policy, GRID2)
        assert len(dynamic.acceptance_set()) == 4

        # Static wins on whole programs: reconvergence / allow(2).
        reconvergence = StructuredProgram(
            ["x1", "x2"],
            [If(var("x1").eq(1), [Assign("r", Const(1))],
                [Assign("r", Const(2))]),
             Assign("y", Const(1))],
            name="reconvergence")
        assert certify(reconvergence, policy).certified
        dynamic2 = surveillance_mechanism(reconvergence.compile(), policy,
                                          GRID2)
        assert dynamic2.acceptance_set() == frozenset()


class TestE19Lattice:
    """Section 2 remark: sound mechanisms form a lattice under ∨."""

    def test_lattice_of_sound_mechanisms(self):
        q = as_program(library.forgetting_program(), GRID2)
        policy = allow(2, arity=2)
        lattice = SoundMechanismLattice(q, policy)
        elements = lattice.elements()
        assert len(elements) == 2 ** len(lattice.good_class_keys)
        # Realised joins agree with the ∨ of Theorem 1.
        for a in elements:
            for b in elements:
                joined = union(lattice.realise(a), lattice.realise(b))
                assert (joined.acceptance_set()
                        == lattice.realise(lattice.join(a, b))
                        .acceptance_set())


class TestE20DataSecurityDual:
    """Section 2's second question, carried out as the paper asserts."""

    def test_tension_and_guarded_point(self):
        from repro.core import (Program, check_guarded, retain_inputs)

        q = Program(lambda a, b: (a, b), GRID2, name="state")
        sliced = Program(lambda a, b: a, GRID2, name="slice")
        confinement = allow(1, arity=2)
        integrity = retain_inputs(1, arity=2)
        null_report = check_guarded(null_mechanism(q), confinement,
                                    integrity)
        assert null_report.confinement.sound
        assert not null_report.integrity.preserving
        assert check_guarded(program_as_mechanism(sliced), confinement,
                             integrity).guarded


class TestE21Capability:
    """Example 6 / Section 6 in a concrete capability machine."""

    def test_access_control_is_not_information_control(self):
        from repro.capability import (Capability, CList, ReadOp, Script,
                                      StatOp, information_audit)

        clist = CList([Capability("public", ["read"]),
                       Capability("secret", ["stat"])])
        blocked = information_audit(Script([ReadOp("secret")], "RF"),
                                    clist, ("public", "secret"))
        sneaky = information_audit(Script([StatOp("secret")], "ST"),
                                   clist, ("public", "secret"))
        assert not blocked["access_granted"]
        assert sneaky["access_granted"] and not sneaky["sound"]


class TestE22ResourceChannel:
    """Section 2's resource-usage remark, end to end."""

    def test_shared_leaks_quota_closes(self):
        from repro.osched import channel_report

        rows = {row["discipline"]: row for row in channel_report(width=3)}
        assert rows["shared"]["exact_recovery"]
        assert not rows["shared"]["sound_for_allow_none"]
        assert rows["partitioned"]["sound_for_allow_none"]


class TestE23EfficientEnforcement:
    """Section 5's efficiency claim, measured."""

    def test_hybrid_and_optimiser(self):
        from repro.flowchart.expr import var as v
        from repro.flowchart.structured import Assign, StructuredProgram
        from repro.staticflow import (hybrid_mechanism,
                                      instrumentation_overhead)

        program = StructuredProgram(
            ["x1", "x2"],
            [Assign("audit", v("x2") * 3), Assign("y", v("x1"))],
            name="dead-aux")
        outcome = hybrid_mechanism(program, allow(1, arity=2), GRID2)
        assert outcome.static  # zero-check enforcement
        overhead = instrumentation_overhead(program.compile(),
                                            allow(1, arity=2), GRID2)
        assert (overhead["bare_steps"] < overhead["optimised_steps"]
                < overhead["full_steps"])


class TestE24Ruzzo:
    """Section 4's Ruzzo observations on real Turing machines."""

    def test_window_instability(self):
        from repro.turing import maximal_rejects

        small = maximal_rejects([0, 111, 148], max_steps=50)
        large = maximal_rejects([0, 111, 148], max_steps=150)
        assert small[0] and large[0]          # fast halter: stable Λ
        assert not small[111] and large[111]  # slow halter: flips
        assert not small[148] and not large[148]  # looper: never


class TestE25HistorySessions:
    """Section 2's database remark: stateful enforcement."""

    def test_budget_sound_tripwire_leaks(self):
        from repro.core import (SecurityPolicy, budget_gatekeeper,
                                content_triggered_gatekeeper, unroll)
        from repro.core.program import Program as P

        per_query = P(lambda a, b: a, GRID2, name="first")
        policy = SecurityPolicy(lambda *flat: (flat[0], flat[2]), 4,
                                name="I-x1s")
        budget = unroll(budget_gatekeeper(program_as_mechanism(per_query),
                                          budget=2), per_query, 2)
        assert check_soundness(budget, policy).sound
        tripwire = unroll(content_triggered_gatekeeper(
            program_as_mechanism(per_query), trip=lambda a, b: b == 1),
            per_query, 2)
        assert not check_soundness(tripwire, policy).sound


class TestE26CrossModel:
    """Section 6's generality: one program, two enforcement machines."""

    def test_disciplines(self):
        from repro.flowchart.parser import parse_program
        from repro.minsky.fcompile import Discipline, compile_to_fenton
        from repro.minsky.fenton import fenton_mechanism

        program = parse_program(
            "program p(x1, x2) { if x2 == 0 { y := x1 } else { y := 0 } }")
        verdicts = {}
        for discipline in Discipline:
            machine, registers = compile_to_fenton(program,
                                                   discipline=discipline)
            mechanism = fenton_mechanism(
                machine, GRID2, priv_registers=[registers["x1"]],
                check_output_mark=True)
            verdicts[discipline] = check_soundness(mechanism,
                                                   allow(2, arity=2)).sound
        assert verdicts[Discipline.TAINT]
        assert not verdicts[Discipline.JOIN]
        assert verdicts[Discipline.PREMARK]


class TestE27ObservableLadder:
    """Section 6's page-fault remark: the strict observable ladder."""

    def test_ladder(self):
        from repro.core.observability import with_extras
        from repro.flowchart.library import fault_channel_program

        flowchart = fault_channel_program()
        domain = ProductDomain.integer_grid(0, 3, 1)
        policy = allow_none(1)
        value_q = as_program(flowchart, domain)
        timed_q = as_program(flowchart, domain, VALUE_AND_TIME)
        faulted_q = as_program(flowchart, domain, with_extras("faults"))
        assert is_sound(program_as_mechanism(value_q), policy)
        assert is_sound(program_as_mechanism(timed_q), policy)
        assert not is_sound(program_as_mechanism(faulted_q), policy)
