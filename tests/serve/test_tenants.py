"""Tenant budgets: ceilings, admission, and the token bucket."""

import json

import pytest

from repro.serve.schema import RequestError
from repro.serve.tenants import TenantBudget, TenantRegistry, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, now=clock)
        assert [bucket.admit() for _ in range(4)] == [True, True, True,
                                                      False]
        clock.advance(0.5)  # one token back at 2/s
        assert bucket.admit() is True
        assert bucket.admit() is False

    def test_refill_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, now=clock)
        clock.advance(60.0)
        assert [bucket.admit() for _ in range(3)] == [True, True, False]


class TestBudgetValidation:
    @pytest.mark.parametrize("spec", [
        {"fuel": 0}, {"fuel": "lots"}, {"fuel": True},
        {"value_cap": -1}, {"qps": 0}, {"qps": "fast"},
        {"burst": 1.5}, {"turbo": True},
        {"audit": "yes"}, {"audit": 1},
        {"audit_sample": -0.1}, {"audit_sample": 1.5},
        {"audit_sample": True}, {"audit_sample": "all"},
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            TenantBudget.from_dict("alice", spec)

    def test_round_trip(self):
        budget = TenantBudget.from_dict(
            "alice", {"fuel": 100, "value_cap": 8, "qps": 5})
        assert budget.to_dict() == {"fuel": 100, "value_cap": 8, "qps": 5}

    def test_audit_keys_round_trip(self):
        budget = TenantBudget.from_dict(
            "alice", {"audit": False, "audit_sample": 0.25})
        assert budget.audit is False
        assert budget.audit_sample == 0.25
        assert budget.to_dict() == {"audit": False, "audit_sample": 0.25}
        # Unset keys inherit the server's choice, not a default of
        # their own.
        assert TenantBudget.from_dict("bob", {}).audit is None


class TestRegistry:
    def registry(self, **tenants):
        return TenantRegistry.from_dict(
            {"tenants": {name: spec for name, spec in tenants.items()}})

    def test_named_tenants_close_the_world(self):
        registry = self.registry(alice={"fuel": 10})
        assert registry.budget_for("alice").fuel == 10
        with pytest.raises(RequestError) as excinfo:
            registry.budget_for("mallory")
        assert excinfo.value.status == 403
        assert excinfo.value.code == "unknown_tenant"

    def test_default_only_config_admits_anyone(self):
        registry = TenantRegistry.from_dict({"default": {"fuel": 7}})
        assert registry.budget_for("anyone").fuel == 7

    def test_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(
            {"tenants": {"alice": {"value_cap": 8}}}))
        registry = TenantRegistry.from_file(str(path))
        assert registry.budget_for("alice").value_cap == 8
        assert registry.open_admission is False

    def test_qps_admission(self):
        clock = FakeClock()
        registry = TenantRegistry.from_dict(
            {"tenants": {"alice": {"qps": 1, "burst": 1}}}, now=clock)
        registry.admit("alice")
        with pytest.raises(RequestError) as excinfo:
            registry.admit("alice")
        assert excinfo.value.status == 429
        assert excinfo.value.code == "qps_exceeded"
        clock.advance(1.0)
        registry.admit("alice")  # refilled

    def test_effective_fuel_ceiling(self):
        registry = self.registry(alice={"fuel": 10})
        budget = registry.budget_for("alice")
        assert registry.effective_fuel(budget, None, 1000) == 10
        assert registry.effective_fuel(budget, 5, 1000) == 5
        with pytest.raises(RequestError) as excinfo:
            registry.effective_fuel(budget, 11, 1000)
        assert excinfo.value.code == "budget_exceeded"

    def test_effective_value_cap_only_tightens(self):
        registry = self.registry(alice={"value_cap": 8})
        budget = registry.budget_for("alice")
        assert registry.effective_value_cap(budget, None, None) == 8
        assert registry.effective_value_cap(budget, 4, None) == 4
        with pytest.raises(RequestError):
            registry.effective_value_cap(budget, 16, None)
        # An uncapped tenant inherits the server default but may tighten.
        loose = registry.effective_value_cap(registry.default, None, 32)
        assert loose == 32
        assert registry.effective_value_cap(registry.default, 8, 32) == 8
