"""Graceful drain: /healthz flips to 503, in-flight work completes.

The drain contract: the moment stop is requested, /healthz answers 503
(``status: draining``) so load balancers route away; the listener then
stays open for ``drain_grace_s`` and requests already on the wire —
including one whose body is still being read — complete normally
before teardown proceeds.
"""

import json
import socket
import threading
import time

import pytest

from repro.serve import ServerConfig, serve_in_thread

from .test_server import request


@pytest.fixture
def server():
    handles = []

    def start(**config):
        handle = serve_in_thread(ServerConfig(port=0, **config))
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop(timeout=15.0)


class TestHealthzDrain:
    def test_healthz_flips_to_503_once_drain_begins(self, server):
        handle = server(drain_grace_s=1.5)
        status, body = request(handle.port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        handle.server.request_stop()
        status, body = request(handle.port, "GET", "/healthz")
        assert status == 503
        assert body["status"] == "draining"
        # Diagnostic fields survive the flip — probes still see them.
        assert "uptime_s" in body and "backend" in body

    def test_requests_during_grace_window_complete(self, server):
        handle = server(drain_grace_s=1.5)
        handle.server.request_stop()
        status, body = request(handle.port, "POST", "/execute",
                               {"source": "program p(x1) { y := x1 * 2 }",
                                "inputs": [21]})
        assert status == 200
        assert body["value"] == 42

    def test_inflight_request_mid_read_completes(self, server):
        # The hardest in-flight shape: the request line and half the
        # body are on the wire when drain begins; the rest arrives
        # after.  It must still get its 200.
        handle = server(drain_grace_s=1.5)
        payload = json.dumps({"source": "program p(x1) { y := x1 * 2 }",
                              "inputs": [21]}).encode("utf-8")
        with socket.create_connection(("127.0.0.1", handle.port),
                                      timeout=10.0) as sock:
            head = ("POST /execute HTTP/1.1\r\n"
                    "Host: localhost\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n")
            sock.sendall(head.encode("latin-1") + payload[:5])
            handle.server.request_stop()
            time.sleep(0.2)  # drain is now underway, request mid-read
            sock.sendall(payload[5:])
            response = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                response += chunk
        assert b"200 OK" in response
        assert b'"value": 42' in response

    def test_stop_is_idempotent_and_terminates(self, server):
        handle = server(drain_grace_s=0.0)
        handle.server.request_stop()
        handle.server.request_stop()
        handle.thread.join(timeout=10.0)
        assert not handle.thread.is_alive()
