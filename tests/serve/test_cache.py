"""The serve cache plane: fingerprint interning correctness.

The high-severity PR8 review finding: fingerprints were memoized in a
dict keyed by ``id(flowchart)``.  Once an instance fell out of the
flowchart LRU and was freed, CPython recycles its ``id`` for a new
``Flowchart``, so the memo paired a *different* program with the dead
one's fingerprint — and that fingerprint keys the shared response
cache, i.e. one tenant's cached results could answer another tenant's
program.  The memo now lives on the instance itself and dies with it.
"""

from repro.flowchart.parser import parse_program
from repro.serve.cache import ServeCache, flowchart_fingerprint


def build(i: int):
    return parse_program(
        f"program p{i}(x1) {{ y := x1 + {i} }}").compile()


class TestInternFlowchart:
    def test_fingerprint_correct_under_id_reuse(self):
        """Freeing each flowchart right after interning makes CPython
        hand its id to the next one — the exact recycling that made the
        id-keyed memo serve stale fingerprints."""
        cache = ServeCache()
        for i in range(600):
            flowchart = build(i)
            _, fingerprint = cache.intern_flowchart(flowchart)
            assert fingerprint == flowchart_fingerprint(flowchart), i
            del flowchart

    def test_semantic_resubmission_reuses_first_instance(self):
        cache = ServeCache()
        first, fp_first = cache.intern_flowchart(build(7))
        second, fp_second = cache.intern_flowchart(build(7))
        assert second is first
        assert fp_second == fp_first

    def test_memo_lives_on_the_instance(self):
        cache = ServeCache()
        flowchart = build(3)
        _, fingerprint = cache.intern_flowchart(flowchart)
        assert flowchart._serve_fingerprint == fingerprint
