"""Serve-path auditing: per-tenant opt-in, sampling, labeled metrics.

Every served enforcement decision — including cache hits, which *are*
decisions — lands in the hash-chained ledger unless the tenant opted
out; ``/metrics`` grows per-tenant decision counters and per-endpoint
latency histograms in proper Prometheus label syntax.
"""

import http.client
import json

import pytest

from repro.obs.audit import load_ledger, verify_ledger
from repro.serve import ServerConfig, TenantRegistry, serve_in_thread


def request(port, method, path, payload=None, timeout=60.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"}
                     if body else {})
        response = conn.getresponse()
        raw = response.read()
        if response.getheader("Content-Type", "").startswith(
                "application/json"):
            return response.status, json.loads(raw)
        return response.status, raw.decode("utf-8")
    finally:
        conn.close()


@pytest.fixture
def server():
    handles = []

    def start(**config):
        handle = serve_in_thread(ServerConfig(port=0, **config))
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()


def tenant_registry():
    return TenantRegistry.from_dict({
        "default": {},
        "tenants": {
            "alice": {},
            "bob": {"audit": False},
            "carol": {"audit_sample": 0.0},
        },
        "open_admission": True,
    })


class TestServeAudit:
    def test_decisions_land_in_a_verifiable_ledger(self, server, tmp_path):
        ledger_path = str(tmp_path / "audit.jsonl")
        handle = server(audit_path=ledger_path)
        for inputs in ([1], [2], [3]):
            status, _ = request(handle.port, "POST", "/execute",
                                {"library": "parity", "inputs": inputs})
            assert status == 200
        handle.stop()
        records = load_ledger(ledger_path)
        assert len(records) == 3
        assert all(record["endpoint"] == "/execute" for record in records)
        assert all(record["decision"] == "accept" for record in records)
        assert all("budget" in record and "ts" in record
                   for record in records)
        result = verify_ledger(ledger_path)
        assert result.ok and result.sealed

    def test_notices_are_ledgered_with_their_kind(self, server, tmp_path):
        ledger_path = str(tmp_path / "audit.jsonl")
        handle = server(audit_path=ledger_path)
        status, body = request(handle.port, "POST", "/execute",
                               {"library": "gcd", "inputs": [12, 18],
                                "fuel": 2})
        assert status == 200 and body["notice"] == "Λ!fuel[2]"
        handle.stop()
        records = load_ledger(ledger_path)
        assert records[-1]["decision"] == "notice"
        assert records[-1]["kind"] == "fuel"
        assert records[-1]["notice"] == "Λ!fuel[2]"

    def test_cache_hits_are_decisions_too(self, server, tmp_path):
        ledger_path = str(tmp_path / "audit.jsonl")
        handle = server(audit_path=ledger_path)
        for _ in range(2):  # second request is a cache hit
            status, _ = request(handle.port, "POST", "/execute",
                                {"library": "parity", "inputs": [5]})
            assert status == 200
        handle.stop()
        assert len(load_ledger(ledger_path)) == 2

    def test_tenant_opt_out_and_zero_sampling(self, server, tmp_path):
        ledger_path = str(tmp_path / "audit.jsonl")
        handle = server(audit_path=ledger_path, tenants=tenant_registry())
        for tenant in ("alice", "bob", "carol"):
            for inputs in ([1], [2]):
                status, _ = request(
                    handle.port, "POST", "/execute",
                    {"tenant": tenant, "library": "parity",
                     "inputs": inputs})
                assert status == 200
        handle.stop()
        tenants_seen = {record.get("tenant")
                        for record in load_ledger(ledger_path)}
        assert tenants_seen == {"alice"}
        assert verify_ledger(ledger_path).ok

    def test_no_ledger_without_audit_path(self, server, tmp_path):
        handle = server()
        status, _ = request(handle.port, "POST", "/execute",
                            {"library": "parity", "inputs": [1]})
        assert status == 200
        assert not list(tmp_path.iterdir())

    def test_metrics_expose_labeled_series(self, server, tmp_path):
        ledger_path = str(tmp_path / "audit.jsonl")
        handle = server(audit_path=ledger_path, tenants=tenant_registry())
        status, _ = request(handle.port, "POST", "/execute",
                            {"tenant": "alice", "library": "parity",
                             "inputs": [1]})
        assert status == 200
        status, body = request(handle.port, "GET", "/metrics")
        assert status == 200
        lines = body.splitlines()
        assert any("repro_serve_decisions{" in line
                   and 'tenant="alice"' in line
                   and 'decision="accept"' in line for line in lines)
        assert any("repro_serve_latency_s_bucket{" in line
                   and 'endpoint="/execute"' in line
                   and 'le="+Inf"' in line for line in lines)
        assert any(line.startswith("repro_audit_records ")
                   for line in lines)
        # Unknown paths collapse to the "other" endpoint label, so an
        # attacker probing random URLs cannot explode series cardinality.
        request(handle.port, "GET", "/no-such-endpoint")
        status, body = request(handle.port, "GET", "/metrics")
        assert 'endpoint="/no-such-endpoint"' not in body
        assert 'endpoint="other"' in body

    def test_staged_decisions_drain_on_clean_stop(self, server, tmp_path):
        # Requests stage audit records in memory; the gauge counts
        # them immediately, and a clean stop drains every one of them
        # to the sealed ledger.
        ledger_path = str(tmp_path / "audit.jsonl")
        handle = server(audit_path=ledger_path)
        for value in range(3):
            request(handle.port, "POST", "/execute",
                    {"library": "parity", "inputs": [value]})
        _, body = request(handle.port, "GET", "/metrics")
        gauge = [line for line in body.splitlines()
                 if line.startswith("repro_audit_records ")]
        assert gauge and float(gauge[0].split()[1]) == 3.0
        handle.stop()
        records = load_ledger(ledger_path)
        assert len(records) == 3
        result = verify_ledger(ledger_path)
        assert result.ok and result.sealed

    def test_ledger_survives_restart_and_keeps_chaining(self, server,
                                                        tmp_path):
        ledger_path = str(tmp_path / "audit.jsonl")
        handle = server(audit_path=ledger_path)
        request(handle.port, "POST", "/execute",
                {"library": "parity", "inputs": [1]})
        handle.stop()
        handle = server(audit_path=ledger_path)
        request(handle.port, "POST", "/execute",
                {"library": "parity", "inputs": [2]})
        handle.stop()
        result = verify_ledger(ledger_path)
        assert result.ok and result.records == 2
