"""The served endpoints: CLI bit-identity, tenancy, and the soak test.

The contract under test is the ISSUE 8 acceptance list:

- /execute, /sweep, /lint, /explain answer **bit-identically** to
  their CLI twins — same values, same step counts, same ``Λ!…``
  notice strings, same JSON rows;
- two tenants with different fuel/value-cap budgets in one process
  each observe *their own* budget (the env-leak regression);
- N concurrent clients → zero dropped requests and a single-rooted
  span tree.
"""

import http.client
import json
import socket
import threading

import pytest

from repro import obs
from repro.serve import ServerConfig, TenantRegistry, serve_in_thread


def request(port, method, path, payload=None, timeout=60.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"}
                     if body else {})
        response = conn.getresponse()
        raw = response.read()
        if response.getheader("Content-Type", "").startswith(
                "application/json"):
            return response.status, json.loads(raw)
        return response.status, raw.decode("utf-8")
    finally:
        conn.close()


@pytest.fixture
def server():
    handles = []

    def start(**config):
        handle = serve_in_thread(ServerConfig(port=0, **config))
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()


def cli_stdout(capsys, argv):
    from repro.cli import main

    code = main(argv)
    return code, capsys.readouterr().out


class TestCliBitIdentity:
    def test_execute_matches_repro_run(self, server, capsys):
        handle = server()
        for library, inputs in [("mixer", [2, 3]), ("max", [7, 4]),
                                ("gcd", [12, 18]), ("parity", [9])]:
            status, body = request(handle.port, "POST", "/execute",
                                   {"library": library, "inputs": inputs})
            assert status == 200
            _, out = cli_stdout(capsys, ["run", "--library", library]
                                + [str(v) for v in inputs])
            assert out == (f"value: {body['value']}\n"
                           f"steps: {body['steps']}\n")

    def test_execute_notices_match_cli_error_text(self, server, capsys):
        """Λ!fuel[N] / Λ!cap[C] strings are the CLI's, verbatim."""
        handle = server()
        status, body = request(handle.port, "POST", "/execute",
                               {"library": "gcd", "inputs": [12, 18],
                                "fuel": 2})
        assert status == 200
        assert body["value"] is None
        assert body["notice"] == "Λ!fuel[2]"
        status, body = request(handle.port, "POST", "/execute",
                               {"library": "max", "inputs": [5000, 1],
                                "value_cap": 6})
        assert status == 200
        assert body["notice"] == "Λ!cap[6]"

    def test_execute_backends_agree(self, server):
        """The batch default and every scalar tier serve one answer."""
        handle = server()
        outcomes = set()
        for backend in (None, "compiled", "interpreted", "batch"):
            payload = {"library": "gcd", "inputs": [12, 18]}
            if backend:
                payload["backend"] = backend
            status, body = request(handle.port, "POST", "/execute",
                                   payload)
            assert status == 200
            outcomes.add((body["value"], body["steps"], body["notice"]))
        assert len(outcomes) == 1

    def test_sweep_rows_match_results_json(self, server, capsys,
                                           tmp_path):
        handle = server()
        status, body = request(
            handle.port, "POST", "/sweep",
            {"programs": ["max", "parity"], "mechanism": "surveillance",
             "low": 0, "high": 1, "backend": "compiled",
             "chunk_size": 64, "executor": "serial"})
        assert status == 200
        results = tmp_path / "rows.json"
        code, _ = cli_stdout(capsys, [
            "sweep", "--programs", "max,parity",
            "--mechanism", "surveillance", "--low", "0", "--high", "1",
            "--backend", "compiled", "--chunk-size", "64",
            "--executor", "serial", "--results-json", str(results)])
        assert code == 0
        assert body["rows"] == json.loads(results.read_text())
        assert body["unsound"] == 0

    def test_lint_matches_cli_json(self, server, capsys):
        handle = server()
        status, body = request(handle.port, "POST", "/lint",
                               {"library": "example7",
                                "policy": "allow(2)"})
        assert status == 200
        code, out = cli_stdout(capsys, ["lint", "--library", "example7",
                                        "--policy", "allow(2)", "--json"])
        expected = json.loads(out)
        assert code == expected["exit_code"] == body["exit_code"]
        assert self._strip_timing(body) == self._strip_timing(expected)

    @staticmethod
    def _strip_timing(payload):
        """Drop the per-pass wall-clock fields — the only part of a
        lint report that legitimately differs between two runs."""
        payload = json.loads(json.dumps(payload))
        for report in payload["reports"]:
            report.pop("pass_seconds", None)
            for stats in report.get("pass_stats", {}).values():
                stats.pop("seconds", None)
        return payload

    def test_explain_matches_cli_json(self, server, capsys):
        handle = server()
        for payload, argv in [
            ({"library": "mixer", "policy": "allow(1)",
              "inputs": [2, 3]},
             ["explain", "--library", "mixer", "--policy", "allow(1)",
              "--json", "2", "3"]),
            ({"library": "example7", "policy": "allow(2)",
              "static": True},
             ["explain", "--library", "example7", "--policy", "allow(2)",
              "--static", "--json"]),
        ]:
            status, body = request(handle.port, "POST", "/explain",
                                   payload)
            assert status == 200
            code, out = cli_stdout(capsys, argv)
            assert body["explanation"] == json.loads(out)
            assert body["violated"] == (code == 1)


class TestHttpSurface:
    def test_healthz_and_unknowns(self, server):
        handle = server()
        status, body = request(handle.port, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        status, body = request(handle.port, "GET", "/nope")
        assert status == 404
        status, body = request(handle.port, "GET", "/execute")
        assert status == 405
        status, body = request(handle.port, "POST", "/healthz", {})
        assert status == 405

    def test_bad_json_and_bad_requests_never_500(self, server):
        handle = server()
        conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                          timeout=30)
        try:
            conn.request("POST", "/execute", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["error"]["code"] == "bad_json"
        finally:
            conn.close()
        for payload in ({}, {"library": "nope", "inputs": []},
                        {"library": "max", "inputs": ["x"]},
                        {"library": "max", "inputs": [1, 2],
                         "backend": "gpu"}):
            status, body = request(handle.port, "POST", "/execute",
                                   payload)
            assert 400 <= status < 500, (payload, status, body)
            assert "error" in body

    def test_malformed_content_length_is_400(self, server):
        """A bogus Content-Length must answer the structured 400, not
        kill the connection with an uncaught ValueError."""
        handle = server()
        for bad in (b"abc", b"-5"):
            with socket.create_connection(("127.0.0.1", handle.port),
                                          timeout=30) as sock:
                sock.sendall(b"POST /execute HTTP/1.1\r\n"
                             b"Host: localhost\r\n"
                             b"Content-Length: " + bad + b"\r\n\r\n")
                sock.settimeout(30)
                data = b""
                while b"\r\n\r\n" not in data or not data.split(
                        b"\r\n\r\n", 1)[1]:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
            assert data.startswith(b"HTTP/1.1 400"), (bad, data[:80])
            assert b"bad_request" in data

    def test_oversized_body_is_413(self, server):
        handle = server(max_body=128)
        status, body = request(
            handle.port, "POST", "/execute",
            {"library": "max", "inputs": [1, 2],
             "padding": "x" * 4096})
        assert status == 413
        assert body["error"]["code"] == "payload_too_large"

    def test_metrics_exposition(self, server):
        handle = server()
        request(handle.port, "POST", "/execute",
                {"library": "max", "inputs": [1, 2]})
        status, text = request(handle.port, "GET", "/metrics")
        assert status == 200
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_lanes_executed" in text
        assert "repro_serve_cache_responses_size" in text

    def test_response_cache_shares_across_requests(self, server):
        handle = server()
        first = request(handle.port, "POST", "/execute",
                        {"library": "max", "inputs": [3, 4]})
        second = request(handle.port, "POST", "/execute",
                         {"library": "max", "inputs": [3, 4]})
        assert first == second
        _, text = request(handle.port, "GET", "/metrics")
        hits = [line for line in text.splitlines()
                if line.startswith("repro_serve_execute_cache_hits")]
        assert hits and float(hits[0].split()[-1]) >= 1


class TestTenancy:
    TENANTS = {"tenants": {
        "alice": {"value_cap": 6},
        "bob": {"value_cap": 12},
        "frugal": {"fuel": 2},
        "chatty": {"qps": 1, "burst": 1},
        "carol": {},
        "dave": {},
    }}

    def start(self, server):
        return server(tenants=TenantRegistry.from_dict(self.TENANTS))

    def test_two_tenants_see_their_own_cap_notices(self, server):
        """The PR8 env-leak regression: one process, two tenants,
        different Λ!cap[C] — impossible when the cap rides a process
        global."""
        handle = self.start(server)
        payload = {"library": "max", "inputs": [5000, 1]}
        _, alice = request(handle.port, "POST", "/execute",
                           dict(payload, tenant="alice"))
        _, bob = request(handle.port, "POST", "/execute",
                         dict(payload, tenant="bob"))
        assert alice["notice"] == "Λ!cap[6]"
        assert bob["notice"] == "Λ!cap[12]"

    def test_cache_hit_stamps_the_requesters_tenant(self, server):
        """Regression: the shared /execute cache stored the first
        requester's tenant name in the payload, so an identical-budget
        tenant got a hit labeled — and leaking — the other's name."""
        handle = self.start(server)
        payload = {"library": "max", "inputs": [8, 9]}
        _, first = request(handle.port, "POST", "/execute",
                           dict(payload, tenant="carol"))
        _, second = request(handle.port, "POST", "/execute",
                            dict(payload, tenant="dave"))
        assert first["tenant"] == "carol"
        assert second["tenant"] == "dave"
        # Same budgets, same program: everything but the stamp shared.
        assert ({k: v for k, v in first.items() if k != "tenant"}
                == {k: v for k, v in second.items() if k != "tenant"})

    def test_fuel_ceiling_and_notice(self, server):
        handle = self.start(server)
        status, body = request(handle.port, "POST", "/execute",
                               {"library": "gcd", "inputs": [12, 18],
                                "tenant": "frugal"})
        assert status == 200
        assert body["notice"] == "Λ!fuel[2]"
        status, body = request(handle.port, "POST", "/execute",
                               {"library": "gcd", "inputs": [12, 18],
                                "tenant": "frugal", "fuel": 50})
        assert status == 403
        assert body["error"]["code"] == "budget_exceeded"

    def test_unknown_tenant_rejected_in_closed_world(self, server):
        handle = self.start(server)
        status, body = request(handle.port, "POST", "/execute",
                               {"library": "max", "inputs": [1, 2],
                                "tenant": "mallory"})
        assert status == 403
        assert body["error"]["code"] == "unknown_tenant"

    def test_qps_limit_is_429(self, server):
        handle = self.start(server)
        payload = {"library": "max", "inputs": [1, 2], "tenant": "chatty"}
        statuses = [request(handle.port, "POST", "/execute", payload)[0]
                    for _ in range(3)]
        assert statuses[0] == 200
        assert 429 in statuses[1:]


class TestSoak:
    CLIENTS = 8
    REQUESTS = 20

    def test_concurrent_clients_zero_drops_single_rooted_spans(
            self, server, tmp_path):
        trace = tmp_path / "serve-trace.jsonl"
        sink = obs.JsonlSink(str(trace))
        obs.enable(metrics=True, sinks=[sink], reset=True)
        try:
            handle = server()
            failures = []

            def client(seed: int) -> None:
                conn = http.client.HTTPConnection(
                    "127.0.0.1", handle.port, timeout=60)
                try:
                    for i in range(self.REQUESTS):
                        a, b = (seed * 31 + i) % 50, (i * 7 + 3) % 50
                        conn.request(
                            "POST", "/execute",
                            body=json.dumps({"library": "max",
                                             "inputs": [a, b]}),
                            headers={"Content-Type":
                                     "application/json"})
                        response = conn.getresponse()
                        body = json.loads(response.read())
                        if response.status != 200:
                            failures.append((seed, i, response.status))
                        elif body["value"] != max(a, b):
                            failures.append((seed, i, body))
                except Exception as error:  # noqa: BLE001 - recorded
                    failures.append((seed, "exception", repr(error)))
                finally:
                    conn.close()

            threads = [threading.Thread(target=client, args=(seed,))
                       for seed in range(self.CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
            assert not failures, failures[:5]
            # A sweep under the same roof, so the span tree includes a
            # request > sweep > chunk chain, not just execute batches.
            status, body = request(
                handle.port, "POST", "/sweep",
                {"programs": ["parity"], "low": 0, "high": 1,
                 "executor": "serial"})
            assert status == 200
            handle.stop()
        finally:
            obs.disable()
            sink.close()

        events = obs.load_trace(str(trace))
        forest = obs.build_span_tree(events)
        assert forest.single_rooted, (
            f"{len(forest.roots)} roots: {forest.roots[:5]}")
        assert not forest.problems, forest.problems[:5]
        ops = {events_by_id["op"] for events_by_id in events
               if events_by_id.get("kind") == "span_start"}
        assert {"serve", "request", "batch"} <= ops
