"""Request validation: every malformed payload is a structured 4xx.

The parsers are the server's blast door — anything that gets past them
runs on worker threads, so a payload that raises anything *other* than
:class:`RequestError` here would become a served 500.  The corpus test
sweeps a pile of malformed payloads through every parser and asserts
the only way out is a RequestError with a stable code.
"""

import pytest

from repro.serve.schema import (MAX_GRID_SPAN, RequestError, parse_execute,
                                parse_explain, parse_lint, parse_sweep)

PARSERS = (parse_execute, parse_sweep, parse_lint, parse_explain)

#: Payloads that must be rejected by *every* parser.
UNIVERSALLY_BAD = (
    None,
    42,
    "a string",
    ["a", "list"],
    {},
    {"library": "max", "source": "program p(x1) { y := x1 }"},
    {"library": 7},
    {"library": "no-such-program"},
    {"source": "progam typo(x1) {"},
    {"source": ["not", "text"]},
)


class TestUniversalCorpus:
    @pytest.mark.parametrize("parser", PARSERS,
                             ids=lambda p: p.__name__)
    @pytest.mark.parametrize("payload", UNIVERSALLY_BAD,
                             ids=lambda p: repr(p)[:40])
    def test_malformed_payload_is_a_request_error(self, parser, payload):
        with pytest.raises(RequestError) as excinfo:
            parser(payload)
        error = excinfo.value
        assert error.status == 400
        assert error.code
        body = error.to_dict()
        assert body["error"]["code"] == error.code
        assert body["error"]["message"]


class TestExecute:
    def test_happy_path(self):
        request = parse_execute({"library": "max", "inputs": [1, 2],
                                 "fuel": 50, "value_cap": 8,
                                 "backend": "interp"})
        assert request.inputs == (1, 2)
        assert request.fuel == 50
        assert request.value_cap == 8
        assert request.backend == "interpreted"  # alias resolved
        assert request.tenant == "default"

    @pytest.mark.parametrize("payload,code", [
        ({"library": "max"}, "bad_inputs"),
        ({"library": "max", "inputs": "1,2"}, "bad_inputs"),
        ({"library": "max", "inputs": [1, True]}, "bad_inputs"),
        ({"library": "max", "inputs": [1]}, "bad_inputs"),  # arity 2
        ({"library": "max", "inputs": [1, 2], "fuel": 0}, "bad_fuel"),
        ({"library": "max", "inputs": [1, 2], "fuel": "9"}, "bad_fuel"),
        ({"library": "max", "inputs": [1, 2], "value_cap": -3},
         "bad_value_cap"),
        ({"library": "max", "inputs": [1, 2], "backend": "gpu"},
         "bad_backend"),
        ({"library": "max", "inputs": [1, 2], "tenant": ""}, "bad_tenant"),
    ])
    def test_rejections_carry_stable_codes(self, payload, code):
        with pytest.raises(RequestError) as excinfo:
            parse_execute(payload)
        assert excinfo.value.code == code

    def test_inline_source(self):
        request = parse_execute(
            {"source": "program p(x1) { y := x1 * 2 }", "inputs": [21]})
        assert request.flowchart.arity == 1


class TestSweep:
    def test_happy_path(self):
        request = parse_sweep({"programs": ["max", "parity"],
                               "mechanism": "program", "low": -1,
                               "high": 1, "lane_engine": "python"})
        assert request.programs == ["max", "parity"]
        assert request.mechanism == "program"
        assert request.lane_engine == "python"

    @pytest.mark.parametrize("payload,code", [
        ({"programs": []}, "bad_programs"),
        ({"programs": "max"}, "bad_programs"),
        ({"programs": ["max", 3]}, "bad_programs"),
        ({"programs": ["max", "nope"]}, "unknown_program"),
        ({"programs": ["max"], "mechanism": "oracle"}, "bad_mechanism"),
        ({"programs": ["max"], "low": 3, "high": 1}, "bad_grid"),
        ({"programs": ["max"], "low": 0, "high": MAX_GRID_SPAN + 1},
         "bad_grid"),
        ({"programs": ["max"], "executor": "fork"}, "bad_executor"),
        ({"programs": ["max"], "jobs": 0}, "bad_jobs"),
        ({"programs": ["max"], "lane_engine": "simd"}, "bad_lane_engine"),
    ])
    def test_rejections_carry_stable_codes(self, payload, code):
        with pytest.raises(RequestError) as excinfo:
            parse_sweep(payload)
        assert excinfo.value.code == code

    def test_cache_key_excludes_schedule(self):
        """Rows are schedule-independent, so executor/jobs must not
        fragment the shared response cache."""
        serial = parse_sweep({"programs": ["max"], "executor": "serial",
                              "jobs": 1})
        threaded = parse_sweep({"programs": ["max"], "executor": "thread",
                                "jobs": 8})
        assert (serial.cache_key(100, None, "batch", "auto")
                == threaded.cache_key(100, None, "batch", "auto"))


class TestLintAndExplain:
    def test_lint_validates_policy_eagerly(self):
        with pytest.raises(RequestError) as excinfo:
            parse_lint({"library": "max", "policy": "allow(9)"})
        assert excinfo.value.code == "bad_policy"

    def test_lint_policy_is_optional(self):
        request = parse_lint({"library": "max"})
        assert request.policy_text is None

    @pytest.mark.parametrize("payload,code", [
        ({"library": "max"}, "bad_policy"),  # explain requires a policy
        ({"library": "max", "policy": "allow(1)"}, "bad_inputs"),
        ({"library": "max", "policy": "allow(1)", "inputs": [1, 2],
          "static": True}, "bad_inputs"),
        ({"library": "max", "policy": "allow(1)", "inputs": [1],
          "static": "yes"}, "bad_static"),
        ({"library": "max", "policy": "allow(1)", "inputs": [1, 2],
          "timed": 1}, "bad_timed"),
    ])
    def test_explain_rejections(self, payload, code):
        with pytest.raises(RequestError) as excinfo:
            parse_explain(payload)
        assert excinfo.value.code == code

    def test_explain_static_needs_no_inputs(self):
        request = parse_explain({"library": "max", "policy": "allow(1)",
                                 "static": True})
        assert request.inputs is None
