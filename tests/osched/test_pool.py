"""Unit tests for repro.osched.pool."""

import pytest

from repro.core.errors import DomainError
from repro.osched import PagePool


class TestSharedPool:
    def test_acquire_up_to_capacity(self):
        pool = PagePool(4)
        assert pool.acquire("a", 3)
        assert pool.acquire("b", 1)
        assert not pool.acquire("b", 1)  # full
        assert pool.total_held == 4

    def test_all_or_nothing(self):
        pool = PagePool(4)
        assert pool.acquire("a", 3)
        assert not pool.acquire("b", 2)
        assert pool.held_by("b") == 0

    def test_release_partial_and_all(self):
        pool = PagePool(4)
        pool.acquire("a", 4)
        assert pool.release("a", 1) == 1
        assert pool.held_by("a") == 3
        assert pool.release("a") == 3
        assert pool.held_by("a") == 0

    def test_release_more_than_held_is_clamped(self):
        pool = PagePool(4)
        pool.acquire("a", 2)
        assert pool.release("a", 10) == 2

    def test_cross_process_interference(self):
        """The covert channel in one assertion: b's success depends on
        a's behaviour."""
        pool = PagePool(4)
        pool.acquire("a", 4)
        assert not pool.acquire("b", 1)
        pool.release("a")
        assert pool.acquire("b", 1)


class TestPartitionedPool:
    def test_quota_enforced(self):
        pool = PagePool(8, quotas={"a": 3, "b": 2})
        assert pool.acquire("a", 3)
        assert not pool.acquire("a", 1)
        assert pool.acquire("b", 2)

    def test_no_cross_process_interference(self):
        """Quotas close the channel: a cannot affect b's allocations."""
        pool = PagePool(8, quotas={"a": 4, "b": 2})
        pool.acquire("a", 4)
        assert pool.acquire("b", 2)

    def test_unknown_process_has_zero_quota(self):
        pool = PagePool(8, quotas={"a": 4})
        assert not pool.acquire("stranger", 1)

    def test_overcommitted_quotas_rejected(self):
        with pytest.raises(DomainError):
            PagePool(4, quotas={"a": 3, "b": 2})


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(DomainError):
            PagePool(0)

    def test_negative_acquire(self):
        with pytest.raises(DomainError):
            PagePool(2).acquire("a", -1)
