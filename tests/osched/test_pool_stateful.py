"""Stateful property testing of the page pool (hypothesis state machine).

The pool is the security-critical substrate of the E22 channel; these
machines hammer it with arbitrary acquire/release interleavings and
check the resource invariants after every step:

- holdings are non-negative and total ≤ capacity (shared pool);
- per-process holdings ≤ quota, and a process's allocations are
  unaffected by other processes' behaviour (partitioned pool — the
  *noninterference invariant* the quota mitigation rests on).
"""

import hypothesis.strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant, rule)

from repro.osched import PagePool

PROCESSES = ("a", "b", "c")


class SharedPoolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.pool = PagePool(capacity=6)
        self.model = {name: 0 for name in PROCESSES}

    @rule(process=st.sampled_from(PROCESSES),
          count=st.integers(min_value=0, max_value=7))
    def acquire(self, process, count):
        granted = self.pool.acquire(process, count)
        if granted:
            self.model[process] += count
        # All-or-nothing: a refused acquire changes nothing.
        assert self.pool.held_by(process) == self.model[process]

    @rule(process=st.sampled_from(PROCESSES),
          count=st.integers(min_value=0, max_value=7))
    def release(self, process, count):
        released = self.pool.release(process, count)
        assert released == min(count, self.model[process])
        self.model[process] -= released

    @rule(process=st.sampled_from(PROCESSES))
    def release_all(self, process):
        released = self.pool.release(process)
        assert released == self.model[process]
        self.model[process] = 0

    @invariant()
    def capacity_respected(self):
        assert self.pool.total_held <= self.pool.capacity
        assert self.pool.total_held == sum(self.model.values())
        for name in PROCESSES:
            assert self.pool.held_by(name) >= 0


class PartitionedPoolMachine(RuleBasedStateMachine):
    QUOTAS = {"a": 2, "b": 3}

    def __init__(self):
        super().__init__()
        self.pool = PagePool(capacity=6, quotas=dict(self.QUOTAS))
        self.model = {name: 0 for name in self.QUOTAS}

    @rule(process=st.sampled_from(("a", "b")),
          count=st.integers(min_value=0, max_value=4))
    def acquire(self, process, count):
        granted = self.pool.acquire(process, count)
        expected = self.model[process] + count <= self.QUOTAS[process]
        # Noninterference: the verdict depends only on the caller's own
        # holdings and quota — never on the other process.
        assert granted == expected
        if granted:
            self.model[process] += count

    @rule(process=st.sampled_from(("a", "b")),
          count=st.integers(min_value=0, max_value=4))
    def release(self, process, count):
        released = self.pool.release(process, count)
        self.model[process] -= released

    @invariant()
    def quotas_respected(self):
        for name, quota in self.QUOTAS.items():
            assert 0 <= self.pool.held_by(name) <= quota


TestSharedPool = SharedPoolMachine.TestCase
TestPartitionedPool = PartitionedPoolMachine.TestCase
