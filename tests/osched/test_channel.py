"""Unit tests for repro.osched — scheduler and the resource channel."""

import pytest

from repro.core import allow_none, check_soundness, program_as_mechanism
from repro.core.errors import DomainError
from repro.osched import (ComputeProcess, PagePool, System, bits_to_secret,
                          channel_report, decode, run_transmission,
                          secret_to_bits, system_program)


class TestScheduler:
    def test_round_robin_order_is_fair(self):
        pool = PagePool(4)
        first = ComputeProcess("a")
        second = ComputeProcess("b")
        System(pool, [first, second]).run(5)
        assert first.work_done == second.work_done == 5

    def test_compute_process_holds_working_set(self):
        pool = PagePool(4)
        worker = ComputeProcess("w", working_set=2)
        System(pool, [worker]).run(3)
        assert pool.held_by("w") == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(DomainError):
            System(PagePool(2), [ComputeProcess("a"), ComputeProcess("a")])

    def test_negative_rounds_rejected(self):
        with pytest.raises(DomainError):
            System(PagePool(2), [ComputeProcess("a")]).run(-1)


class TestBitCodec:
    def test_round_trip(self):
        for secret in range(16):
            assert bits_to_secret(secret_to_bits(secret, 4)) == secret

    def test_width_enforced(self):
        with pytest.raises(DomainError):
            secret_to_bits(16, 4)
        with pytest.raises(DomainError):
            secret_to_bits(-1, 4)

    def test_big_endian(self):
        assert secret_to_bits(0b1010, 4) == (1, 0, 1, 0)


class TestSharedChannel:
    def test_exact_recovery_of_every_secret(self):
        for secret in range(16):
            observations = run_transmission(secret, 4, partitioned=False)
            assert decode(observations) == secret

    def test_system_program_unsound_for_allow_none(self):
        q = system_program(width=3, partitioned=False)
        assert not check_soundness(program_as_mechanism(q),
                                   allow_none(1)).sound

    def test_channel_survives_background_noise(self):
        for secret in range(8):
            observations = run_transmission(secret, 3, partitioned=False,
                                            noise_working_set=2)
            assert decode(observations) == secret

    def test_deterministic(self):
        assert (run_transmission(5, 4, False)
                == run_transmission(5, 4, False))


class TestPartitionedChannel:
    def test_observations_independent_of_secret(self):
        observations = {run_transmission(secret, 4, partitioned=True)
                        for secret in range(16)}
        assert len(observations) == 1

    def test_system_program_sound_for_allow_none(self):
        q = system_program(width=3, partitioned=True)
        assert check_soundness(program_as_mechanism(q),
                               allow_none(1)).sound


class TestChannelReport:
    def test_report_shape_and_claims(self):
        rows = channel_report(width=3)
        by_discipline = {row["discipline"]: row for row in rows}
        shared = by_discipline["shared"]
        quota = by_discipline["partitioned"]
        assert not shared["sound_for_allow_none"]
        assert shared["leaked_bits"] == 3.0
        assert shared["exact_recovery"]
        assert quota["sound_for_allow_none"]
        assert quota["leaked_bits"] == 0.0
