"""Unit tests for repro.core.lattice (the lattice remark of Section 2)."""

import pytest

from repro.core import (ProductDomain, Program, SoundMechanismLattice,
                        allow, is_sound, maximal_mechanism,
                        null_mechanism, program_as_mechanism)

GRID = ProductDomain.integer_grid(0, 2, 2)


def make_instance():
    # Q constant on classes x1 in {0, 2} (value fixed), varying on x1=1.
    q = Program(lambda a, b: b if a == 1 else a, GRID, name="mixed")
    policy = allow(1, arity=2)
    return q, policy, SoundMechanismLattice(q, policy)


class TestStructure:
    def test_good_classes_identified(self):
        _, _, lattice = make_instance()
        assert set(lattice.good_class_keys) == {(0,), (2,)}

    def test_size_is_power_of_two(self):
        _, _, lattice = make_instance()
        assert len(lattice) == 4
        assert len(lattice.elements()) == 4

    def test_bottom_and_top(self):
        _, _, lattice = make_instance()
        assert lattice.bottom == frozenset()
        assert lattice.top == frozenset({(0,), (2,)})


class TestLatticeLaws:
    def test_join_meet_closure_and_laws(self):
        _, _, lattice = make_instance()
        elements = lattice.elements()
        for a in elements:
            for b in elements:
                join = lattice.join(a, b)
                meet = lattice.meet(a, b)
                assert join in elements and meet in elements
                # Absorption laws characterise a lattice.
                assert lattice.join(a, lattice.meet(a, b)) == a
                assert lattice.meet(a, lattice.join(a, b)) == a

    def test_order_agrees_with_join(self):
        _, _, lattice = make_instance()
        for a in lattice.elements():
            for b in lattice.elements():
                assert lattice.leq(a, b) == (lattice.join(a, b) == b)

    def test_top_dominates_all(self):
        _, _, lattice = make_instance()
        for element in lattice.elements():
            assert lattice.leq(element, lattice.top)
            assert lattice.leq(lattice.bottom, element)


class TestRealisation:
    def test_every_element_realises_to_a_sound_mechanism(self):
        q, policy, lattice = make_instance()
        for element in lattice.elements():
            mechanism = lattice.realise(element)
            mechanism.check_contract()
            assert is_sound(mechanism, policy)

    def test_canonical_round_trip(self):
        _, _, lattice = make_instance()
        for element in lattice.elements():
            assert lattice.canonical(lattice.realise(element)) == element

    def test_top_realises_to_maximal(self):
        q, policy, lattice = make_instance()
        top = lattice.realise(lattice.top)
        maximal = maximal_mechanism(q, policy).mechanism
        assert top.acceptance_set() == maximal.acceptance_set()

    def test_bottom_realises_to_null(self):
        q, policy, lattice = make_instance()
        bottom = lattice.realise(lattice.bottom)
        assert bottom.acceptance_set() == null_mechanism(q).acceptance_set()

    def test_canonical_rejects_unsound_mechanism(self):
        q, policy, lattice = make_instance()
        with pytest.raises(ValueError):
            lattice.canonical(program_as_mechanism(q))

    def test_realise_rejects_foreign_classes(self):
        _, _, lattice = make_instance()
        with pytest.raises(ValueError):
            lattice.realise(frozenset({("nope",)}))
