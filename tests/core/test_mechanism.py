"""Unit tests for repro.core.mechanism (Section 2 definitions, Theorem 1)."""

import pytest

from repro.core import (LAMBDA, ProductDomain, Program, ProtectionMechanism,
                        ViolationNotice, is_violation, join,
                        mechanism_from_table, null_mechanism,
                        program_as_mechanism, union)
from repro.core.errors import (ArityMismatchError, MechanismContractError,
                               ProgramError)

GRID = ProductDomain.integer_grid(0, 2, 2)


def make_q():
    return Program(lambda a, b: a + b, GRID, name="add")


class TestViolationNotice:
    def test_equality_by_message(self):
        assert ViolationNotice("Λ") == ViolationNotice("Λ")
        assert ViolationNotice("a") != ViolationNotice("b")

    def test_distinct_from_plain_values(self):
        # F and E are disjoint by construction (Example 1's critique of
        # Fenton hinges on this).
        assert ViolationNotice("1") != 1
        assert not (ViolationNotice("0") == 0)

    def test_is_violation(self):
        assert is_violation(LAMBDA)
        assert not is_violation(0)
        assert not is_violation("Λ")

    def test_hashable(self):
        assert len({ViolationNotice("x"), ViolationNotice("x")}) == 1


class TestTrivialMechanisms:
    def test_program_as_mechanism_passes_everything(self):
        q = make_q()
        mechanism = program_as_mechanism(q)
        assert all(mechanism(*point) == q(*point) for point in GRID)
        assert mechanism.acceptance_set() == frozenset(GRID)
        assert mechanism.violation_rate() == 0.0

    def test_null_mechanism_rejects_everything(self):
        mechanism = null_mechanism(make_q())
        assert all(is_violation(mechanism(*point)) for point in GRID)
        assert mechanism.acceptance_set() == frozenset()
        assert mechanism.violation_rate() == 1.0

    def test_both_satisfy_the_contract(self):
        q = make_q()
        program_as_mechanism(q).check_contract()
        null_mechanism(q).check_contract()


class TestContract:
    def test_contract_violation_reports_witness(self):
        q = make_q()
        bad = ProtectionMechanism(lambda a, b: a + b + 1, q, name="M-bad")
        with pytest.raises(MechanismContractError) as info:
            bad.check_contract()
        assert info.value.witness == (0, 0)
        assert info.value.got == 1
        assert info.value.expected == 0

    def test_notices_always_satisfy_contract(self):
        q = make_q()
        sometimes = ProtectionMechanism(
            lambda a, b: q(a, b) if a == 0 else ViolationNotice("no"),
            q)
        sometimes.check_contract()

    def test_arity_enforced(self):
        mechanism = program_as_mechanism(make_q())
        with pytest.raises(ArityMismatchError):
            mechanism(1)

    def test_mechanism_requires_program_instance(self):
        with pytest.raises(ProgramError):
            ProtectionMechanism(lambda a: a, lambda a: a)


class TestTableMechanism:
    def test_lookup_and_default(self):
        q = make_q()
        mechanism = mechanism_from_table(q, {(0, 0): 0, (1, 1): 2})
        assert mechanism(0, 0) == 0
        assert mechanism(1, 1) == 2
        assert is_violation(mechanism(2, 2))

    def test_acceptance_set(self):
        q = make_q()
        mechanism = mechanism_from_table(q, {(0, 0): 0})
        assert mechanism.acceptance_set() == frozenset({(0, 0)})


class TestUnion:
    """Theorem 1: M1 ∨ M2 passes Q through wherever either does."""

    def test_union_accepts_union_of_acceptance_sets(self):
        q = make_q()
        left = mechanism_from_table(q, {p: q(*p) for p in GRID if p[0] == 0})
        right = mechanism_from_table(q, {p: q(*p) for p in GRID if p[1] == 0})
        joined = union(left, right)
        assert joined.acceptance_set() == (left.acceptance_set()
                                           | right.acceptance_set())

    def test_union_satisfies_contract(self):
        q = make_q()
        left = mechanism_from_table(q, {(0, 0): 0})
        right = mechanism_from_table(q, {(1, 1): 2})
        union(left, right).check_contract()

    def test_union_violates_only_where_both_do(self):
        q = make_q()
        left = mechanism_from_table(q, {(0, 0): 0})
        right = mechanism_from_table(q, {(1, 1): 2})
        joined = union(left, right)
        for point in GRID:
            expect_pass = point in ((0, 0), (1, 1))
            assert joined.passes(*point) == expect_pass

    def test_union_with_null_is_identity_on_acceptance(self):
        q = make_q()
        some = mechanism_from_table(q, {(2, 2): 4})
        joined = union(some, null_mechanism(q))
        assert joined.acceptance_set() == some.acceptance_set()

    def test_union_rejects_mismatched_domains(self):
        q = make_q()
        other = Program(lambda a: a, ProductDomain.integer_grid(0, 2, 1))
        with pytest.raises(ProgramError):
            union(program_as_mechanism(q), program_as_mechanism(other))

    def test_nary_join(self):
        q = make_q()
        singles = [mechanism_from_table(q, {point: q(*point)})
                   for point in list(GRID)[:4]]
        joined = join(singles, name="M-joined")
        assert joined.name == "M-joined"
        assert joined.acceptance_set() == frozenset(list(GRID)[:4])

    def test_join_empty_rejected(self):
        with pytest.raises(ProgramError):
            join([])


class TestUnionCommutativity:
    """"M2 ∨ M1(a) gives violation notices for precisely the same
    inputs" — acceptance is symmetric even when notice values differ."""

    def test_acceptance_commutes(self):
        q = make_q()
        left = mechanism_from_table(q, {p: q(*p) for p in GRID
                                        if p[0] == 0}, name="L")
        right = mechanism_from_table(q, {p: q(*p) for p in GRID
                                         if p[1] == 2}, name="R")
        assert (union(left, right).acceptance_set()
                == union(right, left).acceptance_set())

    def test_notice_values_may_differ_across_orders(self):
        q = make_q()
        left = ProtectionMechanism(lambda a, b: ViolationNotice("from-L"),
                                   q, name="L")
        right = ProtectionMechanism(lambda a, b: ViolationNotice("from-R"),
                                    q, name="R")
        # Same (empty) acceptance either way; the notice value follows
        # the first operand, exactly as the paper allows.
        assert str(union(left, right)(0, 0)) == "from-L"
        assert str(union(right, left)(0, 0)) == "from-R"
