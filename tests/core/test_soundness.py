"""Unit tests for repro.core.soundness (the factorization definition)."""

import pytest

from repro.core import (LAMBDA, ProductDomain, Program, ProtectionMechanism,
                        ViolationNotice, allow, allow_all, allow_none,
                        check_soundness, distinguishable_pairs, is_sound,
                        leak_partition_sizes, max_leaked_bits,
                        null_mechanism, program_as_mechanism)
from repro.core.errors import ArityMismatchError

GRID = ProductDomain.integer_grid(0, 2, 2)


def make_q(fn=lambda a, b: a + b, name="Q"):
    return Program(fn, GRID, name=name)


class TestSoundVerdicts:
    def test_null_mechanism_sound_for_any_policy(self):
        q = make_q()
        for policy in (allow_none(2), allow(1, arity=2), allow_all(2)):
            assert is_sound(null_mechanism(q), policy)

    def test_program_sound_for_allow_all(self):
        assert is_sound(program_as_mechanism(make_q()), allow_all(2))

    def test_program_unsound_when_reading_denied_input(self):
        report = check_soundness(program_as_mechanism(make_q()),
                                 allow(1, arity=2))
        assert not report.sound
        assert report.witness is not None

    def test_constant_program_sound_for_allow_none(self):
        q = make_q(lambda a, b: 42)
        assert is_sound(program_as_mechanism(q), allow_none(2))

    def test_projection_sound_for_matching_allow(self):
        q = make_q(lambda a, b: a * 2, name="double-x1")
        assert is_sound(program_as_mechanism(q), allow(1, arity=2))
        assert not is_sound(program_as_mechanism(q), allow(2, arity=2))


class TestWitness:
    def test_witness_inputs_are_policy_equal_but_output_distinct(self):
        policy = allow(1, arity=2)
        mechanism = program_as_mechanism(make_q())
        witness = check_soundness(mechanism, policy).witness
        assert policy(*witness.first) == policy(*witness.second)
        assert witness.first_output != witness.second_output
        assert witness.leaked_bits() >= 1.0

    def test_notice_vs_value_is_a_valid_witness(self):
        # A mechanism that warns exactly when the denied input is zero:
        # the notice itself leaks (Example 4 / negative inference).
        q = make_q(lambda a, b: 1)
        mechanism = ProtectionMechanism(
            lambda a, b: ViolationNotice("err") if b == 0 else 1, q)
        report = check_soundness(mechanism, allow(1, arity=2))
        assert not report.sound

    def test_distinct_notices_are_distinguishable(self):
        # Two different notice values split a policy class — unsound,
        # even though every output is "just a violation notice".
        q = make_q()
        mechanism = ProtectionMechanism(
            lambda a, b: ViolationNotice(f"err{b}"), q)
        assert not is_sound(mechanism, allow(1, arity=2))

    def test_single_notice_everywhere_is_sound(self):
        q = make_q()
        mechanism = ProtectionMechanism(lambda a, b: LAMBDA, q)
        assert is_sound(mechanism, allow(1, arity=2))


class TestFactor:
    def test_factor_reconstructs_m_prime(self):
        """The definition is existence of M' with M = M' ∘ I."""
        policy = allow(1, arity=2)
        q = make_q(lambda a, b: a * 10)
        mechanism = program_as_mechanism(q)
        report = check_soundness(mechanism, policy)
        assert report.sound
        m_prime = report.factor_function()
        for point in GRID:
            assert mechanism(*point) == m_prime(policy(*point))

    def test_factor_unavailable_when_unsound(self):
        report = check_soundness(program_as_mechanism(make_q()),
                                 allow(1, arity=2))
        with pytest.raises(ValueError):
            report.factor_function()

    def test_class_count_matches_policy(self):
        report = check_soundness(null_mechanism(make_q()), allow(1, arity=2))
        assert report.classes_checked == 3  # x1 in {0,1,2}

    def test_full_walk_when_not_stopping(self):
        report = check_soundness(program_as_mechanism(make_q()),
                                 allow(1, arity=2),
                                 stop_at_first_witness=False)
        assert report.inputs_checked == len(GRID)


class TestLeakQuantification:
    def test_sound_mechanism_leaks_zero_bits(self):
        assert max_leaked_bits(null_mechanism(make_q()),
                               allow(1, arity=2)) == 0.0

    def test_identity_leaks_log_of_class_size(self):
        # Q(a,b) = b with allow(1): each class splits into 3 outputs.
        q = make_q(lambda a, b: b)
        bits = max_leaked_bits(program_as_mechanism(q), allow(1, arity=2))
        assert bits == pytest.approx(1.585, abs=1e-3)  # log2(3)

    def test_partition_sizes(self):
        q = make_q(lambda a, b: b % 2)
        sizes = leak_partition_sizes(program_as_mechanism(q),
                                     allow(1, arity=2))
        assert set(sizes.values()) == {2}

    def test_distinguishable_pairs_enumerates_leaks(self):
        q = make_q(lambda a, b: b)
        pairs = list(distinguishable_pairs(program_as_mechanism(q),
                                           allow(1, arity=2)))
        # Per class of 3 points: 3 distinguishable pairs; 3 classes.
        assert len(pairs) == 9

    def test_distinguishable_pairs_limit(self):
        q = make_q(lambda a, b: b)
        pairs = list(distinguishable_pairs(program_as_mechanism(q),
                                           allow(1, arity=2), limit=2))
        assert len(pairs) == 2


def test_arity_mismatch_rejected():
    with pytest.raises(ArityMismatchError):
        check_soundness(program_as_mechanism(make_q()), allow(1, arity=3))
