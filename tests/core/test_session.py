"""Unit tests for repro.core.session — history-dependent enforcement."""

import pytest

from repro.core import (Domain, ProductDomain, Program, ViolationNotice,
                        budget_gatekeeper, check_soundness,
                        content_triggered_gatekeeper, is_violation,
                        program_as_mechanism, session_program, unroll)
from repro.core.errors import ArityMismatchError
from repro.core.policy import HistoryPolicy
from repro.core.session import SessionMechanism

QUERY_GRID = ProductDomain.integer_grid(0, 1, 2)


def per_query_program():
    """One query: return x1 (x2 is the secret column)."""
    return Program(lambda a, b: a, QUERY_GRID, name="first")


def budget_history_policy(budget: int) -> HistoryPolicy:
    """The matching policy: first `budget` queries reveal x1, then
    nothing."""

    def step(count, inputs):
        if count < budget:
            return (inputs[0],), count + 1
        return "exhausted", count + 1

    return HistoryPolicy(0, step, arity=2, name=f"I-budget[{budget}]")


class TestSessionProgram:
    def test_tuple_of_answers(self):
        session = session_program(per_query_program(), 2)
        assert session(1, 0, 0, 1) == (1, 0)
        assert session.arity == 4

    def test_domain_is_product_of_queries(self):
        session = session_program(per_query_program(), 3)
        assert len(session.domain) == len(QUERY_GRID) ** 3


class TestBudgetGatekeeper:
    def test_answers_then_refuses(self):
        gate = budget_gatekeeper(
            program_as_mechanism(per_query_program()), budget=1)
        output1, state = gate.answer_query(gate.initial_state, (1, 0))
        assert output1 == 1
        output2, _ = gate.answer_query(state, (1, 0))
        assert is_violation(output2)

    def test_unrolled_is_sound_for_the_budget_policy(self):
        """The stateful gatekeeper enforces the history policy: checked
        with the ordinary (stateless) soundness machinery."""
        gate = budget_gatekeeper(
            program_as_mechanism(per_query_program()), budget=1)
        unrolled = unroll(gate, per_query_program(), length=2)
        policy = budget_history_policy(1).session(2)
        assert check_soundness(unrolled, policy).sound

    def test_unrolled_passes_only_full_sessions(self):
        gate = budget_gatekeeper(
            program_as_mechanism(per_query_program()), budget=2)
        unrolled = unroll(gate, per_query_program(), length=2)
        # Budget covers the session: all answers pass through.
        assert unrolled(1, 0, 0, 1) == (1, 0)

    def test_session_with_any_notice_is_a_notice(self):
        gate = budget_gatekeeper(
            program_as_mechanism(per_query_program()), budget=1)
        unrolled = unroll(gate, per_query_program(), length=2)
        output = unrolled(1, 0, 0, 1)
        assert is_violation(output)
        assert "budget exhausted" in str(output)

    def test_contract_via_unrolling(self):
        gate = budget_gatekeeper(
            program_as_mechanism(per_query_program()), budget=2)
        unroll(gate, per_query_program(), 2).check_contract()


class TestContentTriggeredGatekeeper:
    def test_tripwire_on_secret_leaks_through_refusal_pattern(self):
        """A gatekeeper that locks the session when it sees x2 = 1:
        later refusals encode the earlier secret — unsound."""
        gate = content_triggered_gatekeeper(
            program_as_mechanism(per_query_program()),
            trip=lambda a, b: b == 1)
        unrolled = unroll(gate, per_query_program(), length=2)
        # Policy: reveal x1 of both queries (x2 denied, unbudgeted).
        def filter_fn(*flat):
            return (flat[0], flat[2])

        from repro.core import SecurityPolicy

        policy = SecurityPolicy(filter_fn, 4, name="I-x1-both")
        report = check_soundness(unrolled, policy)
        assert not report.sound
        # The witness: sessions equal on x1s, differing in query-1's x2.
        witness = report.witness
        assert witness.first[1] != witness.second[1]

    def test_tripwire_on_allowed_data_is_sound(self):
        gate = content_triggered_gatekeeper(
            program_as_mechanism(per_query_program()),
            trip=lambda a, b: a == 1)
        unrolled = unroll(gate, per_query_program(), length=2)

        from repro.core import SecurityPolicy

        policy = SecurityPolicy(lambda *flat: (flat[0], flat[2]), 4,
                                name="I-x1-both")
        assert check_soundness(unrolled, policy).sound


class TestArity:
    def test_query_arity_enforced(self):
        gate = budget_gatekeeper(
            program_as_mechanism(per_query_program()), budget=1)
        with pytest.raises(ArityMismatchError):
            gate.answer_query(gate.initial_state, (1,))

    def test_custom_session_mechanism(self):
        mechanism = SessionMechanism(
            "fresh", lambda state, inputs: (0, state), arity=2)
        output, state = mechanism.answer_query("fresh", (1, 1))
        assert output == 0 and state == "fresh"
