"""Unit tests for repro.core.completeness (the >= order on mechanisms)."""

import pytest

from repro.core import (Order, ProductDomain, Program, as_complete, compare,
                        is_maximal_among, mechanism_from_table,
                        more_complete, null_mechanism, program_as_mechanism,
                        union, utility_row)
from repro.core.errors import ProgramError

GRID = ProductDomain.integer_grid(0, 2, 2)


def make_q():
    return Program(lambda a, b: a + b, GRID, name="add")


def accepting(q, predicate, name):
    """A mechanism accepting exactly the points satisfying ``predicate``."""
    return mechanism_from_table(
        q, {point: q(*point) for point in GRID if predicate(point)},
        name=name)


class TestOrderVerdicts:
    def test_equal(self):
        q = make_q()
        left = accepting(q, lambda p: p[0] == 0, "L")
        right = accepting(q, lambda p: p[0] == 0, "R")
        assert compare(left, right).order is Order.EQUAL

    def test_strictly_more_complete(self):
        q = make_q()
        big = accepting(q, lambda p: p[0] <= 1, "big")
        small = accepting(q, lambda p: p[0] == 0, "small")
        result = compare(big, small)
        assert result.order is Order.FIRST_MORE
        assert result.first_only is not None
        assert result.second_only is None
        assert compare(small, big).order is Order.SECOND_MORE

    def test_incomparable(self):
        q = make_q()
        left = accepting(q, lambda p: p[0] == 0, "L")
        right = accepting(q, lambda p: p[1] == 0, "R")
        result = compare(left, right)
        assert result.order is Order.INCOMPARABLE
        assert result.first_only is not None
        assert result.second_only is not None

    def test_program_is_top_null_is_bottom(self):
        q = make_q()
        assert more_complete(program_as_mechanism(q), null_mechanism(q))

    def test_counts(self):
        q = make_q()
        result = compare(accepting(q, lambda p: p[0] == 0, "L"),
                         null_mechanism(q))
        assert result.first_accepts == 3
        assert result.second_accepts == 0
        assert result.domain_size == len(GRID)


class TestOrderLaws:
    """>= is a partial order; ∨ is its join (Theorem 1's second half)."""

    def _family(self, q):
        return [
            null_mechanism(q),
            accepting(q, lambda p: p[0] == 0, "A"),
            accepting(q, lambda p: p[1] == 0, "B"),
            accepting(q, lambda p: p[0] <= 1, "C"),
            program_as_mechanism(q),
        ]

    def test_reflexive(self):
        q = make_q()
        for mechanism in self._family(q):
            assert as_complete(mechanism, mechanism)

    def test_antisymmetric_on_acceptance(self):
        q = make_q()
        family = self._family(q)
        for left in family:
            for right in family:
                if as_complete(left, right) and as_complete(right, left):
                    assert (left.acceptance_set() == right.acceptance_set())

    def test_transitive(self):
        q = make_q()
        family = self._family(q)
        for a in family:
            for b in family:
                for c in family:
                    if as_complete(a, b) and as_complete(b, c):
                        assert as_complete(a, c)

    def test_union_is_least_upper_bound(self):
        q = make_q()
        family = self._family(q)
        for left in family:
            for right in family:
                joined = union(left, right)
                assert as_complete(joined, left)
                assert as_complete(joined, right)
                # Least: any common upper bound dominates the union.
                for upper in family:
                    if as_complete(upper, left) and as_complete(upper, right):
                        assert as_complete(upper, joined)

    def test_is_maximal_among(self):
        q = make_q()
        family = self._family(q)
        assert is_maximal_among(program_as_mechanism(q), family)
        assert not is_maximal_among(null_mechanism(q), family)


class TestUtilityRow:
    def test_row_shape(self):
        q = make_q()
        row = utility_row(accepting(q, lambda p: p[0] == 0, "A"))
        assert row["accepts"] == 3
        assert row["domain"] == 9
        assert row["acceptance_rate"] == pytest.approx(1 / 3)
        assert row["mechanism"] == "A"


def test_mismatched_domains_rejected():
    q = make_q()
    other = Program(lambda a: a, ProductDomain.integer_grid(0, 2, 1))
    with pytest.raises(ProgramError):
        compare(program_as_mechanism(q), program_as_mechanism(other))
