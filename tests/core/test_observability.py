"""Unit tests for repro.core.observability (the Observability Postulate)."""

from repro.core import (Observation, VALUE_AND_TIME, VALUE_ONLY,
                        with_extras)
from repro.core.observability import OutputModel


class TestProjection:
    def test_value_only_hides_time(self):
        fast = Observation(1, steps=3)
        slow = Observation(1, steps=300)
        assert VALUE_ONLY.project(fast) == VALUE_ONLY.project(slow) == 1

    def test_value_and_time_distinguishes(self):
        fast = Observation(1, steps=3)
        slow = Observation(1, steps=300)
        assert VALUE_AND_TIME.project(fast) == (1, 3)
        assert VALUE_AND_TIME.project(slow) == (1, 300)
        assert VALUE_AND_TIME.project(fast) != VALUE_AND_TIME.project(slow)

    def test_extras_are_projected_in_order(self):
        model = with_extras("page_faults")
        observation = Observation(1, steps=5,
                                  attributes={"page_faults": 2})
        assert model.project(observation) == (1, 5, 2)

    def test_extras_without_time(self):
        model = with_extras("page_faults", time_observable=False)
        observation = Observation(1, steps=5,
                                  attributes={"page_faults": 2})
        assert model.project(observation) == (1, 2)

    def test_missing_extra_projects_none(self):
        model = with_extras("page_faults")
        assert model.project(Observation(1, steps=5)) == (1, 5, None)


class TestModelIdentity:
    def test_equality_and_hash(self):
        assert VALUE_ONLY == OutputModel("value-only", False)
        assert VALUE_ONLY != VALUE_AND_TIME
        assert hash(VALUE_ONLY) == hash(OutputModel("value-only", False))

    def test_flags(self):
        assert not VALUE_ONLY.time_observable
        assert VALUE_AND_TIME.time_observable
        assert with_extras("x").extra_observables == ("x",)


class TestObservation:
    def test_equality(self):
        assert Observation(1, 2) == Observation(1, 2)
        assert Observation(1, 2) != Observation(1, 3)
        assert Observation(1, 2, {"a": 1}) != Observation(1, 2)

    def test_hashable(self):
        assert len({Observation(1, 2), Observation(1, 2)}) == 1

    def test_repr(self):
        assert "steps=2" in repr(Observation(1, 2))
