"""Unit tests for repro.core.leakage — quantifying Example 5's 'small'."""

import math

import pytest

from repro.core import (ProductDomain, Program, allow, allow_none,
                        null_mechanism, program_as_mechanism)
from repro.core.leakage import (LeakageProfile, leakage_profile,
                                min_entropy_leakage, shannon_leakage,
                                worst_class_leakage)

GRID = ProductDomain.integer_grid(0, 3, 2)


def mechanism_for(fn, name="Q"):
    return program_as_mechanism(Program(fn, GRID, name=name))


class TestZeroIffSound:
    def test_sound_mechanisms_leak_nothing(self):
        for mechanism in (mechanism_for(lambda a, b: a, "copy1"),
                          null_mechanism(Program(lambda a, b: b, GRID))):
            policy = allow(1, arity=2)
            profile = leakage_profile(mechanism, policy)
            assert profile.sound
            assert profile.shannon == 0.0
            assert profile.min_entropy == 0.0
            assert profile.worst_class == 0.0

    def test_unsound_mechanisms_leak_something(self):
        mechanism = mechanism_for(lambda a, b: b, "copy2")
        profile = leakage_profile(mechanism, allow(1, arity=2))
        assert not profile.sound
        assert profile.shannon > 0.0
        assert profile.min_entropy > 0.0
        assert profile.worst_class > 0.0


class TestExactValues:
    def test_full_disclosure(self):
        """Identity output on allow(): every measure maxes out."""
        mechanism = mechanism_for(lambda a, b: (a, b), "id")
        policy = allow_none(2)
        assert shannon_leakage(mechanism, policy) == pytest.approx(
            math.log2(len(GRID)))
        assert min_entropy_leakage(mechanism, policy) == pytest.approx(
            math.log2(len(GRID)))
        assert worst_class_leakage(mechanism, policy) == pytest.approx(
            math.log2(len(GRID)))

    def test_one_balanced_bit(self):
        """Parity of the denied input: exactly one bit on all measures."""
        mechanism = mechanism_for(lambda a, b: b % 2, "parity2")
        policy = allow(1, arity=2)
        assert shannon_leakage(mechanism, policy) == pytest.approx(1.0)
        assert min_entropy_leakage(mechanism, policy) == pytest.approx(1.0)
        assert worst_class_leakage(mechanism, policy) == pytest.approx(1.0)

    def test_skewed_predicate_shannon_below_worst_case(self):
        """`b == 0` leaks 1 bit at worst but < 1 bit on average —
        the measures separate on skewed outputs."""
        mechanism = mechanism_for(lambda a, b: 1 if b == 0 else 0, "isz")
        policy = allow(1, arity=2)
        worst = worst_class_leakage(mechanism, policy)
        shannon = shannon_leakage(mechanism, policy)
        assert worst == pytest.approx(1.0)
        # H(1/4, 3/4) ≈ 0.811
        assert shannon == pytest.approx(0.8113, abs=1e-3)
        assert shannon < worst

    def test_logon_spread(self):
        """Example 5 quantified: worst-case 1 bit, expected far less."""
        from repro.channels.password import logon_policy, logon_program

        q = logon_program(["alice", "bob"], ["p1", "p2", "p3"])
        mechanism = program_as_mechanism(q)
        policy = logon_policy()
        profile = leakage_profile(mechanism, policy)
        assert profile.worst_class == pytest.approx(1.0)
        # Accept happens on 1/3 of tables: H(1/3, 2/3) ≈ 0.918 bits.
        assert profile.shannon == pytest.approx(0.9183, abs=1e-3)
        assert profile.min_entropy == pytest.approx(1.0)


class TestStructure:
    def test_shannon_bounded_by_worst_class(self):
        for fn in (lambda a, b: b, lambda a, b: b // 2,
                   lambda a, b: a + b, lambda a, b: 1 if b == 3 else 0):
            mechanism = mechanism_for(fn)
            policy = allow(1, arity=2)
            assert (shannon_leakage(mechanism, policy)
                    <= worst_class_leakage(mechanism, policy) + 1e-9)

    def test_profile_repr(self):
        profile = LeakageProfile(0.5, 0.7, 1.0)
        assert "0.5" in repr(profile)
        assert not profile.sound
