"""Unit tests for repro.core.domains."""

import pytest

from repro.core import Domain, ProductDomain
from repro.core.errors import DomainError


class TestDomain:
    def test_preserves_order_and_dedupes(self):
        domain = Domain([3, 1, 2, 1, 3])
        assert list(domain) == [3, 1, 2]
        assert len(domain) == 3

    def test_membership(self):
        domain = Domain.integers(0, 4)
        assert 0 in domain and 4 in domain
        assert 5 not in domain and -1 not in domain

    def test_integers_bounds_inclusive(self):
        assert list(Domain.integers(2, 4)) == [2, 3, 4]

    def test_integers_empty_interval_rejected(self):
        with pytest.raises(DomainError):
            Domain.integers(3, 2)

    def test_empty_domain_rejected(self):
        with pytest.raises(DomainError):
            Domain([])

    def test_booleans(self):
        assert list(Domain.booleans()) == [False, True]

    def test_equality_and_hash(self):
        assert Domain([1, 2]) == Domain([1, 2])
        assert Domain([1, 2]) != Domain([2, 1])
        assert hash(Domain([1, 2])) == hash(Domain([1, 2]))

    def test_indexing(self):
        domain = Domain(["a", "b", "c"])
        assert domain[1] == "b"

    def test_repr_mentions_name_and_size(self):
        text = repr(Domain.integers(0, 9, name="Z10"))
        assert "Z10" in text and "size=10" in text


class TestProductDomain:
    def test_size_is_product(self):
        product = ProductDomain(Domain.integers(0, 2), Domain.integers(0, 4))
        assert len(product) == 3 * 5

    def test_iteration_row_major(self):
        product = ProductDomain.integer_grid(0, 1, 2)
        assert list(product) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_uniform(self):
        product = ProductDomain.uniform(Domain.integers(0, 1), 3)
        assert product.arity == 3
        assert len(product) == 8

    def test_uniform_rejects_zero_arity(self):
        with pytest.raises(DomainError):
            ProductDomain.uniform(Domain.integers(0, 1), 0)

    def test_membership(self):
        product = ProductDomain.integer_grid(0, 2, 2)
        assert (1, 2) in product
        assert (1, 3) not in product
        assert (1,) not in product
        assert [1, 2] not in product  # lists are not points

    def test_validate_accepts_and_normalises(self):
        product = ProductDomain.integer_grid(0, 2, 2)
        assert product.validate([1, 2]) == (1, 2)

    def test_validate_rejects_bad_arity(self):
        product = ProductDomain.integer_grid(0, 2, 2)
        with pytest.raises(DomainError):
            product.validate((1,))

    def test_validate_rejects_out_of_domain_with_position(self):
        product = ProductDomain.integer_grid(0, 2, 2)
        with pytest.raises(DomainError, match="input 2"):
            product.validate((1, 9))

    def test_components_must_be_domains(self):
        with pytest.raises(DomainError):
            ProductDomain([1, 2, 3])

    def test_sampling_deterministic(self):
        product = ProductDomain.integer_grid(0, 9, 3)
        first = list(product.sample(10, seed=7))
        second = list(product.sample(10, seed=7))
        assert first == second
        assert all(point in product for point in first)

    def test_sampling_seed_sensitivity(self):
        product = ProductDomain.integer_grid(0, 9, 3)
        assert (list(product.sample(20, seed=1))
                != list(product.sample(20, seed=2)))

    def test_equality(self):
        assert (ProductDomain.integer_grid(0, 1, 2)
                == ProductDomain.integer_grid(0, 1, 2))
        assert (ProductDomain.integer_grid(0, 1, 2)
                != ProductDomain.integer_grid(0, 2, 2))
