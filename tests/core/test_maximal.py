"""Unit tests for repro.core.maximal (Theorems 2 and 4)."""

import pytest

from repro.core import (ProductDomain, Program, SoundMechanismLattice,
                        allow, allow_all, allow_none, as_complete,
                        certify_maximal, check_soundness,
                        decide_theorem4_output_at_zero, is_sound,
                        maximal_mechanism, maximality_cost,
                        null_mechanism, program_as_mechanism,
                        theorem4_family)

GRID = ProductDomain.integer_grid(0, 2, 2)


def make_q(fn=lambda a, b: a + b, name="Q"):
    return Program(fn, GRID, name=name)


class TestTheorem2:
    def test_maximal_is_sound(self):
        q = make_q()
        for policy in (allow_none(2), allow(1, arity=2), allow_all(2)):
            construction = maximal_mechanism(q, policy)
            assert is_sound(construction.mechanism, policy)

    def test_maximal_dominates_every_sound_mechanism(self):
        """Theorem 2, checked exhaustively over the full sound lattice."""
        q = make_q(lambda a, b: a % 2, name="parity-x1")
        policy = allow(1, arity=2)
        construction = maximal_mechanism(q, policy)
        lattice = SoundMechanismLattice(q, policy)
        for element in lattice.elements():
            other = lattice.realise(element)
            assert as_complete(construction.mechanism, other)

    def test_accepts_exactly_constant_classes(self):
        # Q = x2 with allow(1): no class is constant -> accept nothing.
        q = make_q(lambda a, b: b)
        construction = maximal_mechanism(q, allow(1, arity=2))
        assert construction.mechanism.acceptance_set() == frozenset()
        assert construction.constant_classes == 0

        # Q = x1 with allow(1): every class constant -> accept all.
        q2 = make_q(lambda a, b: a)
        construction2 = maximal_mechanism(q2, allow(1, arity=2))
        assert construction2.mechanism.acceptance_set() == frozenset(GRID)

    def test_mixed_classes(self):
        # Q depends on x2 only when x1 == 0.
        q = make_q(lambda a, b: b if a == 0 else 7)
        construction = maximal_mechanism(q, allow(1, arity=2))
        accepted = construction.mechanism.acceptance_set()
        assert accepted == frozenset(p for p in GRID if p[0] != 0)

    def test_maximal_of_constant_program_for_allow_none(self):
        q = make_q(lambda a, b: 1)
        construction = maximal_mechanism(q, allow_none(2))
        assert construction.mechanism.acceptance_set() == frozenset(GRID)

    def test_certify_maximal(self):
        q = make_q(lambda a, b: a)
        policy = allow(1, arity=2)
        construction = maximal_mechanism(q, policy)
        assert certify_maximal(construction.mechanism, q, policy)
        assert certify_maximal(program_as_mechanism(q), q, policy)
        assert not certify_maximal(null_mechanism(q), q, policy)

    def test_custom_notice(self):
        from repro.core import ViolationNotice

        q = make_q(lambda a, b: b)
        construction = maximal_mechanism(q, allow(1, arity=2),
                                         notice=ViolationNotice("stop"))
        assert construction.mechanism(0, 0) == ViolationNotice("stop")


class TestTheorem4:
    """No effective procedure yields the maximal mechanism in general."""

    def test_cost_scales_with_domain(self):
        """Certifying constancy requires examining every point — so the
        work is unbounded as the domain grows, the finite shadow of the
        non-effectiveness proof."""
        q_fn = lambda x: 0
        costs = []
        for high in (7, 15, 31):
            domain = ProductDomain.integer_grid(0, high, 1)
            q = theorem4_family(q_fn, domain)
            costs.append(maximality_cost(q, allow_none(1), domain))
        assert costs == [8, 16, 32]

    def test_verdict_flips_when_window_grows(self):
        """(*): M(0) = 0 iff ∀x A(x) = 0 — any finite window can lie."""
        # A(x) = 0 for x < 10, then 1: zero on the small window only.
        a_fn = lambda x: 0 if x < 10 else 1
        small = ProductDomain.integer_grid(0, 9, 1)
        large = ProductDomain.integer_grid(0, 10, 1)
        small_c = maximal_mechanism(theorem4_family(a_fn, small),
                                    allow_none(1), small)
        large_c = maximal_mechanism(theorem4_family(a_fn, large),
                                    allow_none(1), large)
        assert decide_theorem4_output_at_zero(small_c) is True
        assert decide_theorem4_output_at_zero(large_c) is False

    def test_identically_zero_a_gives_constant_zero(self):
        domain = ProductDomain.integer_grid(0, 5, 1)
        construction = maximal_mechanism(theorem4_family(lambda x: 0, domain),
                                         allow_none(1), domain)
        assert all(construction.mechanism(x) == 0 for x, in domain)

    def test_nonzero_a_forces_violation_at_zero(self):
        domain = ProductDomain.integer_grid(0, 5, 1)
        construction = maximal_mechanism(
            theorem4_family(lambda x: x % 3, domain), allow_none(1), domain)
        from repro.core import is_violation

        assert is_violation(construction.mechanism(0))


class TestRuzzoObservations:
    def test_q_sound_for_allow_none_iff_constant(self):
        """Ruzzo: Q is sound for (Q, allow()) iff Q is constant."""
        constant = make_q(lambda a, b: 3)
        varying = make_q(lambda a, b: a)
        assert is_sound(program_as_mechanism(constant), allow_none(2))
        assert not is_sound(program_as_mechanism(varying), allow_none(2))

    def test_halting_shaped_maximal(self):
        """Ruzzo's non-recursive maximal mechanism, finitely truncated:
        Q(x1, x2) = 1 if the 'machine' x1 halts in exactly x2 steps.
        The maximal mechanism for allow(1) gives Λ exactly on the x1
        whose row is non-constant, i.e. the halting x1."""
        # Machine i "halts after i steps" for even i, never for odd i.
        def q_fn(x1, x2):
            return 1 if (x1 % 2 == 0 and x2 == x1) else 0

        grid = ProductDomain.integer_grid(0, 2, 2)
        q = Program(q_fn, grid, name="halting")
        construction = maximal_mechanism(q, allow(1, arity=2), grid)
        from repro.core import is_violation

        for x1 in (0, 2):  # "halting" machines: row non-constant
            assert is_violation(construction.mechanism(x1, 0))
        assert construction.mechanism(1, 0) == 0  # non-halting: constant row
