"""Unit tests for repro.core.integrity — the data-security dual."""

import pytest

from repro.core import (ProductDomain, Program, ProtectionMechanism,
                        ViolationNotice, allow, allow_all, check_guarded,
                        check_preservation, must_retain, null_mechanism,
                        preserves, program_as_mechanism, retain_inputs,
                        system_table_program)
from repro.core.errors import ArityMismatchError

GRID = ProductDomain.integer_grid(0, 2, 2)


def make_q(fn=lambda a, b: (a, b), name="Q"):
    return Program(fn, GRID, name=name)


class TestPreservationVerdicts:
    def test_identity_preserves_everything(self):
        q = make_q()
        mechanism = program_as_mechanism(q)
        for policy in (retain_inputs(arity=2), retain_inputs(1, arity=2),
                       retain_inputs(1, 2, arity=2)):
            assert preserves(mechanism, policy)

    def test_null_mechanism_loses_everything_nontrivial(self):
        q = make_q()
        null = null_mechanism(q)
        assert preserves(null, retain_inputs(arity=2))  # nothing designated
        assert not preserves(null, retain_inputs(1, arity=2))

    def test_projection_preserves_exactly_its_inputs(self):
        q = make_q(lambda a, b: a, name="first")
        mechanism = program_as_mechanism(q)
        assert preserves(mechanism, retain_inputs(1, arity=2))
        assert not preserves(mechanism, retain_inputs(2, arity=2))
        assert not preserves(mechanism, retain_inputs(1, 2, arity=2))

    def test_injective_encoding_preserves(self):
        # Output packs both inputs into one integer — still recoverable.
        q = make_q(lambda a, b: a * 10 + b, name="packed")
        assert preserves(program_as_mechanism(q),
                         retain_inputs(1, 2, arity=2))

    def test_lossy_arithmetic_fails(self):
        q = make_q(lambda a, b: a + b, name="sum")
        assert not preserves(program_as_mechanism(q),
                             retain_inputs(1, arity=2))


class TestWitness:
    def test_witness_shows_collapsed_designations(self):
        q = make_q(lambda a, b: a + b, name="sum")
        report = check_preservation(program_as_mechanism(q),
                                    retain_inputs(1, arity=2))
        witness = report.witness
        assert witness is not None
        mechanism = program_as_mechanism(q)
        assert mechanism(*witness.first) == mechanism(*witness.second)
        assert witness.first_designation != witness.second_designation

    def test_notice_collapse_is_detected(self):
        """Suppressing outputs loses designated information — the
        confinement/integrity tension."""
        q = make_q(lambda a, b: (a, b))
        suppressing = ProtectionMechanism(
            lambda a, b: ViolationNotice("Λ") if a > 0 else q(a, b), q)
        assert not preserves(suppressing, retain_inputs(1, arity=2))

    def test_full_walk_accounting(self):
        q = make_q(lambda a, b: a + b)
        report = check_preservation(program_as_mechanism(q),
                                    retain_inputs(1, arity=2),
                                    stop_at_first_witness=False)
        assert report.inputs_checked == len(GRID)


class TestRecovery:
    def test_recovery_function_reconstructs_designation(self):
        q = make_q(lambda a, b: a * 10 + b)
        policy = retain_inputs(2, arity=2)
        report = check_preservation(program_as_mechanism(q), policy)
        recover = report.recovery_function()
        mechanism = program_as_mechanism(q)
        for point in GRID:
            assert recover(mechanism(*point)) == policy(*point)

    def test_recovery_unavailable_when_lossy(self):
        q = make_q(lambda a, b: 0)
        report = check_preservation(program_as_mechanism(q),
                                    retain_inputs(1, arity=2))
        with pytest.raises(ValueError):
            report.recovery_function()


class TestGuarded:
    def test_tension_between_the_two_questions(self):
        """Null: confining but lossy.  Identity: preserving but leaky."""
        q = make_q(lambda a, b: (a, b))
        confinement = allow(1, arity=2)
        integrity = retain_inputs(1, arity=2)

        null_report = check_guarded(null_mechanism(q), confinement,
                                    integrity)
        assert null_report.confinement.sound
        assert not null_report.integrity.preserving
        assert not null_report.guarded

        own_report = check_guarded(program_as_mechanism(q), confinement,
                                   integrity)
        assert not own_report.confinement.sound  # output reveals b
        assert own_report.integrity.preserving

    def test_guarded_mechanism_exists_when_designation_is_allowed(self):
        """Output exactly the allowed slice: sound AND preserving."""
        q = make_q(lambda a, b: a, name="first")
        report = check_guarded(program_as_mechanism(q), allow(1, arity=2),
                               retain_inputs(1, arity=2))
        assert report.guarded

    def test_guarded_impossible_when_designation_is_denied(self):
        """retain(2) + allow(1): every mechanism fails one side."""
        confinement = allow(1, arity=2)
        integrity = retain_inputs(2, arity=2)
        q = make_q(lambda a, b: (a, b))
        candidates = [
            program_as_mechanism(q),
            null_mechanism(q),
            ProtectionMechanism(lambda a, b: q(a, b) if b == 0
                                else ViolationNotice("Λ"), q),
        ]
        assert all(not check_guarded(c, confinement, integrity).guarded
                   for c in candidates)


class TestSystemTableScenario:
    def test_honest_update_preserves_tables(self):
        domain = ProductDomain.integer_grid(0, 1, 3)  # 2 tables + request
        q = system_table_program(2, domain)
        # Table 2 passes through untouched: recoverable.
        assert preserves(program_as_mechanism(q),
                         retain_inputs(2, arity=3))
        # Table 1 is overwritten by the request: lost.
        assert not preserves(program_as_mechanism(q),
                             retain_inputs(1, arity=3))

    def test_must_retain_custom_designation(self):
        domain = ProductDomain.integer_grid(0, 1, 3)
        q = system_table_program(2, domain)
        # Parity of table 2 is certainly recoverable too.
        parity = must_retain(lambda t1, t2, req: t2 % 2, arity=3,
                             name="R-parity")
        assert preserves(program_as_mechanism(q), parity)


def test_arity_mismatch_rejected():
    q = make_q()
    with pytest.raises(ArityMismatchError):
        check_preservation(program_as_mechanism(q),
                           retain_inputs(1, arity=3))
    with pytest.raises(ArityMismatchError):
        retain_inputs(5, arity=2)
