"""Unit tests for repro.core.policy."""

import pytest

from repro.core import (ProductDomain, allow, allow_all, allow_none,
                        content_dependent)
from repro.core.policy import HistoryPolicy
from repro.core.errors import ArityMismatchError, PolicyError

GRID = ProductDomain.integer_grid(0, 2, 3)


class TestAllowPolicy:
    def test_projects_listed_positions(self):
        policy = allow(2, arity=3)
        assert policy(10, 20, 30) == (20,)

    def test_allow_none_filters_everything(self):
        assert allow_none(2)(5, 7) == ()

    def test_allow_all_passes_everything(self):
        assert allow_all(2)(5, 7) == (5, 7)

    def test_paper_indices_are_one_based(self):
        policy = allow(1, 3, arity=3)
        assert policy(10, 20, 30) == (10, 30)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(PolicyError):
            allow(0, arity=2)
        with pytest.raises(PolicyError):
            allow(3, arity=2)

    def test_duplicate_index_rejected(self):
        with pytest.raises(PolicyError):
            allow(1, 1, arity=2)

    def test_permits(self):
        policy = allow(1, 3, arity=3)
        assert policy.permits(1) and policy.permits(3)
        assert not policy.permits(2)

    def test_permits_all_is_subset_test(self):
        policy = allow(1, 3, arity=3)
        assert policy.permits_all(set())
        assert policy.permits_all({1})
        assert policy.permits_all({1, 3})
        assert not policy.permits_all({1, 2})

    def test_arity_enforced_on_call(self):
        with pytest.raises(ArityMismatchError):
            allow(1, arity=2)(5)

    def test_name_matches_paper_notation(self):
        assert allow(1, 3, arity=3).name == "allow(1, 3)"
        assert allow_none(2).name == "allow()"


class TestPolicyClasses:
    def test_classes_partition_the_domain(self):
        policy = allow(1, arity=3)
        classes = policy.classes(GRID)
        total = sum(len(members) for members in classes.values())
        assert total == len(GRID)
        # allow(1) over [0..2]^3: 3 classes of 9 points each.
        assert len(classes) == 3
        assert all(len(members) == 9 for members in classes.values())

    def test_allow_none_single_class(self):
        classes = allow_none(3).classes(GRID)
        assert len(classes) == 1

    def test_allow_all_singleton_classes(self):
        classes = allow_all(3).classes(GRID)
        assert len(classes) == len(GRID)

    def test_members_share_policy_value(self):
        policy = allow(2, 3, arity=3)
        for value, members in policy.classes(GRID).items():
            for point in members:
                assert policy(*point) == value


class TestContentDependentPolicy:
    def test_value_dependent_filtering(self):
        # Allow x2 only when x1 is even — not expressible as allow(...).
        policy = content_dependent(
            lambda x1, x2: (x1, x2 if x1 % 2 == 0 else None), arity=2)
        assert policy(2, 9) == (2, 9)
        assert policy(1, 9) == (1, None)

    def test_classes_reflect_content(self):
        policy = content_dependent(
            lambda x1, x2: (x1, x2 if x1 == 0 else 0), arity=2)
        grid = ProductDomain.integer_grid(0, 2, 2)
        classes = policy.classes(grid)
        # x1 == 0: three singleton classes; x1 in {1,2}: one class each.
        assert len(classes) == 3 + 2


class TestHistoryPolicy:
    def _budget_policy(self, budget):
        def step(count, inputs):
            if count < budget:
                return inputs, count + 1
            return "denied", count + 1

        return HistoryPolicy(0, step, arity=1)

    def test_session_respects_budget(self):
        policy = self._budget_policy(budget=2).session(3)
        assert policy.arity == 3
        assert policy(10, 20, 30) == ((10,), (20,), "denied")

    def test_session_zero_budget_denies_all(self):
        policy = self._budget_policy(budget=0).session(2)
        assert policy(1, 2) == ("denied", "denied")

    def test_filter_query_advances_state(self):
        history = self._budget_policy(budget=1)
        value, state = history.filter_query(history.initial_state, (5,))
        assert value == (5,) and state == 1
        value, state = history.filter_query(state, (6,))
        assert value == "denied" and state == 2
