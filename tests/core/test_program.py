"""Unit tests for repro.core.program."""

import pytest

from repro.core import Program, ProductDomain, program
from repro.core.errors import ArityMismatchError, ProgramError

GRID = ProductDomain.integer_grid(0, 3, 2)


def test_call_applies_function():
    q = Program(lambda a, b: a + b, GRID)
    assert q(1, 2) == 3


def test_arity_enforced():
    q = Program(lambda a, b: a + b, GRID)
    with pytest.raises(ArityMismatchError):
        q(1)
    with pytest.raises(ArityMismatchError):
        q(1, 2, 3)


def test_results_are_memoised():
    calls = []

    def body(a, b):
        calls.append((a, b))
        return a * b

    q = Program(body, GRID)
    assert q(2, 3) == 6
    assert q(2, 3) == 6
    assert calls == [(2, 3)]


def test_non_callable_rejected():
    with pytest.raises(ProgramError):
        Program(42, GRID)


def test_table_covers_domain():
    q = Program(lambda a, b: a - b, GRID)
    table = q.table()
    assert len(table) == len(GRID)
    assert ((1, 1), 0) in table


def test_is_constant():
    assert Program(lambda a, b: 7, GRID).is_constant()
    assert not Program(lambda a, b: a, GRID).is_constant()


def test_on_rebinds_domain():
    q = Program(lambda a, b: a + b, GRID, name="add")
    wider = ProductDomain.integer_grid(0, 5, 2)
    q2 = q.on(wider)
    assert q2.domain == wider
    assert q2.name == "add"
    assert q2(5, 5) == 10


def test_on_rejects_arity_change():
    q = Program(lambda a, b: a + b, GRID)
    with pytest.raises(ArityMismatchError):
        q.on(ProductDomain.integer_grid(0, 3, 3))


def test_decorator_uses_function_name():
    @program(GRID)
    def add(a, b):
        return a + b

    assert isinstance(add, Program)
    assert add.name == "add"
    assert add(1, 1) == 2


def test_decorator_explicit_name():
    @program(GRID, name="Q-sum")
    def add(a, b):
        return a + b

    assert add.name == "Q-sum"


def test_unhashable_inputs_bypass_cache():
    wide = ProductDomain(*(GRID.components))
    q = Program(lambda a, b: 1, wide)
    # Lists are unhashable; call must still succeed (uncached path).
    assert q._fn([1], [2]) == 1
