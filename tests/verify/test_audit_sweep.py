"""Sweep-path auditing: executor-invariant, tamper-evident ledgers.

The acceptance bar: the audit ledger a sweep writes is **bit-identical**
whether the chunks ran serially, on a thread pool, or on a process pool
— the ledger is a pure function of the sweep's inputs, like the results
themselves.  That only holds because segments are derived parent-side
from the merged chunk summaries and appended in (pair, chunk) order,
with no wall clock in the payloads.
"""

import hashlib

import pytest

from repro.flowchart.library import parity_program, timing_loop
from repro.obs.audit import load_ledger, verify_ledger
from repro.verify.parallel import parallel_soundness_sweep


def sweep_with_audit(path, executor, chunk_size=7):
    return parallel_soundness_sweep(
        [timing_loop(), parity_program()], "surveillance",
        executor=executor, max_workers=2, chunk_size=chunk_size,
        audit=str(path))


def digest(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


class TestSweepAudit:
    def test_ledger_bit_identical_across_executors(self, tmp_path):
        digests = {}
        for executor in ("serial", "thread", "process"):
            path = tmp_path / f"audit-{executor}.jsonl"
            sweep_with_audit(path, executor)
            assert verify_ledger(str(path)).ok
            digests[executor] = digest(path)
        assert len(set(digests.values())) == 1, digests

    def test_records_carry_sweep_provenance(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        results = sweep_with_audit(path, "serial")
        records = load_ledger(str(path))
        assert records, "sweep wrote no audit records"
        for record in records:
            assert record["endpoint"] == "sweep"
            assert "ts" not in record  # no wall clock: determinism
            provenance = record["provenance"]
            assert set(provenance) >= {"program", "policy", "class",
                                       "pair", "chunk"}
        # Violating classes appear as notice records with the Λ string.
        notices = [record for record in records
                   if record["decision"] == "notice"]
        accepts = [record for record in records
                   if record["decision"] == "accept"]
        assert notices and accepts
        assert all(record["notice"].startswith("Λ") for record in notices)
        # The ledger and the verdicts agree: a pair is unsound exactly
        # when the reference disagrees, but every pair with any notice
        # record rejected something.
        programs_with_notices = {record["provenance"]["program"]
                                 for record in notices}
        by_name = {result.program_name for result in results
                   if result.accepts < result.domain_size}
        assert programs_with_notices <= by_name

    def test_rerun_overwrites_rather_than_extends(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        sweep_with_audit(path, "serial")
        first = load_ledger(str(path))
        sweep_with_audit(path, "serial")
        second = load_ledger(str(path))
        assert first == second  # fresh=True: same sweep, same ledger

    def test_tampered_sweep_ledger_fails_verify(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        sweep_with_audit(path, "serial")
        data = bytearray(path.read_bytes())
        data[data.index(b'"accept"') + 1] ^= 0x20
        path.write_bytes(bytes(data))
        result = verify_ledger(str(path))
        assert not result.ok
        assert result.problems

    def test_interrupted_sweep_leaves_no_partial_ledger(self, tmp_path):
        from repro.core.errors import SweepInterruptedError

        path = tmp_path / "audit.jsonl"
        calls = []

        def stop():
            calls.append(None)
            return "test-stop" if len(calls) > 1 else None

        with pytest.raises(SweepInterruptedError):
            parallel_soundness_sweep(
                [timing_loop(), parity_program()], "surveillance",
                executor="serial", chunk_size=4, audit=str(path),
                stop=stop)
        # The ledger exists (opened fresh) but holds no records:
        # completion-order partials would differ per executor.
        assert load_ledger(str(path)) == []
