"""The seeded fault-plan module: deterministic, picklable, parseable."""

import pickle

import pytest

from repro.core.errors import ReproError
from repro.verify import chaos
from repro.verify.chaos import FaultDecision, FaultPlan


class TestDeterminism:
    def test_decisions_are_pure_in_the_key(self):
        first = FaultPlan(seed=7, crash=0.3, delay=0.3, lost=0.1)
        second = FaultPlan(seed=7, crash=0.3, delay=0.3, lost=0.1)
        for pair in range(4):
            for chunk in range(4):
                for attempt in range(3):
                    a = first.decide(pair, chunk, attempt)
                    b = second.decide(pair, chunk, attempt)
                    assert (a.crash, a.delay) == (b.crash, b.delay)

    def test_seed_changes_the_schedule(self):
        keys = [(pair, chunk, attempt) for pair in range(6)
                for chunk in range(6) for attempt in range(2)]

        def schedule(seed):
            plan = FaultPlan(seed=seed, crash=0.5)
            return tuple(plan.decide(*key).crash for key in keys)

        assert schedule(1) != schedule(2)

    def test_rates_are_roughly_honoured(self):
        plan = FaultPlan(seed=11, crash=0.25)
        crashes = sum(plan.decide(pair, chunk, 0).crash
                      for pair in range(20) for chunk in range(20))
        assert 40 <= crashes <= 160  # 0.25 of 400, generously bracketed


class TestPriorityAndPoison:
    def test_crash_beats_lost_beats_delay(self):
        plan = FaultPlan(seed=0, crash=1.0, delay=1.0, lost=1.0)
        decision = plan.decide(0, 0, 0)
        assert decision.crash and decision.delay == 0.0

        plan = FaultPlan(seed=0, delay=1.0, lost=1.0, delay_seconds=0.01,
                         lost_seconds=9.0)
        assert plan.decide(0, 0, 0).delay == 9.0

        plan = FaultPlan(seed=0, delay=1.0, delay_seconds=0.01)
        assert plan.decide(0, 0, 0).delay == 0.01

    def test_poison_matches_by_coordinates(self):
        plan = FaultPlan(poison_points=[(1, 2)])
        assert plan.poisons((1, 2))
        assert plan.poisons([1, 2])
        assert not plan.poisons((2, 1))
        assert not FaultPlan().poisons((1, 2))

    def test_no_faults_by_default(self):
        decision = FaultPlan(seed=3).decide(0, 0, 0)
        assert not decision.crash and decision.delay == 0.0
        assert repr(FaultDecision()) == "FaultDecision(crash=False, delay=0.0)"


class TestValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_out_of_range_rates_rejected(self, rate):
        with pytest.raises(ReproError):
            FaultPlan(crash=rate)

    def test_negative_durations_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan(delay_seconds=-1)


class TestParse:
    def test_full_spec_round_trips(self):
        plan = FaultPlan.parse(
            "seed=3,crash=0.2,delay=0.1,lost=0.05,"
            "delay_s=0.25,lost_s=7,poison=1:2+0:0")
        assert plan.seed == 3
        assert plan.crash == 0.2
        assert plan.delay == 0.1
        assert plan.lost == 0.05
        assert plan.delay_seconds == 0.25
        assert plan.lost_seconds == 7.0
        assert plan.poison_points == {(1, 2), (0, 0)}

    def test_empty_fields_skipped(self):
        assert FaultPlan.parse("seed=5,").seed == 5

    @pytest.mark.parametrize("spec", ["bogus", "seed=3,warp=1",
                                      "crash=often"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ReproError):
            FaultPlan.parse(spec)


class TestPickleAndInstall:
    def test_pickle_preserves_the_schedule(self):
        plan = FaultPlan(seed=9, crash=0.4, delay=0.2,
                         poison_points=[(2,), (5,)])
        clone = pickle.loads(pickle.dumps(plan))
        for pair in range(5):
            for chunk in range(5):
                a = plan.decide(pair, chunk, 0)
                b = clone.decide(pair, chunk, 0)
                assert (a.crash, a.delay) == (b.crash, b.delay)
        assert clone.poison_points == plan.poison_points

    def test_install_clear_cycle(self):
        assert chaos.current_plan() is None
        plan = FaultPlan(seed=1)
        chaos.install(plan)
        try:
            assert chaos.current_plan() is plan
        finally:
            chaos.clear()
        assert chaos.current_plan() is None


class TestMessageFaults:
    def test_decisions_are_pure_in_the_key(self):
        first = FaultPlan(seed=7, msg_drop=0.3, msg_dup=0.2,
                          msg_corrupt=0.1, msg_delay=0.2)
        second = FaultPlan(seed=7, msg_drop=0.3, msg_dup=0.2,
                           msg_corrupt=0.1, msg_delay=0.2)
        for channel in ("ch", "#ctl"):
            for seq in range(6):
                for attempt in range(3):
                    a = first.decide_message(channel, seq, attempt)
                    b = second.decide_message(channel, seq, attempt)
                    assert (a.corrupt, a.drop, a.duplicate, a.delay) == \
                        (b.corrupt, b.drop, b.duplicate, b.delay)

    def test_seed_changes_the_schedule(self):
        keys = [("ch", seq, attempt) for seq in range(20)
                for attempt in range(2)]

        def schedule(seed):
            plan = FaultPlan(seed=seed, msg_drop=0.5)
            return tuple(plan.decide_message(*key).drop for key in keys)

        assert schedule(1) != schedule(2)

    def test_priority_corrupt_drop_dup_delay(self):
        everything = FaultPlan(seed=0, msg_corrupt=1.0, msg_drop=1.0,
                               msg_dup=1.0, msg_delay=1.0)
        fault = everything.decide_message("ch", 0, 0)
        assert fault.corrupt and not fault.drop and not fault.duplicate

        no_corrupt = FaultPlan(seed=0, msg_drop=1.0, msg_dup=1.0,
                               msg_delay=1.0)
        assert no_corrupt.decide_message("ch", 0, 0).drop

        dup_only = FaultPlan(seed=0, msg_dup=1.0, msg_delay=1.0,
                             msg_delay_seconds=0.5)
        fault = dup_only.decide_message("ch", 0, 0)
        assert fault.duplicate and fault.delay == 0.0

        delay_only = FaultPlan(seed=0, msg_delay=1.0,
                               msg_delay_seconds=0.5)
        assert delay_only.decide_message("ch", 0, 0).delay == 0.5

    def test_no_message_faults_by_default(self):
        fault = FaultPlan(seed=3).decide_message("ch", 0, 0)
        assert not fault
        assert not fault.corrupt and not fault.drop

    def test_kill_is_pure_and_rate_gated(self):
        plan = FaultPlan(seed=5, kill=0.5)
        schedule = [plan.decide_kill(node, seq)
                    for node in range(3) for seq in range(10)]
        again = [FaultPlan(seed=5, kill=0.5).decide_kill(node, seq)
                 for node in range(3) for seq in range(10)]
        assert schedule == again
        assert any(schedule) and not all(schedule)
        assert not any(FaultPlan(seed=5).decide_kill(node, seq)
                       for node in range(3) for seq in range(10))

    def test_parse_message_fields(self):
        plan = FaultPlan.parse(
            "seed=4,drop=0.3,dup=0.1,corrupt=0.05,mdelay=0.2,"
            "mdelay_s=0.02,kill=0.08")
        assert plan.msg_drop == 0.3
        assert plan.msg_dup == 0.1
        assert plan.msg_corrupt == 0.05
        assert plan.msg_delay == 0.2
        assert plan.msg_delay_seconds == 0.02
        assert plan.kill == 0.08

    def test_out_of_range_message_rates_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan(msg_drop=1.5)
        with pytest.raises(ReproError):
            FaultPlan(kill=-0.1)

    def test_pickle_preserves_message_schedule(self):
        plan = FaultPlan(seed=11, msg_drop=0.4, msg_dup=0.2, kill=0.1)
        clone = pickle.loads(pickle.dumps(plan))
        for seq in range(10):
            for attempt in range(3):
                a = plan.decide_message("ch", seq, attempt)
                b = clone.decide_message("ch", seq, attempt)
                assert (a.corrupt, a.drop, a.duplicate, a.delay) == \
                    (b.corrupt, b.drop, b.duplicate, b.delay)
            assert plan.decide_kill(0, seq) == clone.decide_kill(0, seq)


class TestJitter:
    def test_jitter_is_pure_and_in_range(self):
        values = [chaos.jitter(3, "rto", "ch", seq, attempt)
                  for seq in range(10) for attempt in range(3)]
        again = [chaos.jitter(3, "rto", "ch", seq, attempt)
                 for seq in range(10) for attempt in range(3)]
        assert values == again
        assert all(0.0 <= value < 1.0 for value in values)
        assert len(set(values)) > 1

    def test_jitter_varies_with_seed_and_key(self):
        assert chaos.jitter(1, "rto", "ch", 0, 0) != \
            chaos.jitter(2, "rto", "ch", 0, 0)
        assert chaos.jitter(1, "rto", "ch", 0, 0) != \
            chaos.jitter(1, "retry-backoff", "ch", 0, 0)
