"""The seeded fault-plan module: deterministic, picklable, parseable."""

import pickle

import pytest

from repro.core.errors import ReproError
from repro.verify import chaos
from repro.verify.chaos import FaultDecision, FaultPlan


class TestDeterminism:
    def test_decisions_are_pure_in_the_key(self):
        first = FaultPlan(seed=7, crash=0.3, delay=0.3, lost=0.1)
        second = FaultPlan(seed=7, crash=0.3, delay=0.3, lost=0.1)
        for pair in range(4):
            for chunk in range(4):
                for attempt in range(3):
                    a = first.decide(pair, chunk, attempt)
                    b = second.decide(pair, chunk, attempt)
                    assert (a.crash, a.delay) == (b.crash, b.delay)

    def test_seed_changes_the_schedule(self):
        keys = [(pair, chunk, attempt) for pair in range(6)
                for chunk in range(6) for attempt in range(2)]

        def schedule(seed):
            plan = FaultPlan(seed=seed, crash=0.5)
            return tuple(plan.decide(*key).crash for key in keys)

        assert schedule(1) != schedule(2)

    def test_rates_are_roughly_honoured(self):
        plan = FaultPlan(seed=11, crash=0.25)
        crashes = sum(plan.decide(pair, chunk, 0).crash
                      for pair in range(20) for chunk in range(20))
        assert 40 <= crashes <= 160  # 0.25 of 400, generously bracketed


class TestPriorityAndPoison:
    def test_crash_beats_lost_beats_delay(self):
        plan = FaultPlan(seed=0, crash=1.0, delay=1.0, lost=1.0)
        decision = plan.decide(0, 0, 0)
        assert decision.crash and decision.delay == 0.0

        plan = FaultPlan(seed=0, delay=1.0, lost=1.0, delay_seconds=0.01,
                         lost_seconds=9.0)
        assert plan.decide(0, 0, 0).delay == 9.0

        plan = FaultPlan(seed=0, delay=1.0, delay_seconds=0.01)
        assert plan.decide(0, 0, 0).delay == 0.01

    def test_poison_matches_by_coordinates(self):
        plan = FaultPlan(poison_points=[(1, 2)])
        assert plan.poisons((1, 2))
        assert plan.poisons([1, 2])
        assert not plan.poisons((2, 1))
        assert not FaultPlan().poisons((1, 2))

    def test_no_faults_by_default(self):
        decision = FaultPlan(seed=3).decide(0, 0, 0)
        assert not decision.crash and decision.delay == 0.0
        assert repr(FaultDecision()) == "FaultDecision(crash=False, delay=0.0)"


class TestValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_out_of_range_rates_rejected(self, rate):
        with pytest.raises(ReproError):
            FaultPlan(crash=rate)

    def test_negative_durations_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan(delay_seconds=-1)


class TestParse:
    def test_full_spec_round_trips(self):
        plan = FaultPlan.parse(
            "seed=3,crash=0.2,delay=0.1,lost=0.05,"
            "delay_s=0.25,lost_s=7,poison=1:2+0:0")
        assert plan.seed == 3
        assert plan.crash == 0.2
        assert plan.delay == 0.1
        assert plan.lost == 0.05
        assert plan.delay_seconds == 0.25
        assert plan.lost_seconds == 7.0
        assert plan.poison_points == {(1, 2), (0, 0)}

    def test_empty_fields_skipped(self):
        assert FaultPlan.parse("seed=5,").seed == 5

    @pytest.mark.parametrize("spec", ["bogus", "seed=3,warp=1",
                                      "crash=often"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ReproError):
            FaultPlan.parse(spec)


class TestPickleAndInstall:
    def test_pickle_preserves_the_schedule(self):
        plan = FaultPlan(seed=9, crash=0.4, delay=0.2,
                         poison_points=[(2,), (5,)])
        clone = pickle.loads(pickle.dumps(plan))
        for pair in range(5):
            for chunk in range(5):
                a = plan.decide(pair, chunk, 0)
                b = clone.decide(pair, chunk, 0)
                assert (a.crash, a.delay) == (b.crash, b.delay)
        assert clone.poison_points == plan.poison_points

    def test_install_clear_cycle(self):
        assert chaos.current_plan() is None
        plan = FaultPlan(seed=1)
        chaos.install(plan)
        try:
            assert chaos.current_plan() is plan
        finally:
            chaos.clear()
        assert chaos.current_plan() is None
