"""Golden-output tests for the plain-text experiment tables."""

import pytest

from repro.verify.report import Table, banner


class TestRenderGolden:
    def test_aligned_table(self):
        table = Table("E01: soundness", ["program", "sound", "ms"])
        table.add_row("gcd", True, 1.25)
        table.add_row("forgetting-loop", False, 0.5)
        assert table.render() == (
            "E01: soundness\n"
            "program         | sound | ms   \n"
            "----------------+-------+------\n"
            "gcd             | yes   | 1.250\n"
            "forgetting-loop | no    | 0.500"
        )

    def test_cell_formatting_rules(self):
        table = Table("t", ["v"])
        table.add_row(True)
        table.add_row(False)
        table.add_row(0.123456)
        table.add_row(7)
        assert [row[0] for row in table.rows] == [
            "yes", "no", "0.123", "7"]

    def test_named_rows_and_dict_rows_align_with_columns(self):
        table = Table("t", ["a", "b"])
        table.add_row(b=2, a=1)
        table.add_dict({"b": 4, "a": 3})
        assert table.rows == [["1", "2"], ["3", "4"]]

    def test_csv_golden(self):
        table = Table("t", ["program", "sound"])
        table.add_row("gcd", True)
        assert table.to_csv() == "program,sound\r\ngcd,yes\r\n"

    def test_mixed_positional_and_named_rejected(self):
        table = Table("t", ["a"])
        with pytest.raises(ValueError, match="not both"):
            table.add_row(1, a=2)

    def test_wrong_row_width_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError, match="2 columns"):
            table.add_row(1)


class TestBannerGolden:
    def test_short_text_pads_rule_to_twenty(self, capsys):
        banner("E02")
        assert capsys.readouterr().out == (
            "\n" + "=" * 20 + "\nE02\n" + "=" * 20 + "\n")

    def test_long_text_rule_matches_text(self, capsys):
        text = "E03: the timed variant halts before the test"
        banner(text)
        rule = "=" * len(text)
        assert capsys.readouterr().out == f"\n{rule}\n{text}\n{rule}\n"
