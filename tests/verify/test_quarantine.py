"""Poison-point quarantine: crashes become notices, not lost sweeps.

An undeclared exception inside a chunk is bisected down to its crashing
point(s); each quarantined point contributes the distinguished
``Λ!crash[Type]`` notice for its policy class.  Because the notice
encodes only the exception *type*, the quarantined rows are identical
whether the chunk ran serially, in a thread pool, or in a process pool.
"""

import pytest

from repro import obs
from repro.core import ProductDomain, allow
from repro.robustness.faults import crash_notice
from repro.verify import (build_mechanism, evaluate_chunk,
                          parallel_soundness_sweep, quarantine_chunk)
from repro.verify.chaos import FaultPlan
from repro.verify import chaos
from repro.flowchart import library as figure_library

GRID = ProductDomain.integer_grid(0, 3, 1)


class CrashingMechanism:
    """A mechanism that crashes deterministically on chosen points."""

    name = "crashing"
    arity = 1
    domain = GRID

    def __init__(self, crash_on, error=MemoryError):
        self.crash_on = set(crash_on)
        self.error = error

    def __call__(self, x1):
        if x1 in self.crash_on:
            raise self.error(f"boom at {x1}")
        return x1 % 2


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    chaos.clear()


class TestBisection:
    def test_crash_propagates_from_evaluate_chunk(self):
        mechanism = CrashingMechanism({2})
        with pytest.raises(MemoryError):
            evaluate_chunk(mechanism, allow(1, arity=1), list(GRID))

    def test_single_crashing_point_is_isolated(self):
        policy = allow(1, arity=1)
        summary = quarantine_chunk(CrashingMechanism({2}), policy,
                                   list(GRID))
        # Points 0,1,3 evaluate normally (parity outputs); point 2 is
        # quarantined under its own policy class.
        assert summary.classes[policy(2)] == crash_notice(MemoryError())
        assert summary.accepts == 3

    def test_multiple_crashing_points_all_isolated(self):
        policy = allow(arity=1)  # allow() — every point in one class
        summary = quarantine_chunk(CrashingMechanism({0, 3}), policy,
                                   list(GRID))
        assert summary.accepts == 2
        # One shared class: first output seen wins the representative
        # slot, and a cross-chunk conflict is flagged at merge time.
        assert len(summary.classes) == 1

    def test_notice_encodes_type_not_message(self):
        policy = allow(1, arity=1)
        first = quarantine_chunk(
            CrashingMechanism({2}, error=OSError), policy, list(GRID))
        second = quarantine_chunk(
            CrashingMechanism({2}, error=OSError), policy, list(GRID))
        assert first.classes[policy(2)] == second.classes[policy(2)]
        assert "Λ!crash[OSError]" in str(first.classes[policy(2)])

    def test_quarantine_emits_trace_events(self):
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            quarantine_chunk(CrashingMechanism({1, 2}), allow(1, arity=1),
                             list(GRID))
        chunk_events = ring.events("chunk_quarantined")
        point_events = ring.events("point_quarantined")
        assert len(chunk_events) == 1
        assert chunk_events[0]["reason"] == "MemoryError"
        assert sorted(event["point"] for event in point_events) == [[1], [2]]


class TestSweepAgreement:
    @pytest.fixture(scope="class")
    def poisoned_rows(self):
        def rows(executor):
            chaos.install(FaultPlan(seed=3, poison_points=[(2,)]))
            try:
                results = parallel_soundness_sweep(
                    [figure_library.parity_program()], "surveillance",
                    grid=lambda arity: GRID, executor=executor,
                    max_workers=2, chunk_size=2)
            finally:
                chaos.clear()
            return [(r.program_name, r.policy_name, r.sound, r.accepts)
                    for r in results]

        return rows

    def test_rows_identical_across_executors(self, poisoned_rows):
        serial = poisoned_rows("serial")
        assert poisoned_rows("thread") == serial
        assert poisoned_rows("process") == serial

    def test_poisoned_point_is_not_accepted(self, poisoned_rows):
        baseline = parallel_soundness_sweep(
            [figure_library.parity_program()], "surveillance",
            grid=lambda arity: GRID, executor="serial")
        poisoned = poisoned_rows("serial")
        for (_, _, _, accepts), clean in zip(poisoned, baseline):
            assert accepts <= clean.accepts

    def test_serial_fast_path_also_quarantines(self):
        # chunk_size unset + serial executor takes the unchunked fast
        # path, which must still bisect instead of crashing the sweep.
        chaos.install(FaultPlan(seed=3, poison_points=[(2,)]))
        try:
            results = parallel_soundness_sweep(
                [figure_library.parity_program()], "surveillance",
                grid=lambda arity: GRID, executor="serial")
        finally:
            chaos.clear()
        assert results  # completed despite the poisoned point
