"""Property: merging any chunking of a domain equals the serial verdict.

``merge_chunks`` over an arbitrary partition of the grid (in domain
order, any cut points, including empty chunks) must produce exactly the
``(sound, accepts)`` pair of a single whole-domain ``evaluate_chunk`` —
including sweeps where every output is a violation notice and sweeps
where every run exhausts its fuel.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mechanism import is_violation
from repro.core.policy import allow
from repro.flowchart import library
from repro.verify import FACTORIES
from repro.verify.enumerate import default_grid, fuel_notice
from repro.verify.parallel import evaluate_chunk, merge_chunks


def chunked(points, cuts):
    bounds = [0] + sorted(cuts) + [len(points)]
    return [points[start:stop] for start, stop in zip(bounds, bounds[1:])]


def build_case(flowchart, allowed, fuel):
    domain = default_grid(flowchart.arity)
    policy = allow(*allowed, arity=flowchart.arity)
    mechanism = FACTORIES["surveillance"](flowchart, policy, domain, fuel)
    return mechanism, policy, list(domain)


@settings(deadline=None, max_examples=40)
@given(data=st.data())
def test_any_chunking_matches_whole_domain(data):
    flowchart = library.forgetting_program()
    allowed = data.draw(st.sampled_from([(), (1,), (2,), (1, 2)]))
    mechanism, policy, points = build_case(flowchart, allowed, 100_000)
    cuts = data.draw(st.lists(st.integers(0, len(points)), max_size=6))
    split = [evaluate_chunk(mechanism, policy, chunk)
             for chunk in chunked(points, cuts)]
    whole = evaluate_chunk(mechanism, policy, points)
    assert merge_chunks(split) == merge_chunks([whole])


@settings(deadline=None, max_examples=25)
@given(cuts=st.lists(st.integers(0, 9), max_size=5))
def test_all_violation_runs_merge_identically(cuts):
    # allow() on the forgetting program: every single output is Λ —
    # the degenerate sweep the merge must still summarise exactly.
    mechanism, policy, points = build_case(
        library.forgetting_program(), (), 100_000)
    assert all(is_violation(mechanism(*point)) for point in points)
    split = [evaluate_chunk(mechanism, policy, chunk)
             for chunk in chunked(points, cuts)]
    whole = evaluate_chunk(mechanism, policy, points)
    merged = merge_chunks(split)
    assert merged == merge_chunks([whole])
    assert merged[1] == 0  # nothing accepted


@settings(deadline=None, max_examples=25)
@given(cuts=st.lists(st.integers(0, 9), max_size=5))
def test_all_fuel_exhausted_runs_merge_identically(cuts):
    # fuel=2 truncates every gcd run: every chunk output is the
    # distinguished fuel notice, never an unwinding exception.
    mechanism, policy, points = build_case(
        library.gcd_program(), (1, 2), 2)
    split = [evaluate_chunk(mechanism, policy, chunk)
             for chunk in chunked(points, cuts)]
    whole = evaluate_chunk(mechanism, policy, points)
    assert merge_chunks(split) == merge_chunks([whole])
    assert all(output == fuel_notice(2)
               for output in whole.classes.values())
