"""Crash-safe checkpoint journals and bit-identical resume."""

import json

import pytest

from repro import obs
from repro.core import ProductDomain, ViolationNotice
from repro.core.errors import ReproError, SweepInterruptedError
from repro.flowchart import library as figure_library
from repro.verify import (CheckpointWriter, load_checkpoint,
                          parallel_soundness_sweep)
from repro.verify.checkpoint import (config_fingerprint, decode_value,
                                     encode_value)
from repro.verify.parallel import ChunkSummary

DESCRIPTOR = {"pairs": [["p", "allow(1)", 4]], "chunks": [[2, 2]],
              "factory": "surveillance", "fuel": 100, "value_cap": None}


def rows(results):
    return [(r.program_name, r.policy_name, r.sound, r.accepts)
            for r in results]


def sweep(**kwargs):
    return parallel_soundness_sweep(
        [figure_library.parity_program(), figure_library.max_program()],
        "surveillance",
        grid=lambda arity: ProductDomain.integer_grid(0, 2, arity),
        executor="thread", max_workers=2, chunk_size=2, **kwargs)


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        0, -17, "Λ", (1, 2), (1, (2, "x")),
        ViolationNotice("Λ!fuel[100]"),
        (ViolationNotice("Λ!cap[8]"), 3),
    ])
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_notices_round_trip_as_notices(self):
        restored = decode_value(encode_value(ViolationNotice("Λ!x")))
        assert isinstance(restored, ViolationNotice)

    @pytest.mark.parametrize("value", [True, 1.5, {"a": 1}, None])
    def test_unsupported_types_rejected(self, value):
        with pytest.raises(ReproError):
            encode_value(value)

    def test_unrecognised_encoding_rejected(self):
        with pytest.raises(ReproError):
            decode_value({"weird": 1})


class TestJournal:
    def test_write_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        summary = ChunkSummary(
            2, {0: 4, 1: ViolationNotice("Λ!crash[MemoryError]")}, False)
        with CheckpointWriter(path, DESCRIPTOR) as writer:
            writer.write_chunk(0, 0, summary)
            writer.write_chunk(0, 1, ChunkSummary(1, {(2, 3): (5, "Λ")},
                                                  True))
        meta, summaries, records = load_checkpoint(
            path, config_fingerprint(DESCRIPTOR))
        assert records == 3
        assert meta["sweep"]["factory"] == "surveillance"
        restored = summaries[(0, 0)]
        assert restored.accepts == 2
        assert restored.classes == summary.classes
        assert list(restored.classes) == list(summary.classes)  # order
        assert summaries[(0, 1)].conflict is True

    def test_journal_is_a_valid_trace(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with CheckpointWriter(path, DESCRIPTOR) as writer:
            writer.write_chunk(0, 0, ChunkSummary(1, {0: 1}, False))
        with open(path, encoding="utf-8") as handle:
            count, problems = obs.validate_jsonl(handle)
        assert count == 2
        assert problems == []

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with CheckpointWriter(path, DESCRIPTOR) as writer:
            writer.write_chunk(0, 0, ChunkSummary(1, {0: 1}, False))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "checkpoint_written", "pair": 1, ')
        meta, summaries, records = load_checkpoint(path)
        assert records == 2
        assert set(summaries) == {(0, 0)}

    def test_corrupt_interior_line_rejected(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with CheckpointWriter(path, DESCRIPTOR) as writer:
            writer.write_chunk(0, 0, ChunkSummary(1, {0: 1}, False))
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        lines.insert(1, "not json\n")
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(ReproError, match="corrupt"):
            load_checkpoint(path)

    def test_missing_file_and_header_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            load_checkpoint(str(tmp_path / "absent.jsonl"))
        path = tmp_path / "headless.jsonl"
        path.write_text('{"kind": "chunk_done", "seq": 0, "t": 0}\n')
        with pytest.raises(ReproError, match="checkpoint_meta"):
            load_checkpoint(str(path))

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        CheckpointWriter(path, DESCRIPTOR).close()
        changed = dict(DESCRIPTOR, fuel=999)
        with pytest.raises(ReproError, match="different sweep"):
            load_checkpoint(path, config_fingerprint(changed))


class TestSweepResume:
    def test_interrupted_then_resumed_rows_are_bit_identical(self,
                                                             tmp_path):
        path = str(tmp_path / "ck.jsonl")
        baseline = rows(sweep())

        # Fires at the first poll: the sweep must drain whatever is in
        # flight, journal it, and raise — however little completed.
        with pytest.raises(SweepInterruptedError) as info:
            sweep(checkpoint=path, stop=lambda: "signal")
        assert info.value.reason == "signal"
        assert info.value.checkpoint == path

        resumed = sweep(checkpoint=path, resume=True)
        assert rows(resumed) == baseline

    def test_resume_of_a_complete_journal_reruns_nothing(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        baseline = rows(sweep(checkpoint=path))
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            resumed = rows(sweep(checkpoint=path, resume=True))
        assert resumed == baseline
        assert not ring.events("chunk_done")  # everything restored
        restored = ring.events("sweep_resumed")
        assert restored and restored[0]["chunks_restored"] > 0

    def test_resume_under_changed_config_refuses(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        sweep(checkpoint=path)
        with pytest.raises(ReproError, match="different sweep"):
            sweep(checkpoint=path, resume=True, fuel=77)

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ReproError):
            sweep(resume=True)

    def test_deadline_interrupts_with_reason(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with pytest.raises(SweepInterruptedError) as info:
            sweep(checkpoint=path, deadline=1e-9)
        assert info.value.reason == "deadline"
        resumed = rows(sweep(checkpoint=path, resume=True))
        assert resumed == rows(sweep())

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ReproError):
            sweep(deadline=0)


class TestJournalWriter:
    """The journal base class the dist node runtime shares with
    checkpoints: fsync per record, torn-tail tolerant load."""

    def test_records_gain_seq_and_timestamp(self, tmp_path):
        from repro.verify.checkpoint import JournalWriter, load_journal
        path = str(tmp_path / "journal.jsonl")
        with JournalWriter(path) as journal:
            journal.write({"kind": "a"})
            journal.write({"kind": "b"})
        records = load_journal(path)
        assert [r["seq"] for r in records] == [0, 1]
        assert all(r["t"] >= 0.0 for r in records)
        assert [r["kind"] for r in records] == ["a", "b"]

    def test_resume_appends_past_start_seq(self, tmp_path):
        from repro.verify.checkpoint import JournalWriter, load_journal
        path = str(tmp_path / "journal.jsonl")
        with JournalWriter(path) as journal:
            journal.write({"kind": "a"})
        with JournalWriter(path, fresh=False, start_seq=1) as journal:
            journal.write({"kind": "b"})
        assert [r["seq"] for r in load_journal(path)] == [0, 1]

    def test_torn_tail_tolerated(self, tmp_path):
        from repro.verify.checkpoint import JournalWriter, load_journal
        path = str(tmp_path / "journal.jsonl")
        with JournalWriter(path) as journal:
            journal.write({"kind": "a"})
            journal.write({"kind": "b"})
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "torn')  # SIGKILL mid-write
        records = load_journal(path)
        assert [r["kind"] for r in records] == ["a", "b"]

    def test_mid_file_corruption_raises(self, tmp_path):
        from repro.core.errors import ReproError
        from repro.verify.checkpoint import JournalWriter, load_journal
        path = str(tmp_path / "journal.jsonl")
        with JournalWriter(path) as journal:
            journal.write({"kind": "a"})
            journal.write({"kind": "b"})
        lines = open(path, "rb").read().splitlines(keepends=True)
        with open(path, "wb") as handle:
            handle.write(b"garbage\n")
            handle.writelines(lines[1:])
        with pytest.raises(ReproError, match="corrupt at line 1"):
            load_journal(path)

    def test_missing_journal_raises(self, tmp_path):
        from repro.core.errors import ReproError
        from repro.verify.checkpoint import load_journal
        with pytest.raises(ReproError, match="does not exist"):
            load_journal(str(tmp_path / "absent.jsonl"))
