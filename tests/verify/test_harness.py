"""Unit tests for repro.verify (sweeps and reporting)."""

import pytest

from repro.core import ProductDomain, allow_all
from repro.flowchart import library
from repro.surveillance import surveillance_mechanism
from repro.verify import (Table, all_allow_policies, default_grid,
                          soundness_sweep, unsound_results)


class TestPolicyEnumeration:
    def test_counts_powerset(self):
        assert len(all_allow_policies(2)) == 4
        assert len(all_allow_policies(3)) == 8

    def test_contains_extremes(self):
        names = {policy.name for policy in all_allow_policies(2)}
        assert "allow()" in names
        assert "allow(1, 2)" in names


class TestSweep:
    def test_result_shape(self):
        results = soundness_sweep(
            [library.mixer_program()],
            lambda flowchart, policy, domain: surveillance_mechanism(
                flowchart, policy, domain))
        assert len(results) == 4  # 2^2 policies
        assert all(result.domain_size == len(default_grid(2))
                   for result in results)

    def test_unsound_filter(self):
        from repro.core import program_as_mechanism
        from repro.flowchart.interpreter import as_program

        # Q as its own mechanism: unsound for every proper restriction
        # of mixer's inputs, sound for allow(1,2).
        results = soundness_sweep(
            [library.mixer_program()],
            lambda flowchart, policy, domain: program_as_mechanism(
                as_program(flowchart, domain)))
        bad = unsound_results(results)
        assert len(bad) == 3
        assert all(result.policy_name != "allow(1, 2)" for result in bad)


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("T", ["name", "value"])
        table.add_row("a", 1)
        table.add_row("longer-name", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) <= 2  # header+rule+rows

    def test_named_rows(self):
        table = Table("T", ["x", "y"])
        table.add_row(y=2, x=1)
        assert table.rows == [["1", "2"]]

    def test_dict_rows(self):
        table = Table("T", ["x", "y"])
        table.add_dict({"x": True, "y": 0.5, "extra": "ignored"})
        assert table.rows == [["yes", "0.500"]]

    def test_mixed_positional_named_rejected(self):
        table = Table("T", ["x"])
        with pytest.raises(ValueError):
            table.add_row(1, x=1)

    def test_wrong_width_rejected(self):
        table = Table("T", ["x", "y"])
        with pytest.raises(ValueError):
            table.add_row(1)


class TestSampledSoundness:
    def test_finds_real_leaks(self):
        from repro.core import ProductDomain, Program, allow, program_as_mechanism
        from repro.verify.enumerate import sampled_soundness

        grid = ProductDomain.integer_grid(0, 50, 2)  # 2601 points
        q = Program(lambda a, b: b, grid, name="leaky")
        report = sampled_soundness(program_as_mechanism(q),
                                   allow(1, arity=2), samples=300)
        assert not report.sound
        assert report.witness is not None

    def test_sound_mechanisms_pass(self):
        from repro.core import ProductDomain, Program, allow, program_as_mechanism
        from repro.verify.enumerate import sampled_soundness

        grid = ProductDomain.integer_grid(0, 50, 2)
        q = Program(lambda a, b: a, grid, name="clean")
        report = sampled_soundness(program_as_mechanism(q),
                                   allow(1, arity=2), samples=300)
        assert report.sound

    def test_deterministic_per_seed(self):
        from repro.core import ProductDomain, Program, allow, program_as_mechanism
        from repro.verify.enumerate import sampled_soundness

        grid = ProductDomain.integer_grid(0, 50, 2)
        q = Program(lambda a, b: b, grid, name="leaky")
        first = sampled_soundness(program_as_mechanism(q),
                                  allow(1, arity=2), samples=50, seed=3)
        second = sampled_soundness(program_as_mechanism(q),
                                   allow(1, arity=2), samples=50, seed=3)
        assert (first.witness is None) == (second.witness is None)
        if first.witness:
            assert first.witness.first == second.witness.first


class TestCsvExport:
    def test_csv_round_trips(self):
        import csv
        import io

        table = Table("T", ["name", "rate"])
        table.add_row("a,b", 0.5)   # embedded comma must survive quoting
        table.add_row("c", True)
        rows = list(csv.reader(io.StringIO(table.to_csv())))
        assert rows[0] == ["name", "rate"]
        assert rows[1] == ["a,b", "0.500"]
        assert rows[2] == ["c", "yes"]
