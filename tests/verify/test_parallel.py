"""The parallel sweep must reproduce the serial sweep exactly.

Every executor mode — serial, thread, process — is compared field-by-
field against :func:`repro.verify.soundness_sweep` on the same
(flowchart, policy) product, and the single-pass
``check_soundness_with_accepts`` is checked against a brute-force
recount.
"""

import pytest

from repro.core.mechanism import is_violation
from repro.core.errors import ReproError
from repro.core.soundness import check_soundness, check_soundness_with_accepts
from repro.flowchart import library
from repro.verify import (FACTORIES, parallel_soundness_sweep,
                          resolve_factory, soundness_sweep)
from repro.verify.enumerate import default_grid
from repro.verify.parallel import (ChunkSummary, evaluate_chunk,
                                   merge_chunks)

FLOWCHARTS = [library.forgetting_program(), library.parity_program(),
              library.max_program()]


def rows(results):
    return [(r.program_name, r.policy_name, r.mechanism_name,
             r.sound, r.accepts, r.domain_size) for r in results]


@pytest.fixture(scope="module")
def serial_baseline():
    return soundness_sweep(FLOWCHARTS, FACTORIES["surveillance"])


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_executor_matches_serial_sweep(executor, serial_baseline):
    parallel = parallel_soundness_sweep(
        FLOWCHARTS, "surveillance", executor=executor, max_workers=2,
        chunk_size=5)
    assert rows(parallel) == rows(serial_baseline)


def test_process_executor_matches_serial_sweep(serial_baseline):
    parallel = parallel_soundness_sweep(
        FLOWCHARTS, "surveillance", executor="process", max_workers=2,
        chunk_size=7)
    assert rows(parallel) == rows(serial_baseline)


def test_auto_executor_small_product_stays_correct():
    # 3^k points per pair is far below the auto-serial threshold, so
    # "auto" degrades to serial — and must still match.
    auto = parallel_soundness_sweep(FLOWCHARTS, "program", executor="auto")
    serial = soundness_sweep(FLOWCHARTS, FACTORIES["program"])
    assert rows(auto) == rows(serial)


def test_callable_factory_accepted_by_thread_executor():
    def factory(flowchart, policy, domain):
        return FACTORIES["surveillance"](flowchart, policy, domain)

    parallel = parallel_soundness_sweep(
        [library.parity_program()], factory, executor="thread",
        max_workers=2, chunk_size=3)
    serial = soundness_sweep([library.parity_program()], factory)
    assert rows(parallel) == rows(serial)


def test_process_executor_rejects_unpicklable_factory():
    with pytest.raises(ReproError, match="pickling"):
        parallel_soundness_sweep(
            [library.parity_program()],
            lambda flowchart, policy, domain:
                FACTORIES["surveillance"](flowchart, policy, domain),
            executor="process")


def test_unknown_executor_and_factory_rejected():
    with pytest.raises(ReproError, match="executor"):
        parallel_soundness_sweep(FLOWCHARTS, "surveillance",
                                 executor="gpu")
    with pytest.raises(ReproError, match="factory"):
        resolve_factory("quantum")


def test_chunk_merge_equals_whole_domain_summary():
    flowchart = library.max_program()
    domain = default_grid(flowchart.arity)
    from repro.core.policy import allow
    policy = allow(1, arity=flowchart.arity)
    mechanism = FACTORIES["surveillance"](flowchart, policy, domain)

    points = list(domain)
    whole = evaluate_chunk(mechanism, policy, points)
    split = [evaluate_chunk(mechanism, policy, points[i:i + 2])
             for i in range(0, len(points), 2)]
    assert merge_chunks(split) == merge_chunks([whole])


def test_merge_detects_cross_chunk_conflict():
    # Same policy class in two chunks, different representatives: the
    # conflict is only visible at merge time.
    agree = ChunkSummary(1, {(): "A"}, False)
    differ = ChunkSummary(1, {(): "B"}, False)
    sound, accepts = merge_chunks([agree, differ])
    assert not sound and accepts == 2
    sound, _ = merge_chunks([agree, ChunkSummary(0, {(): "A"}, False)])
    assert sound


def test_single_pass_accepts_equals_brute_force():
    from repro.core.policy import allow
    flowchart = library.forgetting_program()
    domain = default_grid(flowchart.arity)
    policy = allow(2, arity=flowchart.arity)
    mechanism = FACTORIES["surveillance"](flowchart, policy, domain)

    report, accepts = check_soundness_with_accepts(mechanism, policy, domain)
    brute_accepts = sum(
        1 for point in domain if not is_violation(mechanism(*point)))
    assert accepts == brute_accepts
    assert report.sound == check_soundness(mechanism, policy, domain).sound
