"""The parallel sweep must reproduce the serial sweep exactly.

Every executor mode — serial, thread, process — is compared field-by-
field against :func:`repro.verify.soundness_sweep` on the same
(flowchart, policy) product, and the single-pass
``check_soundness_with_accepts`` is checked against a brute-force
recount.
"""

import pytest

from repro.core.mechanism import is_violation
from repro.core.errors import ReproError
from repro.core.soundness import check_soundness, check_soundness_with_accepts
from repro.flowchart import library
from repro.verify import (FACTORIES, parallel_soundness_sweep,
                          resolve_factory, soundness_sweep)
from repro.verify.enumerate import default_grid
from repro.verify.parallel import (ChunkSummary, evaluate_chunk,
                                   merge_chunks)

FLOWCHARTS = [library.forgetting_program(), library.parity_program(),
              library.max_program()]


def rows(results):
    return [(r.program_name, r.policy_name, r.mechanism_name,
             r.sound, r.accepts, r.domain_size) for r in results]


@pytest.fixture(scope="module")
def serial_baseline():
    return soundness_sweep(FLOWCHARTS, FACTORIES["surveillance"])


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_executor_matches_serial_sweep(executor, serial_baseline):
    parallel = parallel_soundness_sweep(
        FLOWCHARTS, "surveillance", executor=executor, max_workers=2,
        chunk_size=5)
    assert rows(parallel) == rows(serial_baseline)


def test_process_executor_matches_serial_sweep(serial_baseline):
    parallel = parallel_soundness_sweep(
        FLOWCHARTS, "surveillance", executor="process", max_workers=2,
        chunk_size=7)
    assert rows(parallel) == rows(serial_baseline)


def test_auto_executor_small_product_stays_correct():
    # 3^k points per pair is far below the auto-serial threshold, so
    # "auto" degrades to serial — and must still match.
    auto = parallel_soundness_sweep(FLOWCHARTS, "program", executor="auto")
    serial = soundness_sweep(FLOWCHARTS, FACTORIES["program"])
    assert rows(auto) == rows(serial)


def test_callable_factory_accepted_by_thread_executor():
    def factory(flowchart, policy, domain):
        return FACTORIES["surveillance"](flowchart, policy, domain)

    parallel = parallel_soundness_sweep(
        [library.parity_program()], factory, executor="thread",
        max_workers=2, chunk_size=3)
    serial = soundness_sweep([library.parity_program()], factory)
    assert rows(parallel) == rows(serial)


def test_process_executor_rejects_unpicklable_factory():
    with pytest.raises(ReproError, match="pickling"):
        parallel_soundness_sweep(
            [library.parity_program()],
            lambda flowchart, policy, domain:
                FACTORIES["surveillance"](flowchart, policy, domain),
            executor="process")


def test_unknown_executor_and_factory_rejected():
    with pytest.raises(ReproError, match="executor"):
        parallel_soundness_sweep(FLOWCHARTS, "surveillance",
                                 executor="gpu")
    with pytest.raises(ReproError, match="factory"):
        resolve_factory("quantum")


def test_chunk_merge_equals_whole_domain_summary():
    flowchart = library.max_program()
    domain = default_grid(flowchart.arity)
    from repro.core.policy import allow
    policy = allow(1, arity=flowchart.arity)
    mechanism = FACTORIES["surveillance"](flowchart, policy, domain)

    points = list(domain)
    whole = evaluate_chunk(mechanism, policy, points)
    split = [evaluate_chunk(mechanism, policy, points[i:i + 2])
             for i in range(0, len(points), 2)]
    assert merge_chunks(split) == merge_chunks([whole])


def test_merge_detects_cross_chunk_conflict():
    # Same policy class in two chunks, different representatives: the
    # conflict is only visible at merge time.
    agree = ChunkSummary(1, {(): "A"}, False)
    differ = ChunkSummary(1, {(): "B"}, False)
    sound, accepts = merge_chunks([agree, differ])
    assert not sound and accepts == 2
    sound, _ = merge_chunks([agree, ChunkSummary(0, {(): "A"}, False)])
    assert sound


def test_single_pass_accepts_equals_brute_force():
    from repro.core.policy import allow
    flowchart = library.forgetting_program()
    domain = default_grid(flowchart.arity)
    policy = allow(2, arity=flowchart.arity)
    mechanism = FACTORIES["surveillance"](flowchart, policy, domain)

    report, accepts = check_soundness_with_accepts(mechanism, policy, domain)
    brute_accepts = sum(
        1 for point in domain if not is_violation(mechanism(*point)))
    assert accepts == brute_accepts
    assert report.sound == check_soundness(mechanism, policy, domain).sound


# ---------------------------------------------------------------------------
# Fuel threading (regression: fuel used to be accepted and ignored)
# ---------------------------------------------------------------------------

class TestFuelThreading:
    def test_tiny_fuel_changes_results_and_matches_serial(self):
        # gcd loops long enough that fuel=3 truncates every run, so the
        # sweep's verdicts and acceptance counts shift; the parallel
        # sweep must shift identically.  (Before the fix, the parallel
        # sweep accepted fuel and silently dropped it on the way to the
        # mechanism factories.)
        flowcharts = [library.gcd_program()]
        serial_tiny = soundness_sweep(flowcharts, FACTORIES["surveillance"],
                                      fuel=3)
        serial_default = soundness_sweep(flowcharts,
                                         FACTORIES["surveillance"])
        assert rows(serial_tiny) != rows(serial_default)
        for executor in ("serial", "thread", "process"):
            parallel = parallel_soundness_sweep(
                flowcharts, "surveillance", fuel=3, executor=executor,
                max_workers=2, chunk_size=3)
            assert rows(parallel) == rows(serial_tiny), executor

    def test_exhausted_run_yields_distinguished_fuel_notice(self):
        from repro.verify.enumerate import fuel_notice

        flowchart = library.gcd_program()
        domain = default_grid(flowchart.arity)
        from repro.core.policy import allow
        policy = allow(1, 2, arity=flowchart.arity)
        mechanism = FACTORIES["surveillance"](flowchart, policy, domain,
                                              fuel=2)
        summary = evaluate_chunk(mechanism, policy, list(domain))
        assert summary.accepts == 0
        assert all(output == fuel_notice(2)
                   for output in summary.classes.values())

    def test_legacy_three_arg_factory_rejected_for_explicit_fuel(self):
        def legacy(flowchart, policy, domain):
            return FACTORIES["surveillance"](flowchart, policy, domain)

        with pytest.raises(ReproError, match="fuel"):
            parallel_soundness_sweep([library.parity_program()], legacy,
                                     fuel=7, executor="thread",
                                     max_workers=2)


# ---------------------------------------------------------------------------
# Argument validation
# ---------------------------------------------------------------------------

class TestValidation:
    @pytest.mark.parametrize("chunk_size", [0, -3])
    def test_nonpositive_chunk_size_rejected(self, chunk_size):
        with pytest.raises(ReproError, match="chunk_size"):
            parallel_soundness_sweep(FLOWCHARTS, "surveillance",
                                     executor="thread",
                                     chunk_size=chunk_size)

    @pytest.mark.parametrize("max_workers", [0, -1])
    def test_nonpositive_max_workers_rejected(self, max_workers):
        with pytest.raises(ReproError, match="max_workers"):
            parallel_soundness_sweep(FLOWCHARTS, "surveillance",
                                     executor="thread",
                                     max_workers=max_workers)

    def test_nonpositive_chunk_timeout_rejected(self):
        with pytest.raises(ReproError, match="chunk_timeout"):
            parallel_soundness_sweep(FLOWCHARTS, "surveillance",
                                     executor="thread", chunk_timeout=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ReproError, match="max_chunk_retries"):
            parallel_soundness_sweep(FLOWCHARTS, "surveillance",
                                     executor="thread",
                                     max_chunk_retries=-1)


# ---------------------------------------------------------------------------
# Fault tolerance: retries, inline recovery, pool degradation, timeouts
# ---------------------------------------------------------------------------

class TestFaultTolerance:
    def test_injected_failure_is_retried_not_fatal(self, monkeypatch,
                                                   serial_baseline):
        from repro import obs
        from repro.verify import parallel as parallel_module

        def injector(pair, chunk, attempt):
            return pair == 0 and chunk == 0 and attempt == 0

        monkeypatch.setattr(parallel_module, "_FAIL_INJECTOR", injector)
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            results = parallel_soundness_sweep(
                FLOWCHARTS, "surveillance", executor="thread",
                max_workers=2, chunk_size=5)
        assert rows(results) == rows(serial_baseline)
        retries = ring.events("worker_retry")
        assert retries and retries[0]["pair"] == 0
        assert "injected" in retries[0]["reason"]
        counters = obs.snapshot()["counters"]
        assert counters["sweep.chunks_retried"] >= 1

    def test_injected_process_failure_is_retried(self, monkeypatch,
                                                 serial_baseline):
        from repro.verify import parallel as parallel_module

        monkeypatch.setattr(
            parallel_module, "_FAIL_INJECTOR",
            lambda pair, chunk, attempt:
                pair == 1 and chunk == 0 and attempt == 0)
        results = parallel_soundness_sweep(
            FLOWCHARTS, "surveillance", executor="process",
            max_workers=2, chunk_size=7)
        assert rows(results) == rows(serial_baseline)

    def test_poisoned_chunk_recovered_inline(self, monkeypatch,
                                             serial_baseline):
        from repro import obs
        from repro.verify import parallel as parallel_module

        # Chunk (0, 0) fails on every pooled attempt; after the retry
        # budget the parent evaluates it inline, so the sweep still
        # completes with exact results.
        monkeypatch.setattr(
            parallel_module, "_FAIL_INJECTOR",
            lambda pair, chunk, attempt: (pair, chunk) == (0, 0))
        with obs.observed(reset=True):
            results = parallel_soundness_sweep(
                FLOWCHARTS, "surveillance", executor="thread",
                max_workers=2, chunk_size=5, max_chunk_retries=1)
        assert rows(results) == rows(serial_baseline)
        counters = obs.snapshot()["counters"]
        assert counters["sweep.chunks_failed"] == 1
        assert counters["sweep.chunks_retried"] == 1

    def test_broken_process_pool_degrades_to_thread(self, monkeypatch,
                                                    serial_baseline):
        from concurrent.futures import BrokenExecutor

        from repro import obs
        from repro.verify import parallel as parallel_module

        class ExplodingPool:
            def __init__(self, max_workers=None):
                pass

            def submit(self, *args, **kwargs):
                raise BrokenExecutor("simulated dead pool")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor",
                            ExplodingPool)
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            results = parallel_soundness_sweep(
                FLOWCHARTS, "surveillance", executor="process",
                max_workers=2, chunk_size=5)
        assert rows(results) == rows(serial_baseline)
        degraded = ring.events("pool_degraded")
        assert degraded
        assert degraded[0]["from_mode"] == "process"
        assert degraded[0]["to_mode"] == "thread"

    def test_timed_out_chunk_is_retried(self, monkeypatch, serial_baseline):
        from repro import obs
        from repro.verify import parallel as parallel_module

        def delay(pair, chunk, attempt):
            return 0.6 if (pair, chunk) == (0, 0) and attempt == 0 else 0.0

        monkeypatch.setattr(parallel_module, "_DELAY_INJECTOR", delay)
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            results = parallel_soundness_sweep(
                FLOWCHARTS, "surveillance", executor="thread",
                max_workers=2, chunk_size=5, chunk_timeout=0.15)
        assert rows(results) == rows(serial_baseline)
        retries = ring.events("worker_retry")
        assert retries and "timeout" in retries[0]["reason"]

    def test_progress_callback_sees_every_pair(self):
        seen = []
        results = parallel_soundness_sweep(
            FLOWCHARTS, "surveillance", executor="thread", max_workers=2,
            chunk_size=5,
            progress=lambda completed, total, result:
                seen.append((completed, total, result.program_name)))
        assert len(seen) == len(results)
        assert seen[-1][0] == len(results)
        assert all(total == len(results) for _, total, _ in seen)


class TestRetryBackoff:
    def test_attempt_zero_is_free(self):
        from repro.verify.parallel import retry_backoff
        assert retry_backoff(0, 0, 0) == 0.0
        assert retry_backoff(3, 7, 0, seed=9) == 0.0

    def test_deterministic_in_seed_and_coordinates(self):
        from repro.verify.parallel import retry_backoff
        first = [retry_backoff(pair, chunk, attempt, seed=5)
                 for pair in range(3) for chunk in range(3)
                 for attempt in range(1, 5)]
        second = [retry_backoff(pair, chunk, attempt, seed=5)
                  for pair in range(3) for chunk in range(3)
                  for attempt in range(1, 5)]
        assert first == second
        assert len(set(first)) > 1  # jitter actually varies
        assert first != [retry_backoff(pair, chunk, attempt, seed=6)
                         for pair in range(3) for chunk in range(3)
                         for attempt in range(1, 5)]

    def test_exponential_base_with_bounded_jitter(self):
        from repro.verify.parallel import (_BACKOFF_BASE_S, _BACKOFF_CAP_S,
                                           retry_backoff)
        for attempt in range(1, 12):
            base = min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * 2 ** (attempt - 1))
            value = retry_backoff(0, 0, attempt, seed=1)
            assert 0.5 * base <= value <= base
        # The ladder is capped: deep attempts never exceed the cap.
        assert retry_backoff(0, 0, 50, seed=1) <= _BACKOFF_CAP_S

    def test_retried_sweep_rows_stay_identical(self, serial_baseline):
        # The backoff sleeps ride the worker-side delay channel; rows
        # must stay bit-identical however many retries fire.
        from repro.verify import parallel as parallel_module

        failures = {(0, 0, 0), (0, 0, 1), (1, 0, 0)}
        original = parallel_module._FAIL_INJECTOR
        parallel_module._FAIL_INJECTOR = (
            lambda pair, chunk, attempt: (pair, chunk, attempt) in failures)
        try:
            results = parallel_soundness_sweep(
                FLOWCHARTS, "surveillance", executor="thread",
                max_workers=2, chunk_size=5, max_chunk_retries=3)
        finally:
            parallel_module._FAIL_INJECTOR = original
        assert rows(results) == rows(serial_baseline)
