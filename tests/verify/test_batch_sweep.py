"""Sweeps under ``backend="batch"``: same rows, chunk-level dispatch.

The batch tier changes *how* a sweep chunk is evaluated (one
structure-of-arrays call instead of a per-point loop), never *what* it
computes: every test here pins the batch sweep's rows to the per-point
sweep's, across families, budgets, executors, lane engines, chaos
plans, and checkpoint resume — and checks that the backend that
actually evaluated each pair is recorded.
"""

import pytest

from repro import obs
from repro.core import ProductDomain
from repro.core.errors import ReproError, SweepInterruptedError
from repro.flowchart import library as figure_library
from repro.verify import FaultPlan, chaos, parallel_soundness_sweep
from repro.verify.checkpoint import load_checkpoint

PROGRAMS = [figure_library.forgetting_program(),
            figure_library.parity_program()]


def grid(arity):
    return ProductDomain.integer_grid(0, 2, arity)


def rows(results):
    return [(r.program_name, r.policy_name, r.sound, r.accepts)
            for r in results]


def sweep(family="program", backend=None, programs=None, **kwargs):
    kwargs.setdefault("grid", grid)
    kwargs.setdefault("executor", "serial")
    return parallel_soundness_sweep(programs or PROGRAMS, family,
                                    backend=backend, **kwargs)


class TestRowParity:
    @pytest.mark.parametrize("family", ["program", "surveillance"])
    def test_batch_rows_match_per_point_rows(self, family):
        assert rows(sweep(family, "batch")) == rows(sweep(family))

    @pytest.mark.parametrize("family", ["program", "surveillance"])
    def test_all_fault_sweep_matches(self, family):
        # fuel=1 makes every point fault: the batch summary must carry
        # the same distinguished fuel notice per class as the per-point
        # walk does.
        assert (rows(sweep(family, "batch", fuel=1))
                == rows(sweep(family, fuel=1)))

    @pytest.mark.parametrize("family", ["program", "surveillance"])
    def test_capped_sweep_matches(self, family):
        assert (rows(sweep(family, "batch", value_cap=4))
                == rows(sweep(family, value_cap=4)))

    def test_python_lanes_match(self):
        # Explicit lane selection (the serving path) — no env mutation.
        assert (rows(sweep("program", "batch", lane_engine="python"))
                == rows(sweep("program")))
        assert (rows(sweep("surveillance", "batch", lane_engine="python"))
                == rows(sweep("surveillance")))

    def test_chunked_and_pooled_executors_match(self):
        baseline = rows(sweep("program"))
        assert rows(sweep("program", "batch", chunk_size=3)) == baseline
        assert rows(sweep("program", "batch", executor="thread",
                          max_workers=2, chunk_size=3)) == baseline

    def test_gcd_wide_grid_matches(self):
        programs = [figure_library.gcd_program()]
        wide = lambda arity: ProductDomain.integer_grid(1, 6, arity)
        assert (rows(sweep("program", "batch", programs=programs,
                           grid=wide))
                == rows(sweep("program", programs=programs, grid=wide)))

    def test_timed_family_has_no_batch_path_but_still_sweeps(self):
        # Families outside the batch allowlist quietly stay per-point.
        result = sweep("timed", "batch")
        assert rows(result) == rows(sweep("timed"))
        assert all(set(r.backends) == {"compiled"} for r in result)


class TestBackendAccounting:
    def test_batch_chunks_recorded(self):
        for result in sweep("program", "batch", chunk_size=3):
            assert set(result.backends) == {"batch"}
            assert sum(result.backends.values()) >= 1

    def test_per_point_sweep_records_its_tier(self):
        for result in sweep("program", "compiled"):
            assert set(result.backends) == {"compiled"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            sweep("program", "warp")


class TestChaosAndQuarantine:
    def test_poisoned_point_quarantined_identically(self):
        # A chaos poison point crashes its chunk; quarantine bisects it
        # per-point regardless of backend, so the verdicts match the
        # per-point run and the surviving chunks are labelled with the
        # tier that actually re-evaluated them.
        plan = FaultPlan(seed=3, poison_points=((1, 2),))
        chaos.install(plan)
        try:
            batch_results = sweep("program", "batch")
        finally:
            chaos.clear()
        chaos.install(plan)
        try:
            plain_results = sweep("program")
        finally:
            chaos.clear()
        assert rows(batch_results) == rows(plain_results)
        backends = set()
        for result in batch_results:
            backends |= set(result.backends)
        assert "compiled" in backends  # the degraded pair is visible


class TestCheckpointResume:
    def test_interrupt_and_resume_under_batch(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        baseline = rows(sweep("program", chunk_size=3))

        with pytest.raises(SweepInterruptedError):
            sweep("program", "batch", chunk_size=3, checkpoint=path,
                  stop=lambda: "signal")
        resumed = sweep("program", "batch", chunk_size=3,
                        checkpoint=path, resume=True)
        assert rows(resumed) == baseline

        _, summaries, _ = load_checkpoint(path)
        assert summaries  # something was journalled across the two runs
        assert {summary.backend for summary in summaries.values()} == {
            "batch"}

    def test_resume_across_backends_is_legitimate(self, tmp_path):
        # Rows are backend-independent, so a journal written per-point
        # may finish under batch (and vice versa) with identical rows.
        path = str(tmp_path / "ck.jsonl")
        with pytest.raises(SweepInterruptedError):
            sweep("program", chunk_size=3, checkpoint=path,
                  stop=lambda: "signal")
        resumed = sweep("program", "batch", chunk_size=3,
                        checkpoint=path, resume=True)
        assert rows(resumed) == rows(sweep("program", chunk_size=3))


class TestObservability:
    def test_batch_events_emitted(self):
        from repro.flowchart.batchpath import clear_batch_caches

        clear_batch_caches()
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            sweep("program", "batch")
        compiled = ring.events("batch_compiled")
        assert compiled and all(event["engine"] in ("numpy", "python")
                                for event in compiled)

    def test_explain_mode_degrades_to_per_point(self):
        # --explain replays per-point provenance; the batch path would
        # skip the instrumented per-point run, so explain wins.
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True, explain=True):
            results = sweep("surveillance", "batch")
        assert rows(results) == rows(sweep("surveillance"))
        assert ring.events("explanation")
