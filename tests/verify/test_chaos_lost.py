"""The chaos ``lost`` fault kind: a hung worker only a timeout saves.

A ``lost`` decision makes the chunk attempt sleep ``lost_seconds`` —
far beyond any reasonable ``chunk_timeout`` — simulating a worker that
took the task and went silent.  Nothing inside the worker ever raises,
so the *only* recovery path is the parent's per-chunk timeout, which
resubmits the attempt; the re-roll at ``attempt + 1`` is a fresh coin
from the same seed, so a recovered sweep is still fully deterministic
and its rows bit-identical to the serial sweep's.
"""

import pytest

from repro import obs
from repro.flowchart import library
from repro.verify import FACTORIES, parallel_soundness_sweep, soundness_sweep
from repro.verify import chaos
from repro.verify.chaos import FaultPlan

FLOWCHARTS = [library.forgetting_program()]

# Chosen so attempt 0 of at least one chunk rolls lost but the retry
# rolls clean — asserted below, so a hash change cannot silently turn
# this into a no-op test.
SEED = 3
LOST = 0.35


def rows(results):
    return [(r.program_name, r.policy_name, r.mechanism_name,
             r.sound, r.accepts, r.domain_size) for r in results]


@pytest.fixture(autouse=True)
def clear_plan():
    yield
    chaos.clear()


def test_lost_decision_is_a_long_delay():
    plan = FaultPlan(seed=SEED, lost=1.0, lost_seconds=9.0)
    decision = plan.decide(0, 0, 0)
    assert not decision.crash
    assert decision.delay == 9.0


def test_lost_chunk_recovered_only_by_chunk_timeout():
    serial = soundness_sweep(FLOWCHARTS, FACTORIES["surveillance"])
    plan = FaultPlan(seed=SEED, lost=LOST, lost_seconds=2.0)
    hit = [(pair, chunk) for pair in range(4) for chunk in range(4)
           if plan.decide(pair, chunk, 0).delay == 2.0]
    assert hit, "seed must lose at least one first attempt"
    chaos.install(plan)
    ring = obs.RingBufferSink()
    with obs.observed(sinks=[ring], reset=True):
        results = parallel_soundness_sweep(
            FLOWCHARTS, "surveillance", executor="thread", max_workers=2,
            chunk_size=5, chunk_timeout=0.2, max_chunk_retries=4)
    assert rows(results) == rows(serial)
    retries = ring.events("worker_retry")
    # A lost worker never raises — every retry it forces is a timeout.
    assert retries
    assert all("timeout" in event["reason"] for event in retries)


def test_lost_sweep_is_bit_identical_across_runs():
    chaos.install(FaultPlan(seed=SEED, lost=LOST, lost_seconds=2.0))
    first = parallel_soundness_sweep(
        FLOWCHARTS, "surveillance", executor="thread", max_workers=2,
        chunk_size=5, chunk_timeout=0.2, max_chunk_retries=4)
    second = parallel_soundness_sweep(
        FLOWCHARTS, "surveillance", executor="thread", max_workers=2,
        chunk_size=5, chunk_timeout=0.2, max_chunk_retries=4)
    assert rows(first) == rows(second)
