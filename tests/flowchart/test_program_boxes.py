"""Unit tests for repro.flowchart.boxes and .program (wellformedness)."""

import pytest

from repro.core.errors import FlowchartError
from repro.flowchart.boxes import (AssignBox, DecisionBox, HaltBox, StartBox)
from repro.flowchart.expr import Const, var
from repro.flowchart.program import Flowchart


def simple_boxes():
    return {
        "start": StartBox("assign"),
        "assign": AssignBox("y", var("x1") + 1, "halt"),
        "halt": HaltBox(),
    }


class TestBoxes:
    def test_successors(self):
        assert StartBox("a").successors() == ("a",)
        assert AssignBox("y", Const(1), "b").successors() == ("b",)
        assert DecisionBox(var("x").eq(0), "t", "f").successors() == ("t", "f")
        assert HaltBox().successors() == ()

    def test_read_and_written_variables(self):
        assign = AssignBox("y", var("a") + var("b"), "n")
        assert assign.read_variables() == {"a", "b"}
        assert assign.written_variable() == "y"
        decision = DecisionBox(var("c").eq(0), "t", "f")
        assert decision.read_variables() == {"c"}
        assert decision.written_variable() is None

    def test_decision_requires_predicate(self):
        with pytest.raises(FlowchartError):
            DecisionBox(Const(1), "t", "f")

    def test_assign_requires_expression(self):
        with pytest.raises(FlowchartError):
            AssignBox("y", var("x").eq(0), "n")

    def test_assign_requires_target_name(self):
        with pytest.raises(FlowchartError):
            AssignBox("", Const(1), "n")


class TestWellformedness:
    def test_valid_flowchart(self):
        flowchart = Flowchart(simple_boxes(), ["x1"])
        assert flowchart.start_id == "start"
        assert flowchart.arity == 1

    def test_exactly_one_start(self):
        boxes = simple_boxes()
        boxes["start2"] = StartBox("halt")
        with pytest.raises(FlowchartError, match="exactly one start"):
            Flowchart(boxes, ["x1"])

    def test_no_start_rejected(self):
        with pytest.raises(FlowchartError):
            Flowchart({"halt": HaltBox()}, ["x1"])

    def test_dangling_successor_rejected(self):
        boxes = simple_boxes()
        boxes["assign"] = AssignBox("y", Const(1), "nowhere")
        with pytest.raises(FlowchartError, match="missing box"):
            Flowchart(boxes, ["x1"])

    def test_unreachable_box_rejected(self):
        """The paper requires a *connected* graph."""
        boxes = simple_boxes()
        boxes["island"] = AssignBox("r", Const(1), "halt")
        with pytest.raises(FlowchartError, match="unreachable"):
            Flowchart(boxes, ["x1"])

    def test_halt_required(self):
        boxes = {
            "start": StartBox("loop"),
            "loop": AssignBox("y", Const(1), "loop"),
        }
        with pytest.raises(FlowchartError, match="no halt"):
            Flowchart(boxes, ["x1"])

    def test_assignment_to_input_rejected(self):
        boxes = simple_boxes()
        boxes["assign"] = AssignBox("x1", Const(1), "halt")
        with pytest.raises(FlowchartError, match="input variable"):
            Flowchart(boxes, ["x1"])

    def test_duplicate_input_names_rejected(self):
        with pytest.raises(FlowchartError):
            Flowchart(simple_boxes(), ["x1", "x1"])

    def test_output_colliding_with_input_rejected(self):
        with pytest.raises(FlowchartError):
            Flowchart(simple_boxes(), ["y"], output_variable="y")

    def test_empty_flowchart_rejected(self):
        with pytest.raises(FlowchartError):
            Flowchart({}, ["x1"])


class TestQueries:
    def make(self):
        boxes = {
            "start": StartBox("d"),
            "d": DecisionBox(var("x1").eq(0), "a", "b"),
            "a": AssignBox("r", Const(1), "join"),
            "b": AssignBox("r", Const(2), "join"),
            "join": AssignBox("y", var("r"), "halt"),
            "halt": HaltBox(),
        }
        return Flowchart(boxes, ["x1", "x2"], name="diamond")

    def test_kind_queries(self):
        flowchart = self.make()
        assert flowchart.halt_ids() == ("halt",)
        assert flowchart.decision_ids() == ("d",)
        assert set(flowchart.assignment_ids()) == {"a", "b", "join"}

    def test_variable_queries(self):
        flowchart = self.make()
        assert flowchart.program_variables() == ("r",)
        assert flowchart.all_variables() == ("x1", "x2", "r", "y")
        assert flowchart.read_variables() == {"x1", "r"}

    def test_input_index_is_one_based(self):
        flowchart = self.make()
        assert flowchart.input_index("x1") == 1
        assert flowchart.input_index("x2") == 2
        assert flowchart.input_index("r") is None

    def test_predecessors(self):
        predecessors = self.make().predecessors()
        assert sorted(predecessors["join"]) == ["a", "b"]
        assert predecessors["start"] == []

    def test_reachable_covers_all(self):
        flowchart = self.make()
        assert set(flowchart.reachable_from("start")) == set(flowchart.boxes)

    def test_pretty_lists_boxes(self):
        text = self.make().pretty()
        assert "diamond" in text
        assert "[d]" in text and "[halt]" in text
