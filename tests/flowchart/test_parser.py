"""Unit tests for repro.flowchart.parser (the concrete syntax)."""

import pytest

from repro.core import ProductDomain
from repro.flowchart.interpreter import execute
from repro.flowchart.parser import ParseError, parse_policy, parse_program
from repro.flowchart.transforms import functionally_equivalent


def run(source, *inputs):
    return execute(parse_program(source).compile(), inputs).value


class TestPrograms:
    def test_assignment(self):
        assert run("program p(x1) { y := x1 * 2 + 1 }", 4) == 9

    def test_precedence(self):
        assert run("program p(x1) { y := 2 + x1 * 3 }", 4) == 14
        assert run("program p(x1) { y := (2 + x1) * 3 }", 4) == 18

    def test_unary_minus_and_division(self):
        assert run("program p(x1) { y := -x1 + 10 // 3 }", 2) == 1
        assert run("program p(x1) { y := x1 % 4 }", 11) == 3

    def test_if_else(self):
        source = """
            program p(x1) {
                if x1 == 0 { y := 10 } else { y := 20 }
            }
        """
        assert run(source, 0) == 10
        assert run(source, 5) == 20

    def test_if_without_else(self):
        source = "program p(x1) { y := 1; if x1 > 2 { y := 2 } }"
        assert run(source, 1) == 1
        assert run(source, 3) == 2

    def test_while(self):
        source = """
            program triangle(x1) {
                r := x1;
                while r != 0 {
                    y := y + r;
                    r := r - 1
                }
            }
        """
        assert run(source, 4) == 10

    def test_boolean_connectives(self):
        source = """
            program p(x1, x2) {
                if x1 == 0 and not x2 == 0 or x1 > 5 { y := 1 }
            }
        """
        assert run(source, 0, 3) == 1
        assert run(source, 0, 0) == 0
        assert run(source, 9, 0) == 1

    def test_true_false_literals(self):
        assert run("program p(x1) { while false { y := 1 }; y := 2 }",
                   0) == 2
        assert run("program p(x1) { if true { y := 7 } }", 0) == 7

    def test_skip_and_trailing_semicolons(self):
        assert run("program p(x1) { skip; y := x1; }", 3) == 3

    def test_comments(self):
        source = """
            program p(x1) {   # header comment
                y := x1       # assign
            }
        """
        assert run(source, 5) == 5

    def test_explicit_output_variable(self):
        program = parse_program(
            "program p(x1) -> out { out := x1 + 1 }")
        assert program.output_variable == "out"
        assert execute(program.compile(), (2,)).value == 3

    def test_matches_library_program(self):
        from repro.flowchart import library

        source = """
            program forgetting(x1, x2) {
                y := x1;
                if x2 == 0 { y := 0 }
            }
        """
        parsed = parse_program(source).compile()
        grid = ProductDomain.integer_grid(0, 3, 2)
        assert functionally_equivalent(parsed,
                                       library.forgetting_program(), grid)

    def test_name_and_inputs(self):
        program = parse_program("program demo(a, b, c) { y := a }")
        assert program.name == "demo"
        assert program.input_variables == ("a", "b", "c")


class TestErrors:
    @pytest.mark.parametrize("source, fragment", [
        ("program p(x1) { y := }", "expected a value"),
        ("program p(x1) { if x1 { y := 1 } }", "comparison"),
        ("program p(x1) { y := 1 } trailing", "eof"),
        ("program p() { y := 1 }", "ident"),
        ("program p(x1) { y = 1 }", "unexpected character"),
        ("p(x1) { y := 1 }", "program"),
        ("program p(x1) { y := 1 ", "}"),
    ])
    def test_syntax_errors(self, source, fragment):
        with pytest.raises(ParseError) as info:
            parse_program(source)
        assert fragment.strip("'") in str(info.value)

    def test_error_reports_line_and_column(self):
        with pytest.raises(ParseError, match=r"line 2"):
            parse_program("program p(x1) {\n y := $ }")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_program("program p(x1) { y := 1 @ }")


class TestPolicies:
    def test_allow_with_indices(self):
        policy = parse_policy("allow(1, 3)", arity=3)
        assert policy(10, 20, 30) == (10, 30)

    def test_allow_empty(self):
        assert parse_policy("allow()", arity=2)(1, 2) == ()

    def test_whitespace_tolerated(self):
        assert parse_policy("  allow( 2 )  ", arity=2).name == "allow(2)"

    def test_bad_policy_rejected(self):
        with pytest.raises(ParseError):
            parse_policy("deny(1)", arity=2)
