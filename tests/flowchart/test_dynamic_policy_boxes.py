"""Tests for the dynamic-policy IR: policy_change and downgrade boxes.

Construction/validation, parser round-trips, builder wiring, dot
rendering, and the cross-engine agreement obligation: the two new box
kinds are label-layer effects, so every execution tier must treat them
as single-step no-ops with identical (value, steps, touched) rows.
"""

import pytest

from repro.core.errors import FlowchartError
from repro.flowchart import (Downgrade, DowngradeBox, FlowchartBuilder,
                             PolicyChange, PolicyChangeBox)
from repro.flowchart.batchpath import execute_batch
from repro.flowchart.dot import to_dot
from repro.flowchart.expr import var
from repro.flowchart.fastpath import run_flowchart
from repro.flowchart.interpreter import execute
from repro.flowchart.library import dynamic_policy_suite
from repro.flowchart.parser import parse_program, unparse_program

GRID = [(a, b) for a in range(3) for b in range(3)]


class TestBoxes:
    def test_policy_change_normalises_indices(self):
        box = PolicyChangeBox((2, 1, 2), "next")
        assert box.allowed == (1, 2)
        assert box.successors() == ("next",)
        assert box.read_variables() == frozenset()

    def test_policy_change_rejects_nonpositive_indices(self):
        with pytest.raises(FlowchartError):
            PolicyChangeBox((0,), "next")

    def test_downgrade_reads_its_variable(self):
        box = DowngradeBox("y", (1,), "next")
        assert box.read_variables() == frozenset(("y",))
        assert box.indices == (1,)

    def test_downgrade_requires_indices(self):
        with pytest.raises(FlowchartError):
            DowngradeBox("y", (), "next")

    def test_validation_rejects_indices_beyond_arity(self):
        builder = FlowchartBuilder(["x1"], name="p")
        builder.start()
        builder.assign("y", var("x1"))
        builder.policy_change((2,))
        builder.halt()
        with pytest.raises(FlowchartError):
            builder.build()


class TestParser:
    def test_policy_statement_round_trips(self):
        source = ("program p(x1, x2) { y := x1; policy allow(2) }")
        rendered = unparse_program(parse_program(source))
        assert "policy allow(2)" in rendered
        assert unparse_program(parse_program(rendered)) == rendered

    def test_downgrade_statement_round_trips(self):
        source = "program p(x1, x2) { y := x1 + x2; downgrade y(1, 2) }"
        rendered = unparse_program(parse_program(source))
        assert "downgrade y(1, 2)" in rendered
        assert unparse_program(parse_program(rendered)) == rendered

    def test_empty_policy_allowed(self):
        fc = parse_program(
            "program p(x1) { y := x1; policy allow() }").compile()
        assert fc.has_dynamic_policy()
        (change_id,) = fc.policy_change_ids()
        assert fc.boxes[change_id].allowed == ()

    def test_downgrade_requires_an_index(self):
        from repro.flowchart.parser import ParseError

        with pytest.raises(ParseError):
            parse_program("program p(x1) { downgrade y() }")


class TestStructured:
    def test_stmt_compile(self):
        from repro.flowchart.structured import StructuredProgram

        program = StructuredProgram(
            ("x1",), (PolicyChange((1,)), Downgrade("y", (1,))),
            name="dyn")
        fc = program.compile()
        assert len(fc.policy_change_ids()) == 1
        assert len(fc.downgrade_ids()) == 1
        assert fc.has_dynamic_policy()


class TestDot:
    def test_both_kinds_render(self):
        fc = parse_program(
            "program p(x1, x2) { y := x1; policy allow(2); "
            "downgrade y(1) }").compile()
        rendered = to_dot(fc)
        assert "policy allow(2)" in rendered
        assert "downgrade y(1)" in rendered
        assert "hexagon" in rendered and "parallelogram" in rendered


class TestEngineAgreement:
    """interp == compiled == batch on every dynamic program and point."""

    @pytest.mark.parametrize("flowchart", dynamic_policy_suite(),
                             ids=lambda fc: fc.name)
    def test_rows_identical_across_tiers(self, flowchart):
        interp = [execute(flowchart, point) for point in GRID]
        compiled = [run_flowchart(flowchart, point, backend="compiled")
                    for point in GRID]
        batch = execute_batch(flowchart, GRID, engine="python")
        for index, (point, reference) in enumerate(zip(GRID, interp)):
            row = compiled[index]
            assert (row.value, row.steps) == (reference.value,
                                              reference.steps), point
            assert row.touched == reference.touched, point
            assert batch.value(index) == reference.value, point
            assert batch.steps(index) == reference.steps, point
            assert batch.touched(index) == reference.touched, point

    def test_new_boxes_count_one_step_each(self):
        fc = parse_program(
            "program p(x1) { y := x1; policy allow(1); "
            "downgrade y(1) }").compile()
        plain = parse_program("program p(x1) { y := x1 }").compile()
        assert (execute(fc, (5,)).steps
                == execute(plain, (5,)).steps + 2)
        assert execute(fc, (5,)).value == 5
