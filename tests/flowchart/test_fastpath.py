"""Differential tests: the compiled backend against the interpreter.

The Observability Postulate makes ``(value, steps, faults)`` the
*output* of a flowchart program, so the compiled execution engine must
reproduce all three bit-for-bit — including when fuel exhaustion
strikes and what division by zero yields.  Every flowchart in the
figure library is checked over the default sweep grid, plus targeted
edge cases the library does not exercise.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domains import ProductDomain
from repro.core.errors import (ArityMismatchError, ExecutionError,
                               FuelExhaustedError, ReproError)
from repro.core.observability import VALUE_AND_TIME, VALUE_ONLY
from repro.flowchart import (Assign, Ite, LoopExpr, StructuredProgram,
                             const, library, var)
from repro.flowchart import fastpath
from repro.flowchart.fastpath import (compile_flowchart, execute_compiled,
                                      resolve_backend, run_flowchart)
from repro.flowchart.interpreter import as_program, execute
from repro.verify.enumerate import default_grid

SUITE = library.extended_suite()


def observed(result):
    return (result.value, result.steps, result.faults)


@pytest.mark.parametrize("flowchart", SUITE,
                         ids=[fc.name for fc in SUITE])
def test_backends_agree_on_library_over_default_grid(flowchart):
    grid = default_grid(flowchart.arity)
    for point in grid:
        interpreted = execute(flowchart, point, capture_env=True)
        compiled = execute_compiled(flowchart, point, capture_env=True,
                                    memo=False)
        assert observed(interpreted) == observed(compiled)
        assert interpreted.touched == compiled.touched
        assert interpreted.env == compiled.env


@pytest.mark.parametrize("flowchart", SUITE,
                         ids=[fc.name for fc in SUITE])
def test_backends_agree_at_exact_fuel_boundary(flowchart):
    """Both complete at fuel = steps and both raise at fuel = steps - 1."""
    point = (2,) * flowchart.arity
    steps = execute(flowchart, point).steps
    assert execute_compiled(flowchart, point, fuel=steps,
                            memo=False).steps == steps
    with pytest.raises(FuelExhaustedError):
        execute(flowchart, point, fuel=steps - 1)
    with pytest.raises(FuelExhaustedError):
        execute_compiled(flowchart, point, fuel=steps - 1, memo=False)


def test_fuel_exhaustion_on_diverging_input():
    flowchart = library.timing_loop()
    with pytest.raises(FuelExhaustedError) as interp:
        execute(flowchart, (10,), fuel=5)
    with pytest.raises(FuelExhaustedError) as comp:
        execute_compiled(flowchart, (10,), fuel=5, memo=False)
    assert interp.value.fuel == comp.value.fuel == 5
    assert str(interp.value) == str(comp.value)


def test_division_and_modulus_by_zero_are_total():
    flowchart = StructuredProgram(
        ["x1", "x2"],
        [Assign("y", (var("x1") // var("x2")) + (var("x1") % var("x2")))],
        name="divmod-total",
    ).compile()
    for point in [(5, 0), (0, 0), (-7, 0), (5, 2), (-7, 2), (7, -3)]:
        interpreted = execute(flowchart, point)
        compiled = execute_compiled(flowchart, point, memo=False)
        assert observed(interpreted) == observed(compiled)
    assert execute_compiled(flowchart, (5, 0), memo=False).value == 0


def test_ite_expression_compiles():
    flowchart = StructuredProgram(
        ["x1"],
        [Assign("y", Ite(var("x1").gt(0), var("x1") * 2, const(9)))],
        name="ite-expr",
    ).compile()
    for point in [(-1,), (0,), (1,), (5,)]:
        assert observed(execute(flowchart, point)) == observed(
            execute_compiled(flowchart, point, memo=False))


class TestLoopExpr:
    def flowchart(self, loop_fuel=10_000):
        summation = LoopExpr(
            var("r").gt(0),
            {"r": var("r") - 1, "acc": var("acc") + var("r")},
            "acc", fuel=loop_fuel)
        return StructuredProgram(
            ["x1"],
            [Assign("r", var("x1")), Assign("y", summation)],
            name="loopexpr-sum",
        ).compile()

    def test_agreement(self):
        flowchart = self.flowchart()
        for point in [(0,), (1,), (5,), (30,)]:
            interpreted = execute(flowchart, point, capture_env=True)
            compiled = execute_compiled(flowchart, point, capture_env=True,
                                        memo=False)
            assert observed(interpreted) == observed(compiled)
            assert interpreted.env == compiled.env

    def test_loop_fuel_error_reproduced(self):
        flowchart = self.flowchart(loop_fuel=3)
        with pytest.raises(ExecutionError):
            execute(flowchart, (10,))
        with pytest.raises(ExecutionError):
            execute_compiled(flowchart, (10,), memo=False)


@settings(max_examples=60, deadline=None)
@given(x1=st.integers(-50, 200), x2=st.integers(-50, 200))
def test_property_gcd_agreement(x1, x2):
    # gcd diverges on negative inputs; cap fuel so divergence shows up
    # as FuelExhaustedError and both backends must agree on *that* too.
    flowchart = library.gcd_program()

    def outcome(runner):
        try:
            return ("ok",) + observed(runner())
        except FuelExhaustedError as error:
            return ("fuel", str(error))

    assert outcome(lambda: execute(flowchart, (x1, x2), fuel=2000)) == \
        outcome(lambda: execute_compiled(flowchart, (x1, x2), fuel=2000,
                                         memo=False))


class TestAsProgramBackends:
    GRID = ProductDomain.integer_grid(0, 3, 2)

    def test_explicit_backends_agree(self):
        flowchart = library.forgetting_program()
        compiled_q = as_program(flowchart, self.GRID, VALUE_AND_TIME,
                                backend="compiled")
        interpreted_q = as_program(flowchart, self.GRID, VALUE_AND_TIME,
                                   backend="interpreted")
        for point in self.GRID:
            assert compiled_q(*point) == interpreted_q(*point)

    def test_env_var_override(self, monkeypatch):
        # The env default is cached at first use; a mid-process change
        # is honoured only after reset_backend_cache() (the documented
        # protocol, mirroring reset_value_cap_cache).
        monkeypatch.setenv(fastpath.BACKEND_ENV, "interpreted")
        fastpath.reset_backend_cache()
        try:
            assert resolve_backend() == "interpreted"
            monkeypatch.setenv(fastpath.BACKEND_ENV, "compiled")
            assert resolve_backend() == "interpreted"  # cached
            fastpath.reset_backend_cache()
            assert resolve_backend() == "compiled"
            # Explicit argument beats the environment.
            assert resolve_backend("interpreted") == "interpreted"
        finally:
            monkeypatch.delenv(fastpath.BACKEND_ENV)
            fastpath.reset_backend_cache()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            resolve_backend("jit")
        with pytest.raises(ReproError):
            as_program(library.mixer_program(), self.GRID,
                       backend="jit")(0, 0)

    def test_value_only_projection(self):
        q = as_program(library.mixer_program(), self.GRID, VALUE_ONLY,
                       backend="compiled")
        assert q(1, 2) == 6


class TestCompilationCache:
    def test_compiled_function_reused(self):
        flowchart = library.parity_program()
        first = compile_flowchart(flowchart)
        second = compile_flowchart(flowchart)
        assert first is second

    def test_distinct_flowcharts_compile_separately(self):
        assert (compile_flowchart(library.parity_program())
                is not compile_flowchart(library.parity_program()))

    def test_source_is_inspectable(self):
        compiled = compile_flowchart(library.accumulate_program())
        assert "def _compiled" in compiled.source
        assert "_touched" in compiled.source


class TestResultMemo:
    def test_repeated_execution_memoised(self):
        fastpath.clear_result_memo()
        flowchart = library.gcd_program()
        first = execute_compiled(flowchart, (12, 8))
        second = execute_compiled(flowchart, (12, 8))
        assert second is first  # same memo entry
        assert fastpath.memo_stats()["hits"] >= 1

    def test_memo_distinguishes_fuel(self):
        fastpath.clear_result_memo()
        flowchart = library.timing_loop()
        ok = execute_compiled(flowchart, (3,), fuel=100)
        assert ok.steps == execute_compiled(flowchart, (3,), fuel=99).steps
        # The fuel=5 variant must not be served from the fuel=100 entry.
        with pytest.raises(FuelExhaustedError):
            execute_compiled(flowchart, (3,), fuel=5)

    def test_env_capture_not_memoised(self):
        fastpath.clear_result_memo()
        flowchart = library.mixer_program()
        with_env = execute_compiled(flowchart, (1, 2), capture_env=True)
        bare = execute_compiled(flowchart, (1, 2))
        assert with_env.env is not None
        assert bare.env is None


class TestDispatchAndFallback:
    def test_record_trace_falls_back_to_interpreter(self):
        flowchart = library.forgetting_program()
        traced = execute_compiled(flowchart, (1, 0), record_trace=True)
        assert traced.trace is not None
        assert traced.trace == execute(flowchart, (1, 0),
                                       record_trace=True).trace

    def test_arity_mismatch_matches_interpreter(self):
        flowchart = library.mixer_program()
        with pytest.raises(ArityMismatchError):
            execute_compiled(flowchart, (1,), memo=False)

    def test_run_flowchart_dispatches(self):
        flowchart = library.max_program()
        compiled = run_flowchart(flowchart, (3, 5), backend="compiled")
        interpreted = run_flowchart(flowchart, (3, 5), backend="interpreted")
        assert observed(compiled) == observed(interpreted)
