"""Unit tests for repro.flowchart.interpreter (step-counted execution)."""

import pytest

from repro.core import ProductDomain, VALUE_AND_TIME, VALUE_ONLY
from repro.core.errors import ArityMismatchError, FuelExhaustedError
from repro.flowchart.boxes import AssignBox, DecisionBox, HaltBox, StartBox
from repro.flowchart.expr import Const, var
from repro.flowchart.interpreter import (as_program, execute,
                                         initial_environment, running_time)
from repro.flowchart.library import timing_loop
from repro.flowchart.program import Flowchart


def straightline():
    boxes = {
        "start": StartBox("a1"),
        "a1": AssignBox("r", var("x1") * 2, "a2"),
        "a2": AssignBox("y", var("r") + var("x2"), "halt"),
        "halt": HaltBox(),
    }
    return Flowchart(boxes, ["x1", "x2"], name="line")


def looper():
    boxes = {
        "start": StartBox("init"),
        "init": AssignBox("r", var("x1"), "test"),
        "test": DecisionBox(var("r").ne(0), "dec", "out"),
        "dec": AssignBox("r", var("r") - 1, "test"),
        "out": AssignBox("y", Const(1), "halt"),
        "halt": HaltBox(),
    }
    return Flowchart(boxes, ["x1"], name="loop")


class TestExecution:
    def test_computes_value(self):
        result = execute(straightline(), (3, 4))
        assert result.value == 10

    def test_initialisation(self):
        env = initial_environment(straightline(), (3, 4))
        assert env == {"x1": 3, "x2": 4, "r": 0, "y": 0}

    def test_output_defaults_to_zero(self):
        boxes = {"start": StartBox("halt"), "halt": HaltBox()}
        flowchart = Flowchart(boxes, ["x1"], name="empty")
        assert execute(flowchart, (9,)).value == 0

    def test_arity_checked(self):
        with pytest.raises(ArityMismatchError):
            execute(straightline(), (1,))

    def test_branching(self):
        assert execute(looper(), (0,)).value == 1
        assert execute(looper(), (5,)).value == 1


class TestStepCounting:
    def test_straightline_steps(self):
        # a1, a2, halt = 3 steps (start is free).
        assert execute(straightline(), (0, 0)).steps == 3

    def test_loop_steps_grow_linearly(self):
        """The timing channel: steps are 2 per iteration + constant."""
        steps = [execute(looper(), (n,)).steps for n in range(5)]
        deltas = [b - a for a, b in zip(steps, steps[1:])]
        assert deltas == [2, 2, 2, 2]

    def test_running_time_helper(self):
        assert running_time(straightline(), (0, 0)) == 3

    def test_steps_deterministic(self):
        flowchart = timing_loop()
        assert (execute(flowchart, (7,)).steps
                == execute(flowchart, (7,)).steps)


class TestFuel:
    def test_diverging_program_raises(self):
        boxes = {
            "start": StartBox("spin"),
            "spin": AssignBox("r", var("r") + 1, "test"),
            "test": DecisionBox(var("r").ge(0), "spin", "halt"),
            "halt": HaltBox(),
        }
        flowchart = Flowchart(boxes, ["x1"], name="spin")
        with pytest.raises(FuelExhaustedError) as info:
            execute(flowchart, (0,), fuel=50)
        assert info.value.fuel == 50

    def test_fuel_large_enough_succeeds(self):
        assert execute(looper(), (10,), fuel=100).value == 1


class TestTrace:
    def test_trace_records_box_order(self):
        result = execute(straightline(), (1, 1), record_trace=True)
        assert result.trace == ("a1", "a2", "halt")

    def test_trace_off_by_default(self):
        assert execute(straightline(), (1, 1)).trace is None

    def test_final_environment_opt_in(self):
        result = execute(straightline(), (3, 4), capture_env=True)
        assert result.env["r"] == 6
        assert result.env["y"] == 10

    def test_environment_not_captured_by_default(self):
        # The hot path (as_program, the sweep runners) needs only
        # (value, steps, faults); env snapshots are opt-in.
        assert execute(straightline(), (3, 4)).env is None


class TestAsProgram:
    GRID = ProductDomain.integer_grid(0, 3, 2)

    def test_value_only(self):
        q = as_program(straightline(), self.GRID, VALUE_ONLY)
        assert q(3, 3) == 9

    def test_value_and_time(self):
        q = as_program(straightline(), self.GRID, VALUE_AND_TIME)
        assert q(3, 3) == (9, 3)
        assert "time" in q.name

    def test_observation_projection_consistency(self):
        plain = as_program(straightline(), self.GRID, VALUE_ONLY)
        timed = as_program(straightline(), self.GRID, VALUE_AND_TIME)
        for point in self.GRID:
            assert timed(*point)[0] == plain(*point)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ArityMismatchError):
            as_program(straightline(), ProductDomain.integer_grid(0, 1, 3))


class TestMemoryFootprint:
    """The `touched` observable: the page-fault proxy of Section 6."""

    def test_touched_covers_reads_and_writes(self):
        result = execute(straightline(), (1, 2))
        assert result.touched == {"x1", "x2", "r", "y"}
        assert result.faults == 4

    def test_decision_variables_are_touched(self):
        result = execute(looper(), (0,))
        assert "r" in result.touched

    def test_output_always_touched(self):
        boxes = {"start": StartBox("halt"), "halt": HaltBox()}
        flowchart = Flowchart(boxes, ["x1"], name="empty")
        assert execute(flowchart, (9,)).touched == {"y"}

    def test_observation_carries_fault_attribute(self):
        observation = execute(straightline(), (1, 2)).observation()
        assert observation.attributes["faults"] == 4

    def test_fault_channel_program_separation(self):
        """Equal value and time, different footprint (experiment E27)."""
        from repro.flowchart.library import fault_channel_program

        flowchart = fault_channel_program()
        zero = execute(flowchart, (0,))
        nonzero = execute(flowchart, (1,))
        assert zero.value == nonzero.value
        assert zero.steps == nonzero.steps
        assert zero.faults != nonzero.faults
