"""Unit tests for repro.flowchart.structured (the if/while front-end)."""

import pytest

from repro.core.errors import FlowchartError
from repro.flowchart.expr import Const, var
from repro.flowchart.interpreter import execute
from repro.flowchart.structured import (Assign, If, Skip, StructuredProgram,
                                        While, compile_structured, seq)


def run(program, *inputs):
    return execute(program.compile(), inputs).value


class TestCompilation:
    def test_assignment_sequence(self):
        program = StructuredProgram(
            ["x1"], [Assign("r", var("x1") + 1), Assign("y", var("r") * 2)])
        assert run(program, 3) == 8

    def test_skip_compiles_to_nothing(self):
        with_skip = StructuredProgram(
            ["x1"], [Skip(), Assign("y", var("x1")), Skip()])
        without = StructuredProgram(["x1"], [Assign("y", var("x1"))])
        assert (len(with_skip.compile().boxes)
                == len(without.compile().boxes))

    def test_if_both_arms(self):
        program = StructuredProgram(
            ["x1"],
            [If(var("x1").eq(0), [Assign("y", Const(10))],
                [Assign("y", Const(20))])])
        assert run(program, 0) == 10
        assert run(program, 1) == 20

    def test_if_without_else(self):
        program = StructuredProgram(
            ["x1"],
            [Assign("y", Const(5)),
             If(var("x1").eq(0), [Assign("y", Const(1))])])
        assert run(program, 0) == 1
        assert run(program, 3) == 5

    def test_nested_if(self):
        program = StructuredProgram(
            ["x1", "x2"],
            [If(var("x1").eq(0),
                [If(var("x2").eq(0), [Assign("y", Const(1))],
                    [Assign("y", Const(2))])],
                [Assign("y", Const(3))])])
        assert run(program, 0, 0) == 1
        assert run(program, 0, 5) == 2
        assert run(program, 9, 0) == 3

    def test_while_loop(self):
        program = StructuredProgram(
            ["x1"],
            [Assign("r", var("x1")),
             While(var("r").ne(0),
                   [Assign("y", var("y") + var("r")),
                    Assign("r", var("r") - 1)])])
        assert run(program, 4) == 10  # 4+3+2+1

    def test_while_zero_iterations(self):
        program = StructuredProgram(
            ["x1"],
            [While(var("x1").ne(var("x1")), [Assign("y", Const(9))])])
        assert run(program, 3) == 0

    def test_nested_while(self):
        # y := x1 * x2 by repeated addition.
        program = StructuredProgram(
            ["x1", "x2"],
            [Assign("i", var("x1")),
             While(var("i").ne(0),
                   [Assign("j", var("x2")),
                    While(var("j").ne(0),
                          [Assign("y", var("y") + 1),
                           Assign("j", var("j") - 1)]),
                    Assign("i", var("i") - 1)])])
        assert run(program, 3, 4) == 12
        assert run(program, 0, 4) == 0

    def test_deterministic_node_ids(self):
        program = StructuredProgram(["x1"], [Assign("y", var("x1"))])
        first = program.compile()
        second = program.compile()
        assert set(first.boxes) == set(second.boxes)

    def test_unknown_statement_rejected(self):
        class Weird:
            pass

        program = StructuredProgram(["x1"], [Weird()])
        with pytest.raises((FlowchartError, TypeError)):
            compile_structured(program)


class TestSeq:
    def test_flattens_nesting(self):
        statements = seq(Assign("a", Const(1)),
                         [Assign("b", Const(2)), [Assign("c", Const(3))]])
        assert len(statements) == 3
        assert all(isinstance(statement, Assign) for statement in statements)
