"""send/recv boxes: syntax, validation, semantics, tier identity.

Typed channels are unbounded FIFO queues distinct from the variable
namespace; under surveillance each message carries its label (v̄ ∪ C̄
at the send site) inside the envelope.  The single-node interpreter is
the reference semantics the distributed runtime reproduces, so every
engine tier must agree with it bit-for-bit here.
"""

import pytest

from repro.core.errors import FlowchartError, MessageError
from repro.core.policy import allow
from repro.flowchart.batchpath import execute_batch_single
from repro.flowchart.boxes import RecvBox, SendBox
from repro.flowchart.builder import FlowchartBuilder
from repro.flowchart.dot import to_dot
from repro.flowchart.expr import var
from repro.flowchart.fastpath import execute_compiled
from repro.flowchart.interpreter import execute
from repro.flowchart.parser import parse_program, unparse_program
from repro.flowchart.structured import Recv, Send
from repro.surveillance.dynamic import surveil
from repro.surveillance.instrument import instrument

RELAY = """
program relay(x1, x2) {
    s := x1 + x2;
    send ch(s);
    recv ch(u);
    y := u * 2
}
"""


def compile_source(source):
    return parse_program(source).compile()


class TestSyntax:
    def test_parse_and_execute(self):
        assert execute(compile_source(RELAY), (3, 4)).value == 14

    def test_unparse_round_trips(self):
        text = unparse_program(parse_program(RELAY))
        assert "send ch(s);" in text
        assert "recv ch(u);" in text
        assert unparse_program(parse_program(text)) == text

    def test_structured_statements(self):
        program = parse_program(RELAY)
        send = next(s for s in program.body if isinstance(s, Send))
        recv = next(s for s in program.body if isinstance(s, Recv))
        assert (send.channel, send.variable) == ("ch", "s")
        assert (recv.channel, recv.variable) == ("ch", "u")
        assert repr(send) == "Send(ch(s))"
        assert repr(recv) == "Recv(ch(u))"


class TestValidation:
    def test_recv_into_input_rejected(self):
        with pytest.raises(FlowchartError, match="receives into input"):
            compile_source("program p(x1) { send ch(x1); recv ch(x1) }")

    def test_bad_channel_names_rejected(self):
        with pytest.raises(FlowchartError):
            SendBox("", "v", "next")
        with pytest.raises(FlowchartError):
            RecvBox("9ch", "v", "next")
        with pytest.raises(FlowchartError):
            SendBox("ch", "", "next")

    def test_structural_queries(self):
        flowchart = compile_source(RELAY)
        assert flowchart.has_channels()
        assert flowchart.channels() == ("ch",)
        assert len(flowchart.send_ids()) == 1
        assert len(flowchart.recv_ids()) == 1
        plain = compile_source("program p(x1) { y := x1 }")
        assert not plain.has_channels()
        assert plain.channels() == ()

    def test_dot_renders_channel_boxes(self):
        dot = to_dot(compile_source(RELAY))
        assert 'shape=cds, label="send ch(s)"' in dot
        assert 'shape=cds, label="recv ch(u)"' in dot


class TestBuilder:
    def test_builder_send_recv(self):
        builder = FlowchartBuilder(["x1"], name="loopback")
        builder.start()
        builder.assign("s", var("x1") * 2)
        builder.send("ch", "s")
        builder.recv("ch", "u")
        builder.assign("y", var("u") + 1)
        builder.halt()
        flowchart = builder.build()
        assert execute(flowchart, (5,)).value == 11
        assert flowchart.channels() == ("ch",)


class TestSemantics:
    def test_fifo_order(self):
        source = ("program p(x1) { send q(x1); t := x1 + 1; send q(t); "
                  "recv q(a); recv q(b); y := a * 100 + b }")
        assert execute(compile_source(source), (7,)).value == 708

    def test_empty_recv_is_declared_fault(self):
        with pytest.raises(MessageError) as excinfo:
            execute(compile_source("program p(x1) { recv q(u); y := u }"),
                    (1,))
        assert excinfo.value.detail == "empty:q"

    def test_channel_namespace_is_not_variable_namespace(self):
        # A channel named like a variable never aliases it.
        source = ("program p(x1) { s := x1; send s(s); s := 99; "
                  "recv s(u); y := u }")
        assert execute(compile_source(source), (7,)).value == 7

    def test_tiers_defer_to_interpreter(self):
        flowchart = compile_source(RELAY)
        reference = execute(flowchart, (3, 4))
        for engine in (execute_compiled, execute_batch_single):
            result = engine(flowchart, (3, 4))
            assert (result.value, result.steps) == (reference.value,
                                                    reference.steps)
        # Declared faults match across tiers too.
        empty = compile_source("program p(x1) { recv q(u); y := u }")
        for engine in (execute, execute_compiled, execute_batch_single):
            with pytest.raises(MessageError) as excinfo:
                engine(empty, (1,))
            assert excinfo.value.detail == "empty:q"


class TestSurveillance:
    def test_envelope_label_is_value_join_pc(self):
        # The send runs under x2-control, so the envelope carries
        # {1} ∪ {2} and the receive learns both.
        source = ("program p(x1, x2) { if x2 == 0 { send ch(x1) } "
                  "else { send ch(x1) }; recv ch(u); y := u }")
        run = surveil(compile_source(source), (1, 0),
                      allowed=frozenset({1, 2}))
        assert run.labels["u"] == frozenset({1, 2})
        assert run.outcome == 1

    def test_recv_forgetting_replaces_label(self):
        source = ("program p(x1, x2) { u := x2; send ch(x1); "
                  "recv ch(u); y := u }")
        flowchart = compile_source(source)
        forgetting = surveil(flowchart, (5, 6), allowed=frozenset({1, 2}))
        assert forgetting.labels["u"] == frozenset({1})
        high_water = surveil(flowchart, (5, 6), allowed=frozenset({1, 2}),
                             forgetting=False)
        assert high_water.labels["u"] == frozenset({1, 2})

    def test_empty_recv_surveilled_is_same_fault(self):
        with pytest.raises(MessageError) as excinfo:
            surveil(compile_source("program p(x1) { recv q(u); y := u }"),
                    (1,), allowed=frozenset({1}))
        assert excinfo.value.detail == "empty:q"

    def test_instrument_rejects_channel_programs(self):
        with pytest.raises(FlowchartError, match="channel"):
            instrument(compile_source(RELAY), allow(1, 2, arity=2))
