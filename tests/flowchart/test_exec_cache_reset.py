"""`REPRO_EXEC_CACHE` honoured mid-process via `reset_exec_cache`.

The result memo is sized once at import, so an env change made
afterwards (tests, notebooks, server startup) was silently ignored —
the classic stale-env-cache bug this suite pins down: the first test
documents the stale behaviour, the rest the documented fix
(`reset_exec_cache()`, mirroring `reset_value_cap_cache()`).
"""

import pytest

from repro.flowchart import fastpath
from repro.flowchart import library
from repro.flowchart.fastpath import (EXEC_CACHE_ENV, _RESULT_MEMO,
                                      execute_compiled, reset_exec_cache)


@pytest.fixture(autouse=True)
def restore_memo(monkeypatch):
    """Every test leaves the memo re-sized from the real environment."""
    yield
    monkeypatch.delenv(EXEC_CACHE_ENV, raising=False)
    reset_exec_cache()


class TestStaleRepro:
    def test_env_set_after_import_is_ignored_until_reset(self, monkeypatch):
        monkeypatch.setenv(EXEC_CACHE_ENV, "3")
        # Stale: the import-time size is still in force …
        assert _RESULT_MEMO.maxsize != 3
        # … until the documented reset re-reads the environment.
        reset_exec_cache()
        assert _RESULT_MEMO.maxsize == 3

    def test_zero_disables_and_drops_entries(self, monkeypatch):
        flowchart = library.parity_program()
        execute_compiled(flowchart, (5,))
        assert len(_RESULT_MEMO) > 0
        monkeypatch.setenv(EXEC_CACHE_ENV, "0")
        reset_exec_cache()
        assert _RESULT_MEMO.maxsize == 0
        assert len(_RESULT_MEMO) == 0
        # Disabled memo: repeated runs never accumulate entries.
        execute_compiled(flowchart, (5,))
        execute_compiled(flowchart, (5,))
        assert len(_RESULT_MEMO) == 0

    def test_shrink_evicts_to_new_capacity(self, monkeypatch):
        monkeypatch.delenv(EXEC_CACHE_ENV, raising=False)
        reset_exec_cache()
        flowchart = library.parity_program()
        for value in range(8):
            execute_compiled(flowchart, (value,))
        monkeypatch.setenv(EXEC_CACHE_ENV, "2")
        reset_exec_cache()
        stats = _RESULT_MEMO.stats()
        assert stats["maxsize"] == 2
        assert stats["size"] <= 2

    def test_counters_survive_resize(self, monkeypatch):
        flowchart = library.parity_program()
        execute_compiled(flowchart, (9,))
        execute_compiled(flowchart, (9,))
        before = _RESULT_MEMO.stats()
        monkeypatch.setenv(EXEC_CACHE_ENV, "64")
        reset_exec_cache()
        after = _RESULT_MEMO.stats()
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]

    def test_malformed_env_warns_and_keeps_default(self, monkeypatch):
        monkeypatch.setenv(EXEC_CACHE_ENV, "lots")
        with pytest.warns(RuntimeWarning):
            reset_exec_cache()
        assert _RESULT_MEMO.maxsize == fastpath._DEFAULT_MEMO_SIZE
