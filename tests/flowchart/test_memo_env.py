"""``REPRO_EXEC_CACHE`` parsing: garbage and negatives must not pass
silently."""

import warnings

import pytest

from repro.flowchart.fastpath import (EXEC_CACHE_ENV, _DEFAULT_MEMO_SIZE,
                                      _memo_size)


def test_unset_uses_default(monkeypatch):
    monkeypatch.delenv(EXEC_CACHE_ENV, raising=False)
    assert _memo_size() == _DEFAULT_MEMO_SIZE


def test_valid_sizes_accepted(monkeypatch):
    monkeypatch.setenv(EXEC_CACHE_ENV, "128")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert _memo_size() == 128


def test_zero_disables_without_warning(monkeypatch):
    monkeypatch.setenv(EXEC_CACHE_ENV, "0")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert _memo_size() == 0


def test_malformed_value_warns_and_falls_back(monkeypatch):
    monkeypatch.setenv(EXEC_CACHE_ENV, "lots")
    with pytest.warns(RuntimeWarning, match="not an integer"):
        assert _memo_size() == _DEFAULT_MEMO_SIZE


def test_negative_value_warns_and_falls_back(monkeypatch):
    monkeypatch.setenv(EXEC_CACHE_ENV, "-5")
    with pytest.warns(RuntimeWarning, match="negative"):
        assert _memo_size() == _DEFAULT_MEMO_SIZE
