"""Unit tests for repro.flowchart.dot (DOT export)."""

from repro.core import allow
from repro.flowchart import library, to_dot
from repro.surveillance import instrument


class TestDotExport:
    def test_structure(self):
        text = to_dot(library.forgetting_program())
        assert text.startswith("digraph {")
        assert text.endswith("}")
        assert 'label="forgetting"' in text

    def test_node_shapes(self):
        text = to_dot(library.forgetting_program())
        assert "shape=oval" in text      # start/halt
        assert "shape=diamond" in text   # decision
        assert "shape=box" in text       # assignment

    def test_edges_labelled(self):
        text = to_dot(library.max_program())
        assert '[label="TRUE"]' in text
        assert '[label="FALSE"]' in text

    def test_every_box_appears(self):
        flowchart = library.accumulate_program()
        text = to_dot(flowchart)
        for node_id in flowchart.boxes:
            assert f'"{node_id}"' in text

    def test_deterministic(self):
        assert (to_dot(library.example8_program())
                == to_dot(library.example8_program()))

    def test_instrumented_flowchart_renders(self):
        instrumented = instrument(library.forgetting_program(),
                                  allow(2, arity=2))
        text = to_dot(instrumented)
        assert "_s_y" in text
        assert "_viol" in text

    def test_name_suppressible(self):
        text = to_dot(library.mixer_program(), include_name=False)
        assert "labelloc" not in text

    def test_quotes_escaped(self):
        # Box labels containing quotes must not break the DOT syntax.
        text = to_dot(library.mixer_program())
        for line in text.splitlines():
            assert line.count('"') % 2 == 0


class TestDotGolden:
    """Exact-output tests on a hand-built flowchart (parser/library ids
    come from a global counter, so only hand-chosen ids are stable)."""

    @staticmethod
    def build():
        from repro.flowchart.boxes import (AssignBox, DecisionBox, HaltBox,
                                           StartBox)
        from repro.flowchart.expr import BinOp, Compare, Const, Var
        from repro.flowchart.program import Flowchart

        boxes = {
            "start": StartBox("d1"),
            "d1": DecisionBox(Compare(">", Var("x1"), Const(0)),
                              "a1", "h1"),
            "a1": AssignBox("y", BinOp("+", Var("x1"), Const(1)), "h1"),
            "h1": HaltBox(),
        }
        return Flowchart(boxes, ["x1"], "y", name="golden")

    def test_full_output(self):
        assert to_dot(self.build()) == (
            'digraph {\n'
            '    label="golden";\n'
            '    labelloc=t;\n'
            '    node [fontname=monospace];\n'
            '    "start" [shape=oval, label="START"];\n'
            '    "d1" [shape=diamond, label="(x1 > 0)"];\n'
            '    "a1" [shape=box, label="y := (x1 + 1)"];\n'
            '    "h1" [shape=oval, label="HALT"];\n'
            '    "start" -> "d1";\n'
            '    "d1" -> "a1" [label="TRUE"];\n'
            '    "d1" -> "h1" [label="FALSE"];\n'
            '    "a1" -> "h1";\n'
            '}'
        )

    def test_without_name_drops_label_header(self):
        text = to_dot(self.build(), include_name=False)
        assert text.splitlines()[1] == "    node [fontname=monospace];"
        assert "label=\"golden\"" not in text

    def test_output_is_deterministic(self):
        assert to_dot(self.build()) == to_dot(self.build())
