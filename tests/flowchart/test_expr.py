"""Unit tests for repro.flowchart.expr."""

import pytest

from repro.core.errors import ExecutionError
from repro.flowchart.expr import (And, BinOp, BoolConst, Compare, Const,
                                  Ite, LoopExpr, Neg, Not, Or, Var,
                                  structurally_equal, substitute, var,
                                  variables_of)


class TestEvaluation:
    def test_const_and_var(self):
        assert Const(5).eval({}) == 5
        assert Var("x").eval({"x": 7}) == 7

    def test_unbound_variable(self):
        with pytest.raises(ExecutionError, match="unbound"):
            Var("x").eval({})

    def test_arithmetic(self):
        env = {"a": 7, "b": 3}
        assert (var("a") + var("b")).eval(env) == 10
        assert (var("a") - var("b")).eval(env) == 4
        assert (var("a") * var("b")).eval(env) == 21
        assert (var("a") // var("b")).eval(env) == 2
        assert (var("a") % var("b")).eval(env) == 1
        assert (-var("a")).eval(env) == -7

    def test_division_by_zero_is_total(self):
        # The expression language is total: x // 0 == x % 0 == 0.
        assert (var("a") // 0).eval({"a": 5}) == 0
        assert (var("a") % 0).eval({"a": 5}) == 0

    def test_bitwise(self):
        env = {"a": 0b1100, "b": 0b1010}
        assert (var("a") | var("b")).eval(env) == 0b1110
        assert (var("a") & var("b")).eval(env) == 0b1000
        assert (var("a") ^ var("b")).eval(env) == 0b0110

    def test_min_max(self):
        env = {"a": 2, "b": 9}
        assert BinOp("min", var("a"), var("b")).eval(env) == 2
        assert BinOp("max", var("a"), var("b")).eval(env) == 9

    def test_reflected_operators(self):
        assert (1 + var("x")).eval({"x": 2}) == 3
        assert (10 - var("x")).eval({"x": 2}) == 8
        assert (3 * var("x")).eval({"x": 2}) == 6

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExecutionError):
            BinOp("**", Const(2), Const(3))

    def test_lift_rejects_non_integers(self):
        with pytest.raises(ExecutionError):
            var("x") + 1.5
        with pytest.raises(ExecutionError):
            var("x") + True
        with pytest.raises(ExecutionError):
            Const(True)


class TestPredicates:
    def test_comparisons(self):
        env = {"a": 2, "b": 3}
        assert var("a").lt(var("b")).eval(env)
        assert var("a").le(2).eval(env)
        assert var("b").gt(var("a")).eval(env)
        assert var("b").ge(3).eval(env)
        assert var("a").eq(2).eval(env)
        assert var("a").ne(var("b")).eval(env)

    def test_connectives(self):
        true = BoolConst(True)
        false = BoolConst(False)
        assert And(true, true).eval({})
        assert not And(true, false).eval({})
        assert Or(false, true).eval({})
        assert not Or(false, false).eval({})
        assert Not(false).eval({})
        assert (~false).eval({})
        assert true.and_(true).eval({})
        assert false.or_(true).eval({})

    def test_unknown_comparison_rejected(self):
        with pytest.raises(ExecutionError):
            Compare("~", Const(1), Const(2))


class TestVariables:
    def test_expression_variables(self):
        expression = (var("a") + var("b")) * var("a")
        assert variables_of(expression) == ("a", "b")

    def test_predicate_variables(self):
        predicate = And(var("a").eq(0), var("c").lt(var("b")))
        assert variables_of(predicate) == ("a", "b", "c")

    def test_const_reads_nothing(self):
        assert Const(3).variables() == frozenset()
        assert BoolConst(True).variables() == frozenset()


class TestIte:
    def test_selects_by_predicate(self):
        expression = Ite(var("p").eq(0), Const(10), Const(20))
        assert expression.eval({"p": 0}) == 10
        assert expression.eval({"p": 1}) == 20

    def test_variables_include_all_parts(self):
        """Example 8's 'worst case': the Ite depends on everything."""
        expression = Ite(var("t").eq(0), var("a"), var("b"))
        assert variables_of(expression) == ("a", "b", "t")

    def test_requires_predicate(self):
        with pytest.raises(ExecutionError):
            Ite(Const(1), Const(1), Const(2))


class TestLoopExpr:
    def test_computes_loop_result(self):
        # while r != 0: r := r - 1; acc := acc + 2
        loop = LoopExpr(var("r").ne(0),
                        {"r": var("r") - 1, "acc": var("acc") + 2},
                        "acc")
        assert loop.eval({"r": 4, "acc": 0}) == 8

    def test_simultaneous_update(self):
        # swap-like loop: one iteration; simultaneous semantics.
        loop = LoopExpr(var("n").ne(0),
                        {"a": var("b"), "b": var("a"), "n": var("n") - 1},
                        "a")
        assert loop.eval({"a": 1, "b": 2, "n": 1}) == 2

    def test_zero_iterations(self):
        loop = LoopExpr(var("r").ne(0), {"r": var("r") - 1}, "r")
        assert loop.eval({"r": 0}) == 0

    def test_fuel_bound(self):
        diverging = LoopExpr(BoolConst(True), {"r": var("r") + 1}, "r",
                             fuel=10)
        with pytest.raises(ExecutionError, match="fuel"):
            diverging.eval({"r": 0})

    def test_variables_cover_test_body_and_result(self):
        loop = LoopExpr(var("r").ne(0), {"r": var("r") - var("s")}, "r")
        assert variables_of(loop) == ("r", "s")


class TestSubstitute:
    def test_substitutes_variables(self):
        expression = substitute(var("a") + var("b"), {"a": Const(5)})
        assert expression.eval({"b": 1}) == 6

    def test_substitution_composes_effects(self):
        # After [a := b + 1], the expression a * 2 means (b + 1) * 2.
        expression = substitute(var("a") * 2, {"a": var("b") + 1})
        assert expression.eval({"b": 3}) == 8

    def test_predicates_substituted(self):
        predicate = substitute(var("a").eq(0), {"a": var("x") - var("x")})
        assert predicate.eval({"x": 9})

    def test_ite_substituted(self):
        expression = substitute(Ite(var("p").eq(0), var("a"), Const(0)),
                                {"a": Const(4), "p": Const(0)})
        assert expression.eval({}) == 4

    def test_loop_bound_variables_shadow(self):
        loop = LoopExpr(var("r").ne(0), {"r": var("r") - 1}, "r")
        substituted = substitute(loop, {"r": Const(99)})
        # r is loop-bound: the mapping must not reach inside.
        assert substituted.eval({"r": 2}) == 0


class TestStructuralEquality:
    def test_equal_structures(self):
        assert structurally_equal(var("a") + 1, var("a") + 1)
        assert structurally_equal(var("a").eq(0), var("a").eq(0))
        assert structurally_equal(Ite(var("p").eq(0), Const(1), Const(2)),
                                  Ite(var("p").eq(0), Const(1), Const(2)))

    def test_unequal_structures(self):
        assert not structurally_equal(var("a") + 1, var("a") + 2)
        assert not structurally_equal(var("a"), var("b"))
        assert not structurally_equal(var("a") + 1, var("a") - 1)
        assert not structurally_equal(Const(1), var("a"))

    def test_loop_expr_equality(self):
        first = LoopExpr(var("r").ne(0), {"r": var("r") - 1}, "r")
        second = LoopExpr(var("r").ne(0), {"r": var("r") - 1}, "r")
        third = LoopExpr(var("r").ne(0), {"r": var("r") - 2}, "r")
        assert structurally_equal(first, second)
        assert not structurally_equal(first, third)
