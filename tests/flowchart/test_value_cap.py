"""The value-magnitude budget: identical semantics in both engines.

A cap of C bits declares ``|value| < 2**C`` for every assigned value;
the first wider assignment raises :class:`ValueCapExceededError`.  The
interpreter and the compiled fastpath must agree exactly — same fault
type, same ``.cap`` payload, same fuel-vs-cap ordering — because sweep
rows totalize the fault into the ``Λ!cap[C]`` notice and the
factorization check treats every notice text as its own output class.
"""

import pytest

from repro.core.errors import (FuelExhaustedError, ReproError,
                               ValueCapExceededError)
from repro.flowchart.expr import BoolConst, Const, var
from repro.flowchart.fastpath import execute_compiled, run_flowchart
from repro.flowchart.interpreter import execute
from repro.flowchart.parser import parse_program
from repro.flowchart.structured import (Assign, StructuredProgram, While)
from repro.robustness.faults import (VALUE_CAP_ENV, default_value_cap,
                                     reset_value_cap_cache,
                                     resolve_value_cap)

ENGINES = (execute, execute_compiled)


def doubling_flowchart():
    """y := 1; while true { y := y + y } — one more bit per iteration."""
    return StructuredProgram(
        ["x1"],
        [Assign("y", Const(1)),
         While(BoolConst(True), [Assign("y", var("y") + var("y"))])],
        name="doubling").compile()


def copy_flowchart():
    return parse_program("program copy(x1) { y := x1 }").compile()


def negate_flowchart():
    return parse_program("program negate(x1) { y := 0 - x1 }").compile()


class TestCapFault:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_wide_assignment_raises_with_cap(self, engine):
        with pytest.raises(ValueCapExceededError) as info:
            engine(doubling_flowchart(), (0,), fuel=1000, value_cap=8)
        assert info.value.cap == 8

    @pytest.mark.parametrize("engine", ENGINES)
    def test_uncapped_hits_fuel_instead(self, engine):
        with pytest.raises(FuelExhaustedError):
            engine(doubling_flowchart(), (0,), fuel=50)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_boundary_is_bit_length(self, engine):
        # cap=3 declares |value| < 8: 7 passes, 8 faults.
        result = engine(copy_flowchart(), (7,), fuel=100, value_cap=3)
        assert result.value == 7
        with pytest.raises(ValueCapExceededError):
            engine(copy_flowchart(), (8,), fuel=100, value_cap=3)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_negative_boundary_mirrors(self, engine):
        result = engine(negate_flowchart(), (7,), fuel=100, value_cap=3)
        assert result.value == -7
        with pytest.raises(ValueCapExceededError):
            engine(negate_flowchart(), (8,), fuel=100, value_cap=3)

    def test_backends_agree_on_fuel_vs_cap_ordering(self):
        # With a budget too small to reach the wide assignment, both
        # engines must report fuel exhaustion, not the cap: raise
        # ordering is part of the observable contract.
        for engine in ENGINES:
            with pytest.raises(FuelExhaustedError):
                engine(doubling_flowchart(), (0,), fuel=3, value_cap=4)


class TestResolution:
    @pytest.fixture(autouse=True)
    def fresh_env_cache(self):
        # The hot paths cache the parsed REPRO_VALUE_CAP default; a
        # test that monkeypatches the variable must drop the cache on
        # both sides (the documented mid-process-change protocol).
        reset_value_cap_cache()
        yield
        reset_value_cap_cache()

    def test_env_variable_supplies_default(self, monkeypatch):
        monkeypatch.setenv(VALUE_CAP_ENV, "8")
        with pytest.raises(ValueCapExceededError) as info:
            run_flowchart(doubling_flowchart(), (0,), fuel=1000)
        assert info.value.cap == 8

    def test_explicit_cap_beats_env(self, monkeypatch):
        monkeypatch.setenv(VALUE_CAP_ENV, "4")
        with pytest.raises(ValueCapExceededError) as info:
            run_flowchart(doubling_flowchart(), (0,), fuel=1000,
                          value_cap=12)
        assert info.value.cap == 12

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(VALUE_CAP_ENV, "wide")
        with pytest.raises(ReproError):
            run_flowchart(copy_flowchart(), (1,), fuel=100)

    @pytest.mark.parametrize("cap", [0, -3])
    def test_nonpositive_cap_rejected(self, cap):
        with pytest.raises(ReproError):
            resolve_value_cap(cap)

    def test_unset_env_means_uncapped(self, monkeypatch):
        monkeypatch.delenv(VALUE_CAP_ENV, raising=False)
        assert resolve_value_cap(None) is None

    def test_cached_default_tracks_resets(self, monkeypatch):
        monkeypatch.delenv(VALUE_CAP_ENV, raising=False)
        assert default_value_cap() is None
        monkeypatch.setenv(VALUE_CAP_ENV, "6")
        assert default_value_cap() is None  # cached until reset
        reset_value_cap_cache()
        assert default_value_cap() == 6


class TestMemoIsolation:
    def test_cap_is_part_of_the_memo_key(self):
        # An uncapped memoised result must not satisfy a capped call
        # for the same (flowchart, inputs, fuel) — and vice versa.
        flowchart = copy_flowchart()
        assert execute_compiled(flowchart, (9,), fuel=100).value == 9
        with pytest.raises(ValueCapExceededError):
            execute_compiled(flowchart, (9,), fuel=100, value_cap=3)
        assert execute_compiled(flowchart, (9,), fuel=100).value == 9

    def test_capped_success_still_memoises(self):
        flowchart = copy_flowchart()
        first = execute_compiled(flowchart, (5,), fuel=100, value_cap=4)
        second = execute_compiled(flowchart, (5,), fuel=100, value_cap=4)
        assert first.value == second.value == 5
        assert first.steps == second.steps
