"""Unit tests for repro.flowchart.library — the paper's figure programs.

Each test pins the *functional* behaviour the reconstruction must have;
the mechanism-level claims live in tests/integration/test_paper_claims.py.
"""

import pytest

from repro.core import ProductDomain
from repro.flowchart import library
from repro.flowchart.interpreter import execute


GRID1 = ProductDomain.integer_grid(0, 5, 1)
GRID2 = ProductDomain.integer_grid(0, 3, 2)


def values(flowchart, domain):
    return {point: execute(flowchart, point).value for point in domain}


class TestTimingLoop:
    def test_constant_value(self):
        assert set(values(library.timing_loop(), GRID1).values()) == {1}

    def test_time_monotone_in_input(self):
        steps = [execute(library.timing_loop(), (n,)).steps
                 for n, in GRID1]
        assert steps == sorted(steps)
        assert len(set(steps)) == len(steps)


class TestForgettingProgram:
    def test_value_semantics(self):
        for (x1, x2), value in values(library.forgetting_program(),
                                      GRID2).items():
            assert value == (0 if x2 == 0 else x1)


class TestReconvergence:
    def test_constant_one(self):
        assert set(values(library.reconvergence_program(),
                          GRID2).values()) == {1}

    def test_example7_is_same_function(self):
        assert (values(library.example7_program(), GRID2)
                == values(library.reconvergence_program(), GRID2))


class TestExample8:
    def test_value_semantics(self):
        for (x1, x2), value in values(library.example8_program(),
                                      GRID2).items():
            assert value == (1 if x2 == 1 else x1)


class TestExample9:
    def test_value_semantics(self):
        for (x1, x2), value in values(library.example9_program(),
                                      GRID2).items():
            assert value == (0 if x1 == 0 else x2)


class TestTheorem4Flowcharts:
    def test_zero_instance_constant(self):
        assert set(values(library.theorem4_flowchart(0),
                          GRID1).values()) == {0}

    def test_modulus_instance(self):
        for (x,), value in values(library.theorem4_flowchart(3),
                                  GRID1).items():
            assert value == x % 3


class TestExtendedSuite:
    def test_parity(self):
        for (x,), value in values(library.parity_program(), GRID1).items():
            assert value == x % 2

    def test_guarded_copy(self):
        flowchart = library.guarded_copy_program()
        assert execute(flowchart, (5, 7)).value == 5
        assert execute(flowchart, (5, 6)).value == -1

    def test_mixer(self):
        for (x1, x2), value in values(library.mixer_program(), GRID2).items():
            assert value == (x1 + x2) * 2

    def test_max(self):
        for (x1, x2), value in values(library.max_program(), GRID2).items():
            assert value == max(x1, x2)

    def test_nested_branch(self):
        flowchart = library.nested_branch_program()
        assert execute(flowchart, (1, 1, 5)).value == 5
        assert execute(flowchart, (1, 0, 5)).value == 0
        assert execute(flowchart, (0, 1, 5)).value == 5

    def test_accumulate(self):
        for (x,), value in values(library.accumulate_program(),
                                  GRID1).items():
            assert value == x * (x + 1) // 2

    def test_suites_are_fresh_objects(self):
        assert (library.paper_figures()[0].boxes
                is not library.paper_figures()[0].boxes)

    def test_extended_suite_contains_paper_figures(self):
        names = {flowchart.name for flowchart in library.extended_suite()}
        assert {"timing-loop", "forgetting", "reconvergence", "example8",
                "example9"} <= names


class TestNewSuiteMembers:
    def test_gcd(self):
        import math

        flowchart = library.gcd_program()
        for x1 in range(6):
            for x2 in range(6):
                expected = math.gcd(x1, x2) if (x1 or x2) else 0
                assert execute(flowchart, (x1, x2)).value == expected, (x1,
                                                                        x2)

    def test_min(self):
        for (x1, x2), value in values(library.min_program(), GRID2).items():
            assert value == min(x1, x2)

    def test_countdown_pair(self):
        flowchart = library.countdown_pair_program()
        for (x1, x2), value in values(flowchart, GRID2).items():
            assert value == x2
        # Each input contributes its own timing signature.
        base = execute(flowchart, (0, 0)).steps
        assert execute(flowchart, (3, 0)).steps > base
        assert execute(flowchart, (0, 3)).steps > base
