"""Unit tests for repro.flowchart.builder."""

import pytest

from repro.core.errors import FlowchartError
from repro.flowchart.builder import FlowchartBuilder
from repro.flowchart.expr import Const, var
from repro.flowchart.interpreter import execute


class TestSequentialConstruction:
    def test_straight_line(self):
        builder = FlowchartBuilder(["x1"], name="line")
        builder.start()
        builder.assign("y", var("x1") * 3)
        builder.halt()
        flowchart = builder.build()
        assert execute(flowchart, (4,)).value == 12

    def test_loop_full(self):
        builder = FlowchartBuilder(["x1"], name="sum")
        top = builder.label("top")
        body = builder.label("body")
        out = builder.label("out")
        builder.start()
        builder.assign("r", var("x1"))
        builder.define(top)
        builder.decide(var("r").ne(0), then_to=body, else_to=out)
        builder.define(body)
        builder.assign("y", var("y") + var("r"))
        builder.assign("r", var("r") - 1)
        builder.goto(top)
        builder.define(out)
        builder.halt()
        flowchart = builder.build()
        assert execute(flowchart, (4,)).value == 10

    def test_diamond(self):
        builder = FlowchartBuilder(["x1"], name="abs-ish")
        then_arm = builder.label("then")
        else_arm = builder.label("else")
        join = builder.label("join")
        builder.start()
        builder.decide(var("x1").ge(0), then_to=then_arm, else_to=else_arm)
        builder.define(then_arm)
        builder.assign("y", var("x1"))
        builder.goto(join)
        builder.define(else_arm)
        builder.assign("y", -var("x1"))
        builder.goto(join)
        builder.define(join)
        builder.halt()
        flowchart = builder.build()
        assert execute(flowchart, (5,)).value == 5


class TestBuilderErrors:
    def test_build_before_start(self):
        with pytest.raises(FlowchartError, match="start"):
            FlowchartBuilder(["x1"]).build()

    def test_double_start(self):
        builder = FlowchartBuilder(["x1"])
        builder.start()
        with pytest.raises(FlowchartError, match="twice"):
            builder.start()

    def test_unwired_flow_rejected(self):
        builder = FlowchartBuilder(["x1"])
        builder.start()
        builder.assign("y", Const(1))
        with pytest.raises(FlowchartError, match="unwired"):
            builder.build()

    def test_unused_defined_label_rejected(self):
        builder = FlowchartBuilder(["x1"])
        builder.start()
        builder.halt()
        builder.define(builder.label())
        with pytest.raises(FlowchartError, match="never given a box"):
            builder.build()

    def test_duplicate_raw_id_rejected(self):
        from repro.flowchart.boxes import HaltBox

        builder = FlowchartBuilder(["x1"])
        builder.raw("h", HaltBox())
        with pytest.raises(FlowchartError, match="duplicate"):
            builder.raw("h", HaltBox())
