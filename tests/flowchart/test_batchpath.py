"""The Gen-2 batch tier: row-identical to the interpreter, per lane.

``execute_batch`` drives a whole vector of grid points through one
compiled structure-of-arrays evaluator.  Its contract is bit-identity
with the per-point engines: value/steps/touched on success, the same
typed fault kind on fuel or cap exhaustion, and per-lane retirement to
the compiled fallback whenever a lane leaves the vectorizable regime
(hazardous boxes, oversized inputs, guard-exceeding intermediates).
"""

import os

import pytest

from repro.core.errors import (ArityMismatchError, FuelExhaustedError,
                               ReproError, ValueCapExceededError)
from repro.flowchart import library as figure_library
from repro.flowchart import batchpath, fastpath
from repro.flowchart.batchpath import (K_CAP, K_FUEL, K_OK, LANES_ENV,
                                       batch_stats, clear_batch_caches,
                                       execute_batch, execute_batch_single,
                                       resolve_lane_engine)
from repro.flowchart.expr import BoolConst, Const, var
from repro.flowchart.fastpath import (BACKENDS, backend_tiers, memo_stats,
                                      resolve_backend, run_flowchart)
from repro.flowchart.interpreter import execute
from repro.flowchart.structured import Assign, StructuredProgram, While

HAVE_NUMPY = resolve_lane_engine("auto") == "numpy"

ENGINES = ["python"] + (["numpy"] if HAVE_NUMPY else [])


def grid_points(arity, low=-2, high=3):
    if arity == 0:
        return [()]
    points = [(v,) for v in range(low, high + 1)]
    for _ in range(arity - 1):
        points = [p + (v,) for p in points for v in range(low, high + 1)]
    return points


def interpreter_row(flowchart, point, fuel, value_cap):
    try:
        result = execute(flowchart, point, fuel=fuel, value_cap=value_cap)
    except FuelExhaustedError:
        return ("fuel",)
    except ValueCapExceededError:
        return ("cap",)
    return ("ok", result.value, result.steps, result.touched)


def batch_row(rows, i):
    kind = rows.kind(i)
    if kind == K_FUEL:
        return ("fuel",)
    if kind == K_CAP:
        return ("cap",)
    return ("ok", rows.value(i), rows.steps(i), rows.touched(i))


def assert_rows_match(flowchart, points, fuel, value_cap, engine):
    rows = execute_batch(flowchart, points, fuel=fuel,
                         value_cap=value_cap, engine=engine, memo=False)
    for i, point in enumerate(points):
        expected = interpreter_row(flowchart, point, fuel, value_cap)
        actual = batch_row(rows, i)
        assert actual == expected, (
            f"{flowchart.name}{point} fuel={fuel} cap={value_cap} "
            f"engine={engine}: batch {actual} != interpreter {expected}")


@pytest.mark.parametrize("engine", ENGINES)
class TestRowIdentity:
    def test_library_suite_uncapped(self, engine):
        for flowchart in figure_library.extended_suite():
            points = grid_points(flowchart.arity)
            assert_rows_match(flowchart, points, 100_000, None, engine)

    def test_library_suite_tight_fuel(self, engine):
        # A tight budget retires different lanes at different boxes —
        # the mixed OK/fuel partition must match point-for-point.
        for flowchart in figure_library.extended_suite():
            points = grid_points(flowchart.arity)
            for fuel in (1, 3, 7):
                assert_rows_match(flowchart, points, fuel, None, engine)

    def test_library_suite_tight_cap(self, engine):
        for flowchart in figure_library.extended_suite():
            points = grid_points(flowchart.arity)
            for cap in (1, 4):
                assert_rows_match(flowchart, points, 100_000, cap, engine)

    def test_all_lanes_fault(self, engine):
        flowchart = figure_library.gcd_program()
        points = grid_points(2, 1, 6)
        rows = execute_batch(flowchart, points, fuel=1, engine=engine,
                             memo=False)
        assert all(rows.kind(i) == K_FUEL for i in range(len(points)))


class TestLaneFallback:
    def test_oversized_inputs_retire_to_fallback(self):
        # 2**200 cannot live in an int64 lane; the batch must detect it
        # up front and re-run those lanes through the compiled engine.
        flowchart = figure_library.forgetting_program()
        points = [(1, 2), (1 << 200, 3), (4, 5)]
        rows = execute_batch(flowchart, points, memo=False)
        for i, point in enumerate(points):
            assert batch_row(rows, i) == interpreter_row(
                flowchart, point, 100_000, None)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy lanes")
    def test_value_guard_retires_widening_lanes(self):
        # y squares to just past 2**48 — statically certifiable for
        # int64 lanes only under an entry invariant around 2**31, so
        # the runtime guard must catch the widening lanes mid-flight
        # and retire them to the compiled fallback.
        squaring = StructuredProgram(
            ["x1"],
            [Assign("y", Const(3)),
             While(var("y").lt(Const(1 << 48)),
                   [Assign("y", var("y") * var("y"))])],
            name="batch-widening").compile()
        points = [(0,), (1,)]
        rows = execute_batch(squaring, points, engine="numpy", memo=False)
        assert rows.compiled.engine == "numpy"
        assert rows.overrides
        for i, point in enumerate(points):
            assert batch_row(rows, i) == interpreter_row(
                squaring, point, 100_000, None)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy lanes")
    def test_uncertifiable_widths_land_on_python_lanes(self):
        # A block the width analysis cannot bound inside int64 at any
        # entry invariant (a 71-bit literal) demotes the whole
        # flowchart to python lanes rather than risking overflow.
        wide = StructuredProgram(
            ["x1"],
            [Assign("y", var("x1") + Const(1 << 70))],
            name="batch-wide-const").compile()
        rows = execute_batch(wide, [(1,), (2,)], engine="numpy",
                             memo=False)
        assert rows.compiled.engine == "python"
        for i, point in enumerate([(1,), (2,)]):
            assert batch_row(rows, i) == interpreter_row(
                wide, point, 100_000, None)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy lanes")
    def test_fallback_counter_increments(self):
        # Oversized-input fallback is an int64-lane phenomenon; python
        # lanes take arbitrary ints natively and never fall back here.
        clear_batch_caches()
        flowchart = figure_library.forgetting_program()
        execute_batch(flowchart, [(1 << 200, 1)], engine="numpy",
                      memo=False)
        assert batch_stats()["lane_fallbacks"] >= 1


class TestEngineResolution:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ReproError):
            resolve_lane_engine("bogus")

    def test_env_variable_selects_engine(self, monkeypatch):
        monkeypatch.setenv(LANES_ENV, "python")
        batchpath.reset_lane_engine_cache()
        try:
            assert resolve_lane_engine() == "python"
            monkeypatch.setenv(LANES_ENV, "bogus")
            assert resolve_lane_engine() == "python"  # cached until reset
            batchpath.reset_lane_engine_cache()
            with pytest.raises(ReproError):
                resolve_lane_engine()
        finally:
            monkeypatch.delenv(LANES_ENV)
            batchpath.reset_lane_engine_cache()

    def test_explicit_engine_overrides_env(self, monkeypatch):
        monkeypatch.setenv(LANES_ENV, "python")
        batchpath.reset_lane_engine_cache()
        try:
            assert resolve_lane_engine("auto") in ("numpy", "python")
        finally:
            monkeypatch.delenv(LANES_ENV)
            batchpath.reset_lane_engine_cache()

    def test_python_engine_never_vectorizes(self):
        flowchart = figure_library.parity_program()
        rows = execute_batch(flowchart, [(1,), (2,)], engine="python",
                             memo=False)
        assert rows.vector_view() is None

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy lanes")
    def test_numpy_engine_exposes_vector_view(self):
        flowchart = figure_library.parity_program()
        rows = execute_batch(flowchart, [(1,), (2,)], engine="numpy",
                             memo=False)
        view = rows.vector_view()
        assert view is not None
        np_mod, kinds, values = view
        assert list(kinds) == [K_OK, K_OK]


class TestCachesAndStats:
    def test_compile_cache_hits(self):
        clear_batch_caches()
        flowchart = figure_library.gcd_program()
        execute_batch(flowchart, [(6, 4)], memo=False)
        misses = batch_stats()["compile_misses"]
        execute_batch(flowchart, [(9, 6)], memo=False)
        stats = batch_stats()
        assert stats["compile_misses"] == misses
        assert stats["compile_hits"] >= 1

    def test_rows_memo_round_trip(self):
        clear_batch_caches()
        flowchart = figure_library.gcd_program()
        points = [(6, 4), (9, 6)]
        first = execute_batch(flowchart, points)
        again = execute_batch(flowchart, points)
        assert again is first
        assert batch_stats()["rows_hits"] >= 1

    def test_memo_stats_exports_batch_keys(self):
        stats = memo_stats()
        for key in ("batch_compile_hits", "batch_compile_misses",
                    "batch_lane_fallbacks", "batch_rows_hits"):
            assert key in stats


class TestTierRegistry:
    def test_batch_tier_registered(self):
        assert "batch" in BACKENDS
        assert "batch" in dict(backend_tiers())

    def test_alias_resolves(self):
        assert resolve_backend("interp") == "interpreted"

    def test_unknown_backend_raises(self):
        with pytest.raises(ReproError):
            resolve_backend("turbo")

    def test_env_selects_batch(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "batch")
        fastpath.reset_backend_cache()
        try:
            assert resolve_backend() == "batch"
        finally:
            monkeypatch.delenv("REPRO_BACKEND")
            fastpath.reset_backend_cache()

    def test_run_flowchart_batch_backend_matches_interpreter(self):
        flowchart = figure_library.gcd_program()
        batch = run_flowchart(flowchart, (6, 4), backend="batch")
        plain = execute(flowchart, (6, 4))
        assert (batch.value, batch.steps) == (plain.value, plain.steps)


class TestSingleLaneEntry:
    def test_declared_faults_reraise_with_interpreter_message(self):
        flowchart = figure_library.gcd_program()
        with pytest.raises(FuelExhaustedError) as batch_error:
            execute_batch_single(flowchart, (6, 4), fuel=2)
        with pytest.raises(FuelExhaustedError) as interp_error:
            execute(flowchart, (6, 4), fuel=2)
        assert str(batch_error.value) == str(interp_error.value)

    def test_cap_fault_matches(self):
        doubling = StructuredProgram(
            ["x1"],
            [Assign("y", var("x1") + Const(1)),
             While(BoolConst(True), [Assign("y", var("y") + var("y"))])],
            name="batch-cap-single").compile()
        with pytest.raises(ValueCapExceededError) as batch_error:
            execute_batch_single(doubling, (1,), value_cap=8)
        with pytest.raises(ValueCapExceededError) as interp_error:
            execute(doubling, (1,), value_cap=8)
        assert batch_error.value.cap == interp_error.value.cap == 8

    def test_arity_checked(self):
        with pytest.raises(ArityMismatchError):
            execute_batch_single(figure_library.gcd_program(), (1,))
        with pytest.raises(ArityMismatchError):
            execute_batch(figure_library.gcd_program(), [(1,)])

    def test_need_env_exposes_columns(self):
        flowchart = figure_library.parity_program()
        rows = execute_batch(flowchart, [(3,)], need_env=True, memo=False)
        assert rows.env(0) == execute(
            flowchart, (3,), capture_env=True).env
