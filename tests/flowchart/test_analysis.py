"""Unit tests for repro.flowchart.analysis (CFG analyses, region finding)."""

from repro.flowchart import library
from repro.flowchart.analysis import (dominators, find_ite_regions,
                                      find_while_regions,
                                      immediate_postdominator,
                                      is_straight_line, postdominators)
from repro.flowchart.boxes import AssignBox, DecisionBox, HaltBox, StartBox
from repro.flowchart.expr import Const, var
from repro.flowchart.program import Flowchart


def diamond():
    boxes = {
        "start": StartBox("d"),
        "d": DecisionBox(var("x1").eq(0), "a", "b"),
        "a": AssignBox("r", Const(1), "join"),
        "b": AssignBox("r", Const(2), "join"),
        "join": AssignBox("y", var("r"), "halt"),
        "halt": HaltBox(),
    }
    return Flowchart(boxes, ["x1"], name="diamond")


def loop():
    boxes = {
        "start": StartBox("init"),
        "init": AssignBox("r", var("x1"), "test"),
        "test": DecisionBox(var("r").ne(0), "body", "out"),
        "body": AssignBox("r", var("r") - 1, "test"),
        "out": AssignBox("y", Const(1), "halt"),
        "halt": HaltBox(),
    }
    return Flowchart(boxes, ["x1"], name="loop")


class TestDominators:
    def test_start_dominates_everything(self):
        flowchart = diamond()
        dom = dominators(flowchart)
        for node in flowchart.boxes:
            assert "start" in dom[node]

    def test_branch_arms_not_dominating_join(self):
        dom = dominators(diamond())
        assert "a" not in dom["join"]
        assert "b" not in dom["join"]
        assert "d" in dom["join"]

    def test_self_domination(self):
        dom = dominators(diamond())
        for node, dominated_by in dom.items():
            assert node in dominated_by


class TestPostdominators:
    def test_halt_postdominates_everything(self):
        flowchart = diamond()
        pdom = postdominators(flowchart)
        for node in flowchart.boxes:
            assert "halt" in pdom[node]

    def test_join_postdominates_arms(self):
        pdom = postdominators(diamond())
        assert "join" in pdom["a"]
        assert "join" in pdom["b"]
        assert "join" in pdom["d"]

    def test_arms_do_not_postdominate_decision(self):
        pdom = postdominators(diamond())
        assert "a" not in pdom["d"]
        assert "b" not in pdom["d"]


class TestImmediatePostdominator:
    def test_diamond_decision_ipdom_is_join(self):
        assert immediate_postdominator(diamond(), "d") == "join"

    def test_loop_decision_ipdom_is_exit(self):
        assert immediate_postdominator(loop(), "test") == "out"

    def test_halt_has_none(self):
        assert immediate_postdominator(diamond(), "halt") is None

    def test_chain_node(self):
        assert immediate_postdominator(diamond(), "join") == "halt"


class TestIteRegions:
    def test_diamond_detected(self):
        regions = find_ite_regions(diamond())
        assert len(regions) == 1
        region = regions[0]
        assert region.decision == "d"
        assert region.then_chain == ["a"]
        assert region.else_chain == ["b"]
        assert region.join == "join"
        assert region.interior() == {"d", "a", "b"}

    def test_loop_not_reported_as_ite(self):
        assert find_ite_regions(loop()) == []

    def test_empty_arm_region(self):
        """forgetting_program: `if x2 = 0 then y := 0` — one empty arm."""
        regions = find_ite_regions(library.forgetting_program())
        assert len(regions) == 1
        region = regions[0]
        assert (region.then_chain == [] or region.else_chain == [])

    def test_library_examples(self):
        assert len(find_ite_regions(library.example7_program())) == 1
        assert len(find_ite_regions(library.example8_program())) == 1
        assert len(find_ite_regions(library.example9_program())) == 1

    def test_decision_arms_detected_in_nested_branch(self):
        # The inner if of nested_branch_program is a diamond; the outer
        # one has a decision inside an arm, so it is not.
        regions = find_ite_regions(library.nested_branch_program())
        assert len(regions) == 1


class TestWhileRegions:
    def test_loop_detected(self):
        regions = find_while_regions(loop())
        assert len(regions) == 1
        region = regions[0]
        assert region.decision == "test"
        assert region.body_chain == ["body"]
        assert region.exit == "out"

    def test_diamond_not_reported_as_while(self):
        assert find_while_regions(diamond()) == []

    def test_library_loops(self):
        assert len(find_while_regions(library.timing_loop())) == 1
        assert len(find_while_regions(library.accumulate_program())) == 1
        assert len(find_while_regions(library.parity_program())) == 1


def test_is_straight_line():
    assert is_straight_line(library.mixer_program())
    assert not is_straight_line(library.max_program())
