"""Unit tests for repro.flowchart.transforms (Sections 4 and 5)."""

import pytest

from repro.core import ProductDomain
from repro.core.errors import FlowchartError
from repro.flowchart import library
from repro.flowchart.analysis import (find_ite_regions, find_while_regions,
                                      is_straight_line)
from repro.flowchart.boxes import AssignBox
from repro.flowchart.expr import Const, Ite, LoopExpr, var
from repro.flowchart.interpreter import execute
from repro.flowchart.program import Flowchart
from repro.flowchart.structured import Assign, If, StructuredProgram, While
from repro.flowchart.transforms import (duplicate_assignment_transform,
                                        functionally_equivalent,
                                        ite_transform, ite_transform_all,
                                        symbolic_effect, while_transform,
                                        while_transform_all)

GRID1 = ProductDomain.integer_grid(0, 4, 1)
GRID2 = ProductDomain.integer_grid(0, 3, 2)


class TestSymbolicEffect:
    def test_single_assignment(self):
        flowchart = library.mixer_program()
        chain = list(flowchart.assignment_ids())
        effect = symbolic_effect(flowchart, chain)
        assert set(effect) == {"y"}
        assert effect["y"].eval({"x1": 1, "x2": 2}) == 6

    def test_composition_through_chain(self):
        program = StructuredProgram(
            ["x1"],
            [Assign("r", var("x1") + 1), Assign("y", var("r") * var("r"))])
        flowchart = program.compile()
        # Assignment ids in execution order:
        trace = execute(flowchart, (2,), record_trace=True).trace
        chain = [node for node in trace
                 if isinstance(flowchart.boxes[node], AssignBox)]
        effect = symbolic_effect(flowchart, chain)
        # y's net effect is (x1+1)^2 in terms of *pre-chain* values.
        assert effect["y"].eval({"x1": 3}) == 16

    def test_rejects_non_assignment(self):
        flowchart = library.max_program()
        with pytest.raises(FlowchartError):
            symbolic_effect(flowchart, [flowchart.decision_ids()[0]])


class TestIteTransform:
    def test_example7_shape(self):
        """The diamond collapses to r := Ite(x1=1, 1, 2); y := 1 survives."""
        flowchart = library.example7_program()
        region = find_ite_regions(flowchart)[0]
        transformed = ite_transform(flowchart, region)
        assert is_straight_line(transformed)
        assert functionally_equivalent(flowchart, transformed, GRID2)
        ite_boxes = [box for box in transformed.boxes.values()
                     if isinstance(box, AssignBox)
                     and isinstance(box.expression, Ite)]
        assert len(ite_boxes) == 1
        assert ite_boxes[0].target == "r"

    def test_preserves_function_on_all_library_diamonds(self):
        for flowchart in (library.example8_program(),
                          library.example9_program(),
                          library.forgetting_program(),
                          library.max_program()):
            transformed = ite_transform_all(flowchart)
            assert functionally_equivalent(flowchart, transformed, GRID2)
            assert is_straight_line(transformed)

    def test_single_variable_arm_mismatch_merges_with_ite(self):
        """A variable assigned in one arm only still merges (worst case)."""
        flowchart = library.forgetting_program()  # else arm is empty
        region = find_ite_regions(flowchart)[0]
        transformed = ite_transform(flowchart, region)
        merged = [box for box in transformed.boxes.values()
                  if isinstance(box, AssignBox)
                  and isinstance(box.expression, Ite)]
        assert len(merged) == 1

    def test_identical_arm_detection_flag(self):
        """Identical arms merge cleanly only under the smarter variant."""
        program = StructuredProgram(
            ["x1", "x2"],
            [If(var("x2").eq(0), [Assign("y", var("x1"))],
                [Assign("y", var("x1"))])],
            name="identical-arms")
        flowchart = program.compile()
        region = find_ite_regions(flowchart)[0]
        blind = ite_transform(flowchart, region)
        smart = ite_transform(flowchart, region, detect_identical_arms=True)
        blind_ites = [box for box in blind.boxes.values()
                      if isinstance(box, AssignBox)
                      and isinstance(box.expression, Ite)]
        smart_ites = [box for box in smart.boxes.values()
                      if isinstance(box, AssignBox)
                      and isinstance(box.expression, Ite)]
        assert len(blind_ites) == 1
        assert len(smart_ites) == 0
        assert functionally_equivalent(flowchart, blind, GRID2)
        assert functionally_equivalent(flowchart, smart, GRID2)

    def test_multi_variable_merge_with_hazard(self):
        # Arms write two variables where one reads the other's old value.
        program = StructuredProgram(
            ["x1"],
            [Assign("a", Const(1)), Assign("b", Const(2)),
             If(var("x1").eq(0),
                [Assign("a", var("b")), Assign("b", var("a"))],
                [Assign("a", Const(5))]),
             Assign("y", var("a") * 10 + var("b"))])
        flowchart = program.compile()
        transformed = ite_transform_all(flowchart)
        assert functionally_equivalent(flowchart, transformed,
                                       ProductDomain.integer_grid(0, 1, 1))

    def test_nested_diamonds_transform_to_straight_line(self):
        flowchart = library.nested_branch_program()
        transformed = ite_transform_all(flowchart)
        assert is_straight_line(transformed)
        assert functionally_equivalent(
            flowchart, transformed, ProductDomain.integer_grid(0, 2, 3))


class TestWhileTransform:
    def test_timing_loop_collapses(self):
        flowchart = library.timing_loop()
        region = find_while_regions(flowchart)[0]
        transformed = while_transform(flowchart, region)
        assert is_straight_line(transformed)
        assert functionally_equivalent(flowchart, transformed, GRID1)

    def test_loop_expr_emitted(self):
        flowchart = library.accumulate_program()
        transformed = while_transform_all(flowchart)
        loops = [box for box in transformed.boxes.values()
                 if isinstance(box, AssignBox)
                 and isinstance(box.expression, LoopExpr)]
        assert loops  # at least one folded loop
        assert functionally_equivalent(flowchart, transformed, GRID1)

    def test_transform_removes_iteration_time(self):
        """After the transform, step counts no longer depend on the input
        — the whole point of treating the loop as one expression."""
        flowchart = library.timing_loop()
        transformed = while_transform_all(flowchart)
        steps = {execute(transformed, (n,)).steps for n, in GRID1}
        assert len(steps) == 1

    def test_parity_loop(self):
        flowchart = library.parity_program()
        transformed = while_transform_all(flowchart)
        assert functionally_equivalent(flowchart, transformed, GRID1)


class TestDuplicateAssignmentTransform:
    def test_example9_hoists_then_arm(self):
        """y := 0 is duplicated above the test; the then arm empties."""
        flowchart = library.example9_program()
        region = find_ite_regions(flowchart)[0]
        transformed = duplicate_assignment_transform(flowchart, region)
        assert functionally_equivalent(flowchart, transformed, GRID2)
        # Hoisted box occupies the old decision id, i.e. runs first.
        entry = transformed.boxes[transformed.start_id].successors()[0]
        hoisted = transformed.boxes[entry]
        assert isinstance(hoisted, AssignBox) and hoisted.target == "y"

    def test_differing_trailing_assignments_allowed(self):
        """The else copy overwrites, so differing expressions are fine."""
        flowchart = library.example8_program()  # arms: y := 1 / y := x1
        region = find_ite_regions(flowchart)[0]
        transformed = duplicate_assignment_transform(flowchart, region)
        assert functionally_equivalent(flowchart, transformed, GRID2)

    def test_drop_both_requires_identical_arms(self):
        flowchart = library.example8_program()
        region = find_ite_regions(flowchart)[0]
        with pytest.raises(FlowchartError, match="identical"):
            duplicate_assignment_transform(flowchart, region, drop_both=True)

    def test_drop_both_on_identical_arms(self):
        program = StructuredProgram(
            ["x1", "x2"],
            [If(var("x2").eq(0), [Assign("y", var("x1"))],
                [Assign("y", var("x1"))])],
            name="identical-arms")
        flowchart = program.compile()
        region = find_ite_regions(flowchart)[0]
        transformed = duplicate_assignment_transform(flowchart, region,
                                                     drop_both=True)
        assert functionally_equivalent(flowchart, transformed, GRID2)
        y_writes = [box for box in transformed.boxes.values()
                    if isinstance(box, AssignBox) and box.target == "y"]
        assert len(y_writes) == 1

    def test_rejects_mismatched_targets(self):
        program = StructuredProgram(
            ["x1", "x2"],
            [If(var("x2").eq(0), [Assign("y", Const(1))],
                [Assign("r", Const(2))]),
             Assign("y", var("y") + var("r"))])
        flowchart = program.compile()
        region = find_ite_regions(flowchart)[0]
        with pytest.raises(FlowchartError, match="different variables"):
            duplicate_assignment_transform(flowchart, region)

    def test_rejects_empty_arm(self):
        flowchart = library.forgetting_program()
        region = find_ite_regions(flowchart)[0]
        with pytest.raises(FlowchartError, match="non-empty"):
            duplicate_assignment_transform(flowchart, region)

    def test_rejects_arm_local_dependence(self):
        # Trailing assignment reads a value computed earlier in the arm.
        program = StructuredProgram(
            ["x1", "x2"],
            [If(var("x2").eq(0),
                [Assign("r", Const(1)), Assign("y", var("r"))],
                [Assign("r", Const(2)), Assign("y", var("r"))])])
        flowchart = program.compile()
        region = find_ite_regions(flowchart)[0]
        with pytest.raises(FlowchartError, match="arm-local"):
            duplicate_assignment_transform(flowchart, region)

    def test_rejects_target_read_in_region(self):
        # The else arm reads y's pre-branch value: hoisting observable.
        program = StructuredProgram(
            ["x1", "x2"],
            [Assign("y", Const(5)),
             If(var("x2").eq(0),
                [Assign("y", Const(1))],
                [Assign("y", var("y") + 1)])])
        flowchart = program.compile()
        region = find_ite_regions(flowchart)[0]
        with pytest.raises(FlowchartError, match="read inside the region"):
            duplicate_assignment_transform(flowchart, region)


class TestFunctionalEquivalence:
    def test_detects_difference(self):
        assert not functionally_equivalent(
            library.mixer_program(), library.max_program(), GRID2)

    def test_reflexive(self):
        flowchart = library.max_program()
        assert functionally_equivalent(flowchart, flowchart, GRID2)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(FlowchartError):
            functionally_equivalent(library.timing_loop(),
                                    library.max_program(), GRID1)
