"""Differential fault testing: every engine, one observable outcome.

The Observability Postulate makes the *failure mode* part of a
program's observable behaviour: which typed fault fires (fuel vs cap),
with which payload, on which input.  These properties drive the
interpreter, the compiled fastpath, and the batch tier (both lane
engines) over the whole figure library plus adversarial value-blowup
programs, under randomly drawn fuel and cap budgets, and require
bit-identical outcomes — value and step count on success, fault type
and payload on failure.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FuelExhaustedError, ValueCapExceededError
from repro.flowchart import library as figure_library
from repro.flowchart.batchpath import (K_CAP, K_FUEL, execute_batch,
                                       execute_batch_single,
                                       resolve_lane_engine)
from repro.flowchart.expr import BoolConst, Const, var
from repro.flowchart.fastpath import execute_compiled
from repro.flowchart.interpreter import execute
from repro.flowchart.structured import (Assign, StructuredProgram, While)

LANE_ENGINES = (("python", "numpy")
                if resolve_lane_engine("auto") == "numpy"
                else ("python",))


def _doubling():
    return StructuredProgram(
        ["x1"],
        [Assign("y", var("x1") + Const(1)),
         While(BoolConst(True), [Assign("y", var("y") + var("y"))])],
        name="blowup-doubling").compile()


def _squaring():
    # Self-limiting uncapped (stops at 2**48) so the differential can
    # draw value_cap=None without materialising astronomically wide
    # integers; small caps still fault long before the loop exits.
    return StructuredProgram(
        ["x1"],
        [Assign("y", Const(3)),
         While(var("y").lt(Const(1 << 48)),
               [Assign("y", var("y") * var("y"))])],
        name="blowup-squaring").compile()


PROGRAMS = figure_library.extended_suite() + [_doubling(), _squaring()]


def outcome(engine, flowchart, inputs, fuel, value_cap):
    """A comparable fingerprint of one execution: result or typed fault."""
    try:
        result = engine(flowchart, inputs, fuel=fuel, value_cap=value_cap)
    except FuelExhaustedError as error:
        return ("fuel", error.fuel)
    except ValueCapExceededError as error:
        return ("cap", error.cap)
    return ("ok", result.value, result.steps)


@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_engines_agree_on_every_outcome(data):
    flowchart = data.draw(st.sampled_from(PROGRAMS))
    inputs = tuple(
        data.draw(st.integers(-6, 6), label=f"x{index + 1}")
        for index in range(flowchart.arity))
    fuel = data.draw(st.integers(1, 400), label="fuel")
    value_cap = data.draw(st.one_of(st.none(), st.integers(1, 16)),
                          label="value_cap")
    interpreted = outcome(execute, flowchart, inputs, fuel, value_cap)
    compiled = outcome(execute_compiled, flowchart, inputs, fuel,
                       value_cap)
    batch = outcome(execute_batch_single, flowchart, inputs, fuel,
                    value_cap)
    assert interpreted == compiled == batch, (
        f"{flowchart.name}{inputs} fuel={fuel} cap={value_cap}: "
        f"interpreter {interpreted} != compiled {compiled} "
        f"!= batch {batch}")


def batch_lane_outcome(rows, i):
    kind = rows.kind(i)
    if kind == K_FUEL:
        return ("fuel", rows.fuel)
    if kind == K_CAP:
        return ("cap", rows.cap)
    return ("ok", rows.value(i), rows.steps(i))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_batch_lanes_agree_per_point(data):
    # One whole vector through execute_batch, every lane against the
    # interpreter: mixed OK/fuel/cap partitions (including vectors
    # where every lane faults, and vectors where some lanes retire to
    # the per-lane fallback mid-sweep) must agree point for point, on
    # both lane engines.
    flowchart = data.draw(st.sampled_from(PROGRAMS))
    points = data.draw(st.lists(
        st.tuples(*[st.integers(-6, 6)] * flowchart.arity),
        min_size=1, max_size=12), label="points")
    fuel = data.draw(st.integers(1, 400), label="fuel")
    value_cap = data.draw(st.one_of(st.none(), st.integers(1, 16)),
                          label="value_cap")
    expected = [outcome(execute, flowchart, point, fuel, value_cap)
                for point in points]
    for engine in LANE_ENGINES:
        rows = execute_batch(flowchart, points, fuel=fuel,
                             value_cap=value_cap, engine=engine,
                             memo=False)
        actual = [batch_lane_outcome(rows, i) for i in range(len(points))]
        assert actual == expected, (
            f"{flowchart.name} fuel={fuel} cap={value_cap} "
            f"engine={engine}: {actual} != {expected}")


@settings(max_examples=60, deadline=None)
@given(x1=st.integers(1, 4), cap=st.integers(1, 10))
def test_blowup_always_faults_identically(x1, cap):
    # x1 >= 1 keeps the doubled value strictly growing (0 and -1 inputs
    # reach the loop's fixed point at 0 and never widen).
    # With generous fuel the doubling loop must hit the cap in both
    # engines — and the environments they observed up to the fault are
    # not part of the outcome, only the typed fault itself is.
    flowchart = _doubling()
    interpreted = outcome(execute, flowchart, (x1,), 100_000, cap)
    compiled = outcome(execute_compiled, flowchart, (x1,), 100_000, cap)
    assert interpreted == compiled == ("cap", cap)
