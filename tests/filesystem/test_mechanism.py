"""Unit tests for repro.filesystem.mechanism (monitors, Example 2/4)."""

import pytest

from repro.core import check_soundness, is_violation
from repro.core.errors import DomainError, MechanismContractError
from repro.filesystem.mechanism import (content_leaking_monitor,
                                        decision_leaking_monitor,
                                        plug_puller, reference_monitor)
from repro.filesystem.model import (DENY, GRANT, filesystem_domain,
                                    read_file_program, sum_readable_program)
from repro.filesystem.policy import directory_gated_policy

DOMAIN = filesystem_domain(2, 0, 2)
Q = read_file_program(1, 2, DOMAIN)
POLICY = directory_gated_policy(2)


class TestReferenceMonitor:
    def test_grants_release_the_file(self):
        monitor = reference_monitor(Q, 1)
        assert monitor(GRANT, DENY, 7, 0) == 7

    def test_denials_give_the_paper_notice(self):
        monitor = reference_monitor(Q, 1)
        output = monitor(DENY, GRANT, 7, 0)
        assert is_violation(output)
        assert "Illegal access" in str(output)

    def test_sound_for_gated_policy(self):
        assert check_soundness(reference_monitor(Q, 1), POLICY).sound

    def test_contract(self):
        reference_monitor(Q, 1).check_contract()

    def test_bad_file_index(self):
        with pytest.raises(DomainError):
            reference_monitor(Q, 3)

    def test_monitor_for_aggregate_program(self):
        q_sum = sum_readable_program(2, DOMAIN)
        from repro.core import program_as_mechanism

        # SUM-READABLE only aggregates granted files, so it is sound as
        # its own mechanism for the gated policy.
        assert check_soundness(program_as_mechanism(q_sum), POLICY).sound


class TestExample4Leaks:
    def test_content_leaking_monitor_unsound(self):
        monitor = content_leaking_monitor(Q, 1)
        report = check_soundness(monitor, POLICY)
        assert not report.sound
        # The witness pair differs only in the *denied* file.
        witness = report.witness
        assert witness.first[0] == DENY or witness.second[0] == DENY

    def test_content_leak_is_in_the_notice_text(self):
        monitor = content_leaking_monitor(Q, 1)
        assert "content 2" in str(monitor(DENY, GRANT, 2, 0))

    def test_decision_leaking_monitor_unsound(self):
        monitor = decision_leaking_monitor(Q, 1, threshold=1)
        assert not check_soundness(monitor, POLICY).sound

    def test_decision_leak_notices_look_innocuous(self):
        """Every notice is the same harmless string — the leak is in
        *when* it appears (negative inference)."""
        monitor = decision_leaking_monitor(Q, 1, threshold=1)
        notices = {str(monitor(*point)) for point in DOMAIN
                   if is_violation(monitor(*point))}
        assert notices == {"Illegal access attempted, run aborted."}

    def test_decision_leaking_monitor_breaks_contract_too(self):
        # threshold=2: a denied file with content 1 quietly returns 0,
        # which is neither Q's output (1) nor a notice.
        monitor = decision_leaking_monitor(Q, 1, threshold=2)
        with pytest.raises(MechanismContractError):
            monitor.check_contract()


class TestPlugPuller:
    def test_sound_and_useless(self):
        monitor = plug_puller(Q)
        assert check_soundness(monitor, POLICY).sound
        assert monitor.acceptance_set() == frozenset()
