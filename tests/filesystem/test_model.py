"""Unit tests for repro.filesystem.model (Example 2's file system)."""

import pytest

from repro.core.errors import DomainError
from repro.filesystem.model import (DENY, GRANT, file_index,
                                    filesystem_domain, read_file_program,
                                    search_program, split_state,
                                    sum_readable_program)


class TestDomain:
    def test_shape(self):
        domain = filesystem_domain(2, 0, 1)
        assert domain.arity == 4
        assert len(domain) == 2 * 2 * 2 * 2  # 2 dirs x 2 files, binary

    def test_directories_before_files(self):
        domain = filesystem_domain(2, 0, 1)
        point = next(iter(domain))
        directories, files = split_state(point, 2)
        assert all(value in (GRANT, DENY) for value in directories)
        assert all(isinstance(value, int) for value in files)

    def test_zero_files_rejected(self):
        with pytest.raises(DomainError):
            filesystem_domain(0)


class TestSplitState:
    def test_split(self):
        directories, files = split_state((GRANT, DENY, 1, 2), 2)
        assert directories == (GRANT, DENY)
        assert files == (1, 2)

    def test_bad_length_rejected(self):
        with pytest.raises(DomainError):
            split_state((GRANT, 1), 2)

    def test_file_index_positions(self):
        assert file_index(1, file_count=2) == 3
        assert file_index(2, file_count=2) == 4


class TestPrograms:
    def test_read_file(self):
        q = read_file_program(2, 2)
        assert q(GRANT, GRANT, 7, 9) == 9

    def test_read_file_ignores_directories(self):
        """READFILE is a raw view function: it reads the file whether or
        not the directory grants — protection is the monitor's job."""
        q = read_file_program(1, 2)
        assert q(DENY, DENY, 7, 9) == 7

    def test_read_file_bad_index(self):
        with pytest.raises(DomainError):
            read_file_program(3, 2)

    def test_sum_readable(self):
        q = sum_readable_program(2)
        assert q(GRANT, GRANT, 3, 4) == 7
        assert q(GRANT, DENY, 3, 4) == 3
        assert q(DENY, DENY, 3, 4) == 0

    def test_search_scans_denied_files(self):
        """The Example 6 trap: SEARCH leaks positions of denied content."""
        q = search_program(9, 2)
        assert q(DENY, DENY, 9, 0) == 1
        assert q(DENY, DENY, 0, 9) == 2
        assert q(DENY, DENY, 0, 0) == 0
