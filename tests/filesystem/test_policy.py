"""Unit tests for repro.filesystem.policy (Example 2's policies)."""

from repro.filesystem.model import DENY, GRANT, filesystem_domain
from repro.filesystem.policy import (directories_only_policy,
                                     directory_gated_policy,
                                     query_budget_policy)


class TestDirectoryGatedPolicy:
    def test_grants_pass_content(self):
        policy = directory_gated_policy(2)
        assert policy(GRANT, GRANT, 5, 6) == (GRANT, GRANT, 5, 6)

    def test_denials_zero_content(self):
        """fi' = fi if di = YES and 0 otherwise (the paper's definition)."""
        policy = directory_gated_policy(2)
        assert policy(GRANT, DENY, 5, 6) == (GRANT, DENY, 5, 0)
        assert policy(DENY, DENY, 5, 6) == (DENY, DENY, 0, 0)

    def test_directories_always_visible(self):
        """'The user can always obtain the value of all the directories.'"""
        policy = directory_gated_policy(1)
        assert policy(DENY, 9)[0] == DENY

    def test_not_of_allow_form(self):
        """Two states differing only in a denied file are policy-equal;
        differing in a granted file they are not — the filtering depends
        on *values*, so no fixed index projection realises it."""
        policy = directory_gated_policy(1)
        assert policy(DENY, 5) == policy(DENY, 6)
        assert policy(GRANT, 5) != policy(GRANT, 6)

    def test_classes_over_domain(self):
        domain = filesystem_domain(1, 0, 2)
        classes = directory_gated_policy(1).classes(domain)
        # GRANT: 3 singleton classes; DENY: one class of 3 states.
        sizes = sorted(len(members) for members in classes.values())
        assert sizes == [1, 1, 1, 3]


class TestDirectoriesOnlyPolicy:
    def test_filters_all_files(self):
        policy = directories_only_policy(2)
        assert policy(GRANT, DENY, 5, 6) == (GRANT, DENY)
        assert policy(GRANT, DENY, 0, 0) == (GRANT, DENY)


class TestQueryBudgetPolicy:
    def test_budget_exhaustion(self):
        history = query_budget_policy(1, budget=1)
        session = history.session(2)
        first_state = (GRANT, 5)
        second_state = (GRANT, 6)
        outputs = session(*(first_state + second_state))
        assert outputs[0] == (GRANT, 5)       # within budget: gated view
        assert outputs[1] == ("budget-exhausted",)

    def test_denied_content_filtered_within_budget(self):
        history = query_budget_policy(1, budget=2)
        session = history.session(1)
        assert session(DENY, 9) == ((DENY, 0),)
