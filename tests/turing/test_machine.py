"""Unit tests for repro.turing.machine and .zoo."""

import pytest

from repro.core.errors import ExecutionError
from repro.turing import (BLANK, HALT_STATE, Move, TuringMachine,
                          behaviour_sample, machine, total_machines)


def eraser():
    """Erase the unary input, then halt on blank."""
    return TuringMachine({
        (0, 1): (0, 0, Move.RIGHT),
        (0, BLANK): (HALT_STATE, BLANK, Move.STAY),
    }, state_count=1, name="eraser")


def spinner():
    """Never halts: bounce on the same cell forever."""
    return TuringMachine({
        (0, 1): (0, 1, Move.STAY),
        (0, 0): (0, 0, Move.STAY),
        (0, BLANK): (0, BLANK, Move.STAY),
    }, state_count=1, name="spinner")


class TestInterpreter:
    def test_eraser_halts_in_input_plus_one_steps(self):
        for n in range(5):
            result = eraser().run(n, max_steps=100)
            assert result.halted
            assert result.steps == n + 1
            assert result.output == 0

    def test_spinner_never_halts(self):
        result = spinner().run(3, max_steps=50)
        assert not result.halted
        assert result.steps == 50

    def test_missing_transition_is_implicit_halt(self):
        tm = TuringMachine({(0, 1): (0, 1, Move.RIGHT)}, state_count=1)
        result = tm.run(2, max_steps=100)
        assert result.halted  # falls off the 1s onto blank: no rule
        assert result.steps == 3

    def test_halts_after_exactly(self):
        tm = eraser()
        assert tm.halts_after_exactly(2, 3)
        assert not tm.halts_after_exactly(2, 2)
        assert not tm.halts_after_exactly(2, 4)
        assert not spinner().halts_after_exactly(2, 10)

    def test_tape_output_counts_ones(self):
        writer = TuringMachine({
            (0, 1): (1, 1, Move.RIGHT),
            (1, 1): (HALT_STATE, 1, Move.STAY),
        }, state_count=2)
        assert writer.run(2, 10).output == 2

    def test_negative_input_rejected(self):
        with pytest.raises(ExecutionError):
            eraser().run(-1, 10)


class TestValidation:
    def test_bad_state(self):
        with pytest.raises(ExecutionError):
            TuringMachine({(5, 1): (0, 1, Move.STAY)}, state_count=1)

    def test_bad_symbol(self):
        with pytest.raises(ExecutionError):
            TuringMachine({(0, 7): (0, 1, Move.STAY)}, state_count=1)

    def test_bad_target(self):
        with pytest.raises(ExecutionError):
            TuringMachine({(0, 1): (9, 1, Move.STAY)}, state_count=1)

    def test_bad_move(self):
        with pytest.raises(ExecutionError):
            TuringMachine({(0, 1): (0, 1, 2)}, state_count=1)

    def test_zero_states(self):
        with pytest.raises(ExecutionError):
            TuringMachine({}, state_count=0)


class TestEnumeration:
    def test_deterministic(self):
        first = machine(123)
        second = machine(123)
        assert first.transitions == second.transitions

    def test_distinct_indices_reachable(self):
        tables = {frozenset(machine(i).transitions.items())
                  for i in range(0, 100, 7)}
        assert len(tables) > 10

    def test_index_zero_is_the_empty_machine(self):
        assert machine(0).transitions == {}
        assert machine(0).run(5, 10).halted  # implicit halt, 1 step

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            machine(-1)

    def test_behavioural_diversity(self):
        """The enumeration contains halting and (window-)looping
        machines — the diversity Ruzzo's argument needs."""
        sample = behaviour_sample(range(0, 400, 37), input_value=3,
                                  max_steps=50)
        halted = [index for index, (halts, _) in sample.items() if halts]
        running = [index for index, (halts, _) in sample.items()
                   if not halts]
        assert halted and running

    def test_total_machines_counts_period(self):
        assert total_machines(1) == (1 * 3 * 3 + 1 + 9) ** 3
