"""Unit tests for repro.turing.ruzzo — Section 4's undecidability duo."""

from repro.core import allow, is_violation, maximal_mechanism
from repro.turing import (halting_verdicts, machine, maximal_rejects,
                          ruzzo_program, soundness_is_constancy)

#: Indices with staggered own-input halting times under the default
#: enumeration: 0 halts in 1 step, 37 in 2, 74 in 3, 111 in 112, and
#: 148 never halts (checked to 10^5 steps by the machine tests' model).
FAST = (0, 37, 74)
SLOW = 111
LOOPER = 148


class TestRuzzoProgram:
    def test_q_values(self):
        program = ruzzo_program([0, 37], max_steps=5)
        assert program(0, 1) == 1      # machine 0 halts after exactly 1
        assert program(0, 2) == 0
        assert program(37, 2) == 1
        assert program(37, 1) == 0

    def test_looper_row_is_identically_zero(self):
        program = ruzzo_program([LOOPER], max_steps=30)
        assert all(program(LOOPER, steps) == 0 for steps in range(31))


class TestMaximalIsHaltingOracle:
    def test_rejects_exactly_halting_rows(self):
        """M(x1, x2) = Λ iff machine x1 halts (within the window) —
        the maximal mechanism computes halting."""
        indices = list(FAST) + [LOOPER]
        verdicts = maximal_rejects(indices, max_steps=10)
        for index in FAST:
            assert verdicts[index] is True
        assert verdicts[LOOPER] is False

    def test_window_dependence_is_the_non_recursiveness(self):
        """A slow halter looks non-halting until the window reaches its
        halting time — no bounded window gets every row right."""
        indices = [FAST[0], SLOW, LOOPER]
        series = halting_verdicts(indices, windows=[10, 200])
        small_window = dict(series)[10]
        large_window = dict(series)[200]
        assert small_window[SLOW] is False    # wrong (it halts at 112)
        assert large_window[SLOW] is True     # right, once window >= 112
        assert small_window[LOOPER] is False
        assert large_window[LOOPER] is False  # "not yet" forever

    def test_maximal_mechanism_row_shape(self):
        program = ruzzo_program([0, LOOPER], max_steps=10)
        construction = maximal_mechanism(program, allow(1, arity=2))
        # Halting machine's row: Q non-constant in x2 -> Λ everywhere.
        assert all(is_violation(construction.mechanism(0, steps))
                   for steps in range(11))
        # Non-halting row: constant 0 -> passed through everywhere.
        assert all(construction.mechanism(LOOPER, steps) == 0
                   for steps in range(11))


class TestSoundnessIsConstancy:
    def test_reduction_holds_on_samples(self):
        """Judging Q sound for allow() decides Q's constancy — on every
        sampled machine the two verdicts coincide."""
        for index in (0, 37, 74, 111, 148, 185):
            constant, sound = soundness_is_constancy(index, input_range=4,
                                                     max_steps=50)
            assert constant == sound

    def test_both_verdict_kinds_occur(self):
        verdicts = {soundness_is_constancy(index, 4, 50)
                    for index in (0, 148, 74, 111)}
        assert (True, True) in verdicts or (False, False) in verdicts
        assert len(verdicts) >= 1
