"""Dynamic-policy surveillance: epochs, Λ@e notices, and events.

The monitor-side contract for the policy_change/downgrade boxes:

- a policy_change replaces the policy in force for every later check
  and bumps the epoch counter; violation notices on such flowcharts
  are epoch-tagged (``Λ@e<n>``) because a notice issued under a
  different regime is a different observable;
- a downgrade strips exactly its indices from one variable's label —
  the admitted intransitive edge;
- the interpreter-level mechanism and the compiled instrumented
  mechanism agree output-for-output, epoch tags included, and the
  batch tier reproduces the violation/epoch registers lane-for-lane;
- the monitor emits ``policy_changed`` / ``downgrade_applied`` /
  ``epoch_violation`` events that validate against EVENT_SCHEMA.
"""

import json

import pytest

from repro import obs
from repro.core import ProductDomain
from repro.core.policy import AllowPolicy
from repro.flowchart.batchpath import execute_batch
from repro.flowchart.library import (downgrade_launder_program,
                                     downgrade_partial_program,
                                     dynamic_policy_suite,
                                     forgetting_program,
                                     policy_loosen_program,
                                     policy_tighten_program)
from repro.obs.events import JsonlSink, validate_event, validate_jsonl
from repro.surveillance.dynamic import (ViolationNotice, surveil,
                                        surveillance_mechanism)
from repro.surveillance.instrument import (EPOCH_VAR, VIOLATION_FLAG,
                                           instrument,
                                           instrumented_mechanism)
from repro.verify.enumerate import all_allow_policies

GRID = [(a, b) for a in range(3) for b in range(3)]


def grid_domain(arity=2):
    return ProductDomain.integer_grid(0, 2, arity)


class TestEpochSemantics:
    def test_tighten_rejects_with_epoch_tag(self):
        # y := x1; policy allow() — the halt check runs under epoch 1.
        fc = policy_tighten_program()
        for point in GRID:
            run = surveil(fc, point, frozenset((1,)))
            assert run.violated
            assert str(run.outcome) == "Λ@e1"
            assert run.epoch == 1
            assert run.final_allowed == frozenset()

    def test_loosen_accepts_under_the_new_policy(self):
        fc = policy_loosen_program()
        for point in GRID:
            run = surveil(fc, point, frozenset())
            assert not run.violated
            assert run.final_allowed == frozenset((1, 2))

    def test_classic_notices_stay_untagged(self):
        run = surveil(forgetting_program(), (1, 1), frozenset())
        assert run.violated
        assert str(run.outcome) == "Λ"
        assert run.epoch == 0

    def test_downgrade_strips_exactly_its_indices(self):
        # y := x1 + x2; downgrade y(2): y's label keeps index 1 only.
        fc = downgrade_partial_program()
        run = surveil(fc, (1, 2), frozenset((1,)))
        assert not run.violated
        assert run.labels["y"] == frozenset((1,))

    def test_launder_accepted_even_under_allow_none(self):
        fc = downgrade_launder_program()
        for point in GRID:
            run = surveil(fc, point, frozenset())
            assert not run.violated
            assert run.labels["y"] == frozenset()


class TestEngineDifferential:
    """interp-level mechanism == compiled instrumented mechanism == batch."""

    @pytest.mark.parametrize("flowchart", dynamic_policy_suite(),
                             ids=lambda fc: fc.name)
    def test_mechanisms_agree_epoch_tags_included(self, flowchart):
        domain = grid_domain(flowchart.arity)
        for policy in all_allow_policies(flowchart.arity):
            surv = surveillance_mechanism(flowchart, policy, domain)
            inst = instrumented_mechanism(flowchart, policy, domain)
            for point in domain:
                assert surv(*point) == inst(*point), \
                    (flowchart.name, policy.name, point)

    @pytest.mark.parametrize("flowchart", dynamic_policy_suite(),
                             ids=lambda fc: fc.name)
    def test_batch_lanes_reproduce_violation_and_epoch(self, flowchart):
        for policy in all_allow_policies(flowchart.arity):
            allowed = frozenset(policy.allowed)
            instrumented = instrument(flowchart, policy)
            batch = execute_batch(instrumented, GRID, need_env=True)
            for index, point in enumerate(GRID):
                run = surveil(flowchart, point, allowed)
                env = batch.env(index)
                assert (env.get(VIOLATION_FLAG, 0) == 1) == run.violated, \
                    (flowchart.name, policy.name, point)
                if run.violated and flowchart.policy_change_ids():
                    tag = f"Λ@e{env.get(EPOCH_VAR, 0)}"
                    assert str(run.outcome) == tag, \
                        (flowchart.name, policy.name, point)

    def test_notice_equality_is_by_message(self):
        assert ViolationNotice("Λ@e1") == ViolationNotice("Λ@e1")
        assert ViolationNotice("Λ@e1") != ViolationNotice("Λ@e2")


class TestEvents:
    def test_policy_changed_and_epoch_violation_events(self):
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            surveil(policy_tighten_program(), (1, 0), frozenset((1,)))
        changed = ring.events("policy_changed")
        assert len(changed) == 1
        assert changed[0]["epoch"] == 1
        assert changed[0]["allowed"] == []
        violations = ring.events("epoch_violation")
        assert len(violations) == 1
        assert violations[0]["epoch"] == 1
        for event in changed + violations:
            assert validate_event(event) == []

    def test_downgrade_applied_event(self):
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            surveil(downgrade_partial_program(), (1, 2), frozenset((1,)))
        (event,) = ring.events("downgrade_applied")
        assert event["variable"] == "y"
        assert event["dropped"] == [2]
        assert validate_event(event) == []

    def test_no_dynamic_events_on_classic_programs(self):
        ring = obs.RingBufferSink()
        with obs.observed(sinks=[ring], reset=True):
            surveil(forgetting_program(), (1, 1), frozenset())
        assert ring.events("policy_changed") == []
        assert ring.events("downgrade_applied") == []
        assert ring.events("epoch_violation") == []

    def test_jsonl_round_trip_validates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            with obs.observed(sinks=[sink], reset=True):
                for point in GRID:
                    surveil(policy_tighten_program(), point,
                            frozenset((1,)))
                    surveil(downgrade_partial_program(), point,
                            frozenset((1,)))
        lines = path.read_text().splitlines()
        total, problems = validate_jsonl(lines)
        assert problems == []
        kinds = {json.loads(line)["kind"] for line in lines}
        assert {"policy_changed", "downgrade_applied",
                "epoch_violation"} <= kinds
        assert total == len(lines)
