"""Unit tests for repro.surveillance.labels."""

import pytest

from repro.surveillance.labels import (EMPTY, from_mask, join, mask_subset,
                                       permitted, singleton, to_mask)


class TestLabelAlgebra:
    def test_singleton(self):
        assert singleton(3) == frozenset({3})

    def test_singleton_rejects_zero(self):
        with pytest.raises(ValueError):
            singleton(0)

    def test_join(self):
        assert join({1, 2}, {2, 3}, EMPTY) == frozenset({1, 2, 3})
        assert join() == EMPTY

    def test_join_idempotent_commutative_associative(self):
        a, b, c = frozenset({1}), frozenset({2, 3}), frozenset({1, 3})
        assert join(a, a) == a
        assert join(a, b) == join(b, a)
        assert join(join(a, b), c) == join(a, join(b, c))

    def test_permitted_is_subset_test(self):
        allowed = frozenset({1, 3})
        assert permitted(EMPTY, allowed)
        assert permitted(frozenset({1}), allowed)
        assert permitted(frozenset({1, 3}), allowed)
        assert not permitted(frozenset({2}), allowed)
        assert not permitted(frozenset({1, 2}), allowed)


class TestMaskCodec:
    def test_round_trip(self):
        for label in (EMPTY, frozenset({1}), frozenset({2, 5}),
                      frozenset({1, 2, 3, 8})):
            assert from_mask(to_mask(label)) == label

    def test_known_encodings(self):
        assert to_mask({1}) == 0b1
        assert to_mask({2}) == 0b10
        assert to_mask({1, 3}) == 0b101
        assert to_mask(EMPTY) == 0

    def test_mask_subset_matches_set_subset(self):
        import itertools

        universe = [frozenset(c) for size in range(4)
                    for c in itertools.combinations((1, 2, 3), size)]
        for a in universe:
            for b in universe:
                assert mask_subset(to_mask(a), to_mask(b)) == (a <= b)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            to_mask({0})
        with pytest.raises(ValueError):
            from_mask(-1)
