"""Unit tests for the high-water-mark mechanism and its Section 3 comparison."""

from repro.core import (Order, ProductDomain, allow, compare)
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.surveillance.dynamic import surveil, surveillance_mechanism
from repro.surveillance.highwater import highwater_mechanism
from repro.verify import (all_allow_policies, soundness_sweep,
                          unsound_results)

GRID2 = ProductDomain.integer_grid(0, 3, 2)


class TestMonotoneLabels:
    def test_labels_never_shrink(self):
        """High-water: reassignment joins instead of replacing."""
        flowchart = library.forgetting_program()
        run = surveil(flowchart, (1, 0), allowed=frozenset({2}),
                      forgetting=False)
        # y touched x1 first; high-water keeps that forever.
        assert run.labels["y"] >= frozenset({1, 2})
        assert run.violated

    def test_same_as_surveillance_without_reassignment(self):
        """On programs that assign each variable once, the two agree."""
        flowchart = library.mixer_program()
        for policy in all_allow_policies(2):
            surveillance = surveillance_mechanism(flowchart, policy, GRID2)
            highwater = highwater_mechanism(flowchart, policy, GRID2)
            for point in GRID2:
                assert (surveillance.passes(*point)
                        == highwater.passes(*point))


class TestPage48Comparison:
    def test_highwater_always_violates_on_forgetting_program(self):
        mechanism = highwater_mechanism(library.forgetting_program(),
                                        allow(2, arity=2), GRID2)
        assert mechanism.acceptance_set() == frozenset()

    def test_surveillance_strictly_more_complete(self):
        """Ms > Mh on the page-48 program."""
        flowchart = library.forgetting_program()
        policy = allow(2, arity=2)
        program = as_program(flowchart, GRID2)
        surveillance = surveillance_mechanism(flowchart, policy, GRID2,
                                              program=program)
        highwater = highwater_mechanism(flowchart, policy, GRID2,
                                        program=program)
        assert compare(surveillance, highwater).order is Order.FIRST_MORE


class TestSoundness:
    def test_highwater_sound_across_suite(self):
        """Mh is also sound (it over-approximates Ms's labels)."""
        results = soundness_sweep(
            library.extended_suite(),
            lambda flowchart, policy, domain: highwater_mechanism(
                flowchart, policy, domain))
        assert unsound_results(results) == []

    def test_surveillance_as_complete_as_highwater_everywhere(self):
        """Ms >= Mh on every suite program and policy."""
        for flowchart in library.extended_suite():
            domain = ProductDomain.integer_grid(0, 2, flowchart.arity)
            program = as_program(flowchart, domain)
            for policy in all_allow_policies(flowchart.arity):
                surveillance = surveillance_mechanism(
                    flowchart, policy, domain, program=program)
                highwater = highwater_mechanism(
                    flowchart, policy, domain, program=program)
                assert compare(surveillance,
                               highwater).first_as_complete
