"""Unit tests for the literal Section 3 instrumentation (rules 1-4)."""

import pytest

from repro.core import ProductDomain, allow, allow_none, is_violation
from repro.core.errors import ArityMismatchError
from repro.flowchart import library
from repro.flowchart.boxes import AssignBox, DecisionBox, HaltBox
from repro.flowchart.interpreter import as_program, execute
from repro.surveillance.dynamic import surveillance_mechanism
from repro.surveillance.instrument import (PC_LABEL, VIOLATION_FLAG,
                                           instrument,
                                           instrumented_mechanism,
                                           surveillance_variable)
from repro.verify import all_allow_policies

GRID2 = ProductDomain.integer_grid(0, 3, 2)


class TestInstrumentedStructure:
    def test_result_is_wellformed_flowchart(self):
        instrumented = instrument(library.forgetting_program(),
                                  allow(2, arity=2))
        # Validation ran in the constructor; basic shape checks:
        assert instrumented.arity == 2
        assert instrumented.halt_ids()

    def test_surveillance_variables_materialised(self):
        instrumented = instrument(library.forgetting_program(),
                                  allow(2, arity=2))
        names = instrumented.program_variables()
        assert surveillance_variable("x1") in names
        assert surveillance_variable("y") in names
        assert PC_LABEL in names
        assert VIOLATION_FLAG in names

    def test_rule2_pairs_label_update_with_assignment(self):
        """Each original assignment becomes (label update, assignment)."""
        original = library.mixer_program()
        instrumented = instrument(original, allow(1, 2, arity=2))
        originals = len(original.assignment_ids())
        halts = len(original.halt_ids())
        # Rule 1 init assignments, 2 per original assignment (rule 2),
        # and one `_viol := 1` per halt (rule 4).
        init_count = len(original.all_variables()) + 2  # + C̄ and _viol
        assert (len(instrumented.assignment_ids())
                == init_count + 2 * originals + halts)

    def test_rule4_halts_split(self):
        """Each original halt becomes a checked pair of halts."""
        original = library.mixer_program()
        instrumented = instrument(original, allow_none(2))
        assert len(instrumented.halt_ids()) == 2 * len(original.halt_ids())

    def test_violation_flag_in_final_environment(self):
        instrumented = instrument(library.forgetting_program(),
                                  allow(2, arity=2))
        accepted = execute(instrumented, (1, 0), capture_env=True)
        rejected = execute(instrumented, (1, 2), capture_env=True)
        assert accepted.env[VIOLATION_FLAG] == 0
        assert rejected.env[VIOLATION_FLAG] == 1

    def test_instrumented_preserves_value_on_accepting_runs(self):
        original = library.forgetting_program()
        instrumented = instrument(original, allow(2, arity=2))
        for point in GRID2:
            if execute(instrumented, point, capture_env=True).env[VIOLATION_FLAG] == 0:
                assert (execute(instrumented, point).value
                        == execute(original, point).value)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ArityMismatchError):
            instrument(library.forgetting_program(), allow(1, arity=3))


class TestEquivalenceWithDynamic:
    """The ablation: instrumentation and interpreter-level tracking are
    extensionally the same mechanism."""

    @pytest.mark.parametrize("timed", [False, True])
    def test_agreement_across_suite(self, timed):
        for flowchart in library.paper_figures():
            domain = ProductDomain.integer_grid(0, 2, flowchart.arity)
            program = as_program(flowchart, domain)
            for policy in all_allow_policies(flowchart.arity):
                dynamic = surveillance_mechanism(
                    flowchart, policy, domain, timed=timed, program=program)
                literal = instrumented_mechanism(
                    flowchart, policy, domain, timed=timed, program=program)
                for point in domain:
                    dynamic_output = dynamic(*point)
                    literal_output = literal(*point)
                    assert (is_violation(dynamic_output)
                            == is_violation(literal_output)), (
                        flowchart.name, policy.name, point)
                    if not is_violation(dynamic_output):
                        assert dynamic_output == literal_output

    def test_contract_holds(self):
        mechanism = instrumented_mechanism(library.forgetting_program(),
                                           allow(2, arity=2), GRID2)
        mechanism.check_contract()


class TestTimedInstrumentation:
    def test_timed_variant_halts_at_guard(self):
        instrumented = instrument(library.timing_loop(), allow_none(1),
                                  timed=True)
        result = execute(instrumented, (3,), capture_env=True)
        assert result.env[VIOLATION_FLAG] == 1
        # Early halt: far fewer boxes than the full loop would take.
        full = execute(instrument(library.timing_loop(), allow_none(1)),
                       (3,))
        assert result.steps < full.steps

    def test_timed_instrumented_is_itself_surveillable(self):
        """The instrumented flowchart is an ordinary flowchart — it can
        be instrumented again without error."""
        once = instrument(library.mixer_program(), allow(1, 2, arity=2))
        twice = instrument(once, allow(1, 2, arity=2))
        assert execute(twice, (1, 2)).value == execute(once, (1, 2)).value
