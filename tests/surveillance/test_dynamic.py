"""Unit tests for repro.surveillance.dynamic — Theorem 3 and the Section 3
worked comparisons, at the level of individual runs and mechanisms."""

import pytest

from repro.core import (ProductDomain, VALUE_AND_TIME, VALUE_ONLY, allow,
                        allow_all, allow_none, check_soundness, is_violation)
from repro.flowchart import library
from repro.flowchart.interpreter import as_program, execute
from repro.surveillance.dynamic import (surveil, surveillance_mechanism,
                                        timed_surveillance_mechanism)
from repro.verify import all_allow_policies, soundness_sweep, unsound_results

GRID1 = ProductDomain.integer_grid(0, 4, 1)
GRID2 = ProductDomain.integer_grid(0, 3, 2)


class TestSurveilRuns:
    def test_input_labels_initialised(self):
        run = surveil(library.mixer_program(), (1, 2),
                      allowed=frozenset({1, 2}))
        assert run.labels["x1"] == frozenset({1})
        assert run.labels["x2"] == frozenset({2})

    def test_data_flow_label(self):
        run = surveil(library.mixer_program(), (1, 2),
                      allowed=frozenset({1, 2}))
        assert run.labels["y"] == frozenset({1, 2})
        assert not run.violated

    def test_control_flow_label_via_pc(self):
        """Assignments under a branch absorb the branch's label."""
        run = surveil(library.forgetting_program(), (1, 0),
                      allowed=frozenset({2}))
        # y := 0 under `if x2 = 0`: constant data, control from x2.
        assert run.labels["y"] == frozenset({2})
        assert run.pc_label == frozenset({2})

    def test_forgetting_resets_labels(self):
        """Surveillance 'allows forgetting': reassignment replaces."""
        run = surveil(library.forgetting_program(), (1, 0),
                      allowed=frozenset({2}))
        # y was first x1 ({1}) then 0 under x2-control ({2}): the {1}
        # is forgotten.
        assert 1 not in run.labels["y"]

    def test_violation_when_output_label_disallowed(self):
        run = surveil(library.forgetting_program(), (1, 2),
                      allowed=frozenset({2}))
        assert run.violated

    def test_steps_match_plain_interpreter(self):
        flowchart = library.accumulate_program()
        for point in GRID1:
            run = surveil(flowchart, point, allowed=frozenset({1}))
            assert run.steps == execute(flowchart, point).steps

    def test_timed_halts_early_at_disallowed_test(self):
        flowchart = library.timing_loop()
        run = surveil(flowchart, (3,), allowed=frozenset(), timed=True)
        assert run.violated
        assert run.halted_early
        # Halted at the first test of r (tainted by x1): after the
        # initial assignment plus the test itself.
        assert run.steps == 2

    def test_untimed_runs_to_completion(self):
        run = surveil(library.timing_loop(), (3,), allowed=frozenset())
        assert run.violated
        assert not run.halted_early


class TestPaperComparisons:
    def test_forgetting_program_acceptance(self):
        """Page 48: Ms outputs Λ only when x2 != 0."""
        mechanism = surveillance_mechanism(
            library.forgetting_program(), allow(2, arity=2), GRID2)
        for point in GRID2:
            assert mechanism.passes(*point) == (point[1] == 0)

    def test_reconvergence_always_violates(self):
        """Page 49: Ms for the constant-1 program always outputs Λ."""
        mechanism = surveillance_mechanism(
            library.reconvergence_program(), allow(2, arity=2), GRID2)
        assert mechanism.acceptance_set() == frozenset()

    def test_example8_accepts_exactly_x2_equals_1(self):
        mechanism = surveillance_mechanism(
            library.example8_program(), allow(2, arity=2), GRID2)
        for point in GRID2:
            assert mechanism.passes(*point) == (point[1] == 1)


class TestTheorem3:
    """Surveillance is sound when running times are not observable."""

    def test_sound_across_suite_and_policies(self):
        results = soundness_sweep(
            library.extended_suite(),
            lambda flowchart, policy, domain: surveillance_mechanism(
                flowchart, policy, domain))
        assert unsound_results(results) == []

    def test_mechanism_contract_across_suite(self):
        for flowchart in library.extended_suite():
            domain = ProductDomain.integer_grid(0, 2, flowchart.arity)
            for policy in all_allow_policies(flowchart.arity):
                surveillance_mechanism(flowchart, policy,
                                       domain).check_contract()

    def test_allow_all_accepts_everything(self):
        for flowchart in library.paper_figures():
            domain = ProductDomain.integer_grid(0, 2, flowchart.arity)
            mechanism = surveillance_mechanism(
                flowchart, allow_all(flowchart.arity), domain)
            assert mechanism.acceptance_set() == frozenset(domain)

    def test_untimed_unsound_when_time_observable(self):
        """Theorem 3's proviso, witnessed by the timing loop."""
        flowchart = library.timing_loop()
        policy = allow_none(1)
        program = as_program(flowchart, GRID1, VALUE_AND_TIME)
        mechanism = surveillance_mechanism(
            flowchart, policy, GRID1, output_model=VALUE_AND_TIME,
            program=program)
        assert not check_soundness(mechanism, policy).sound


class TestMechanismAPI:
    def test_shared_program_object(self):
        flowchart = library.forgetting_program()
        program = as_program(flowchart, GRID2)
        mechanism = surveillance_mechanism(flowchart, allow(2, arity=2),
                                           GRID2, program=program)
        assert mechanism.program is program

    def test_non_allow_policy_rejected(self):
        from repro.core import content_dependent

        policy = content_dependent(lambda a, b: a, arity=2)
        with pytest.raises(TypeError):
            surveillance_mechanism(library.forgetting_program(), policy,
                                   GRID2)

    def test_arity_mismatch_rejected(self):
        from repro.core.errors import ArityMismatchError

        with pytest.raises(ArityMismatchError):
            surveillance_mechanism(library.forgetting_program(),
                                   allow(1, arity=3), GRID2)

    def test_name_conveys_variant(self):
        mechanism = surveillance_mechanism(library.forgetting_program(),
                                           allow(2, arity=2), GRID2)
        assert mechanism.name.startswith("M-s(")
        timed = timed_surveillance_mechanism(library.forgetting_program(),
                                             allow(2, arity=2), GRID2)
        assert timed.name.startswith("M'(")
