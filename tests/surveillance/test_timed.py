"""Unit tests for the timed surveillance mechanism M' (Theorem 3')."""

import pytest

from repro.core import (ProductDomain, VALUE_AND_TIME, allow, allow_none,
                        check_soundness, is_violation)
from repro.flowchart import library
from repro.flowchart.interpreter import as_program
from repro.surveillance.dynamic import (surveillance_mechanism,
                                        timed_surveillance_mechanism)
from repro.verify import soundness_sweep, unsound_results

GRID1 = ProductDomain.integer_grid(0, 4, 1)
GRID2 = ProductDomain.integer_grid(0, 3, 2)


class TestTheorem3Prime:
    def test_sound_across_suite_even_with_observable_time(self):
        results = soundness_sweep(
            library.extended_suite(),
            lambda flowchart, policy, domain: timed_surveillance_mechanism(
                flowchart, policy, domain,
                program=as_program(flowchart, domain, VALUE_AND_TIME)))
        assert unsound_results(results) == []

    def test_contract_with_observable_time(self):
        """When M' passes, its (value, time) equals Q's exactly."""
        for flowchart in library.paper_figures():
            domain = ProductDomain.integer_grid(0, 2, flowchart.arity)
            from repro.verify import all_allow_policies

            for policy in all_allow_policies(flowchart.arity):
                mechanism = timed_surveillance_mechanism(
                    flowchart, policy, domain)
                mechanism.check_contract()

    def test_notice_time_stamps_depend_only_on_allowed_inputs(self):
        """Λ@t must be constant within each policy class."""
        flowchart = library.forgetting_program()
        policy = allow(1, arity=2)
        mechanism = timed_surveillance_mechanism(flowchart, policy, GRID2)
        by_class = {}
        for point in GRID2:
            by_class.setdefault(policy(*point), set()).add(mechanism(*point))
        for outputs in by_class.values():
            assert len(outputs) == 1

    def test_timing_loop_distinct_verdicts(self):
        """The defining contrast: untimed M unsound, timed M' sound, on
        the same program under observable time."""
        flowchart = library.timing_loop()
        policy = allow_none(1)
        program = as_program(flowchart, GRID1, VALUE_AND_TIME)
        untimed = surveillance_mechanism(flowchart, policy, GRID1,
                                         output_model=VALUE_AND_TIME,
                                         program=program)
        timed = timed_surveillance_mechanism(flowchart, policy, GRID1,
                                             program=program)
        assert not check_soundness(untimed, policy).sound
        assert check_soundness(timed, policy).sound

    def test_timed_no_less_sound_but_possibly_less_complete(self):
        """M' may reject runs M accepts (it cannot wait to see whether a
        tainted test's influence is later forgotten)."""
        flowchart = library.forgetting_program()
        policy = allow(2, arity=2)
        untimed = surveillance_mechanism(flowchart, policy, GRID2)
        timed = timed_surveillance_mechanism(
            flowchart, policy, GRID2,
            output_model=VALUE_AND_TIME)
        # Untimed accepts x2 == 0 inputs; these pass y := x1 first, but
        # the branch test (on x2) is allowed, so M' accepts them too —
        # here the two have equal acceptance.
        assert {point for point in GRID2 if untimed.passes(*point)} == \
               {point for point in GRID2 if timed.passes(*point)}

    def test_timed_rejects_any_tainted_test_immediately(self):
        flowchart = library.reconvergence_program()  # branches on x1
        policy = allow(2, arity=2)
        timed = timed_surveillance_mechanism(flowchart, policy, GRID2)
        for point in GRID2:
            output = timed(*point)
            assert is_violation(output)
            # All notices identical: issued at the same (allowed-data-
            # determined) moment.
        assert len({str(timed(*point)) for point in GRID2}) == 1
