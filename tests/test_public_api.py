"""Public-API stability: the names downstream users import.

A rename or accidental un-export in any `__init__` breaks users before
it breaks our internal tests (which often import from submodules); this
file is the canary.
"""

import importlib

import pytest

EXPECTED = {
    "repro": [
        "Domain", "ProductDomain", "Program", "SecurityPolicy", "allow",
        "allow_all", "allow_none", "ProtectionMechanism",
        "ViolationNotice", "LAMBDA", "is_violation", "null_mechanism",
        "program_as_mechanism", "union", "join", "check_soundness",
        "is_sound", "compare", "as_complete", "more_complete",
        "maximal_mechanism", "VALUE_ONLY", "VALUE_AND_TIME",
        "surveil", "surveillance_mechanism",
        "timed_surveillance_mechanism", "highwater_mechanism",
        "instrument", "instrumented_mechanism", "certify",
        "compile_with_transforms", "leakage_profile",
    ],
    "repro.core": [
        "SoundnessReport", "SoundnessWitness", "Comparison", "Order",
        "SoundMechanismLattice", "MaximalConstruction",
        "theorem4_family", "mechanism_from_table", "content_dependent",
        "HistoryPolicy", "IntegrityPolicy", "retain_inputs",
        "check_preservation", "preserves", "check_guarded",
        "SessionMechanism", "unroll", "budget_gatekeeper",
        "leakage_profile", "shannon_leakage", "min_entropy_leakage",
        "worst_class_leakage",
    ],
    "repro.flowchart": [
        "Flowchart", "execute", "as_program", "FlowchartBuilder",
        "StructuredProgram", "Assign", "If", "While", "Skip",
        "Ite", "LoopExpr", "var", "const", "dominators",
        "postdominators", "find_ite_regions", "find_while_regions",
        "ite_transform", "while_transform",
        "duplicate_assignment_transform", "functionally_equivalent",
        "to_dot", "library",
    ],
    "repro.staticflow": [
        "certify", "analyse", "certify_flowchart",
        "control_dependencies", "certify_lattice", "powerset_lattice",
        "chain_lattice", "hybrid_mechanism",
        "eliminate_dead_surveillance", "compile_per_policy",
        "static_mechanism",
    ],
    "repro.minsky": [
        "MinskyMachine", "DataMarkMachine", "HaltMode",
        "fenton_mechanism", "negative_inference_program",
        "compile_to_fenton", "Discipline", "compilable",
    ],
    "repro.filesystem": [
        "filesystem_domain", "read_file_program", "reference_monitor",
        "directory_gated_policy", "content_leaking_monitor",
        "decision_leaking_monitor",
    ],
    "repro.channels": [
        "timing_attack", "timing_report", "sequential_reader",
        "tab_reader", "logon_program", "page_boundary_attack",
        "work_factor_row", "paged_logon_program",
        "per_query_leak_comparison", "fenton_halt_mechanism",
    ],
    "repro.capability": [
        "Capability", "CList", "Script", "ReadOp", "StatOp",
        "capability_monitor", "intended_policy", "information_audit",
    ],
    "repro.osched": [
        "PagePool", "System", "SenderProcess", "ReceiverProcess",
        "run_transmission", "decode", "channel_report",
    ],
    "repro.turing": [
        "TuringMachine", "machine", "ruzzo_program", "maximal_rejects",
        "halting_verdicts", "soundness_is_constancy",
    ],
    "repro.verify": [
        "soundness_sweep", "all_allow_policies", "sampled_soundness",
        "Table",
    ],
    "repro.analysis": [
        "Severity", "Diagnostic", "LintReport", "AnalysisPass",
        "PassManager", "lint_flowchart", "influence_analysis",
        "static_verdict", "default_passes", "TimingChannelPass",
        "pair_precision", "precision_harness", "PrecisionReport",
    ],
}


@pytest.mark.parametrize("module_name", sorted(EXPECTED))
def test_expected_names_are_exported(module_name):
    module = importlib.import_module(module_name)
    missing = [name for name in EXPECTED[module_name]
               if not hasattr(module, name)]
    assert not missing, f"{module_name} lost exports: {missing}"


@pytest.mark.parametrize("module_name", sorted(EXPECTED))
def test_all_list_is_accurate(module_name):
    """Everything in __all__ actually exists (no phantom exports)."""
    module = importlib.import_module(module_name)
    declared = getattr(module, "__all__", [])
    phantom = [name for name in declared if not hasattr(module, name)]
    assert not phantom, f"{module_name} declares missing names: {phantom}"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"
