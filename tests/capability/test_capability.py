"""Unit tests for repro.capability — Section 6 / Example 6."""

import pytest

from repro.core import check_soundness, is_violation
from repro.core.errors import DomainError
from repro.capability import (Capability, CList, ConstOp, ReadOp, STAT,
                              Script, StatOp, SumOp, capability_monitor,
                              information_audit, intended_policy,
                              object_domain, script_program)

OBJECTS = ("public", "secret")


def clist_with(*capabilities):
    return CList(capabilities)


class TestCList:
    def test_permits(self):
        clist = clist_with(Capability("public", ["read", "stat"]))
        assert clist.permits("public", "read")
        assert not clist.permits("public", "write")
        assert not clist.permits("secret", "read")

    def test_rights_merge_across_capabilities(self):
        clist = clist_with(Capability("a", ["read"]),
                           Capability("a", ["stat"]))
        assert clist.rights_on("a") == {"read", "stat"}

    def test_grant_and_restrict_are_functional(self):
        base = clist_with(Capability("a", ["read", "stat"]))
        restricted = base.restrict("a", ["read"])
        assert base.permits("a", "read")            # original untouched
        assert not restricted.permits("a", "read")
        assert restricted.permits("a", "stat")
        regranted = restricted.grant(Capability("a", ["read"]))
        assert regranted.permits("a", "read")

    def test_restrict_to_nothing_drops_object(self):
        base = clist_with(Capability("a", ["stat"]))
        assert base.restrict("a", ["stat"]).objects() == ()

    def test_unknown_right_rejected(self):
        with pytest.raises(DomainError):
            Capability("a", ["execute"])


class TestOperations:
    STORE = {"public": 2, "secret": 1}

    def test_read(self):
        assert ReadOp("secret").evaluate(self.STORE) == 1
        assert ReadOp("secret").required() == (("secret", "read"),)

    def test_stat_depends_on_contents(self):
        assert StatOp("secret").evaluate({"secret": 0}) == 0
        assert StatOp("secret").evaluate({"secret": 3}) == 1
        assert StatOp("secret").required() == (("secret", STAT),)

    def test_sum(self):
        operation = SumOp(["public", "secret"])
        assert operation.evaluate(self.STORE) == 3
        assert set(operation.reads()) == {"public", "secret"}

    def test_const_requires_nothing(self):
        assert ConstOp(7).required() == ()
        assert ConstOp(7).evaluate({}) == 7

    def test_script_reads_union(self):
        script = Script([ReadOp("public"), StatOp("secret")])
        assert script.reads() == {"public", "secret"}

    def test_empty_script_rejected(self):
        with pytest.raises(DomainError):
            Script([])


class TestMonitor:
    def test_permitted_script_runs(self):
        clist = clist_with(Capability("public", ["read"]))
        script = Script([ReadOp("public")], name="read-public")
        monitor = capability_monitor(script, clist, OBJECTS)
        assert monitor(2, 1) == 2

    def test_denied_script_gives_notice(self):
        clist = clist_with(Capability("public", ["read"]))
        script = Script([ReadOp("secret")], name="read-secret")
        monitor = capability_monitor(script, clist, OBJECTS)
        output = monitor(2, 1)
        assert is_violation(output)
        assert "read" in str(output) and "secret" in str(output)

    def test_notice_independent_of_contents(self):
        """The monitor's decision reads only the C-list — its notices
        cannot leak contents (contrast Example 4's monitors)."""
        clist = CList()
        script = Script([ReadOp("secret")])
        monitor = capability_monitor(script, clist, OBJECTS)
        notices = {str(monitor(*point)) for point in monitor.domain}
        assert len(notices) == 1

    def test_contract(self):
        clist = clist_with(Capability("public", ["read"]),
                           Capability("secret", ["stat"]))
        script = Script([ReadOp("public"), StatOp("secret")])
        capability_monitor(script, clist, OBJECTS).check_contract()

    def test_script_over_unknown_object_rejected(self):
        with pytest.raises(DomainError):
            script_program(Script([ReadOp("ghost")]), OBJECTS)


class TestExample6:
    """Access control is not information control."""

    def test_blocking_readfile_is_not_enough(self):
        # No read on secret — READFILE(secret) is blocked...
        clist = clist_with(Capability("public", ["read", "stat"]),
                           Capability("secret", ["stat"]))
        readfile = Script([ReadOp("secret")], name="READFILE(secret)")
        monitor = capability_monitor(readfile, clist, OBJECTS)
        assert all(is_violation(monitor(*p)) for p in monitor.domain)

        # ...but a permitted stat-only script extracts secret contents.
        sneaky = Script([StatOp("secret")], name="STAT(secret)")
        audit = information_audit(sneaky, clist, OBJECTS)
        assert audit["access_granted"]
        assert not audit["sound"]
        assert audit["escaping_objects"] == ["secret"]

    def test_intended_policy_reflects_read_rights(self):
        clist = clist_with(Capability("public", ["read"]),
                           Capability("secret", ["stat"]))
        policy = intended_policy(clist, OBJECTS)
        assert policy.name == "allow(1)"

    def test_removing_the_aggregate_right_restores_soundness(self):
        clist = clist_with(Capability("public", ["read", "stat"]))
        sneaky = Script([StatOp("secret")], name="STAT(secret)")
        audit = information_audit(sneaky, clist, OBJECTS)
        assert not audit["access_granted"]
        assert audit["sound"]

    def test_permitted_scripts_over_readable_objects_are_sound(self):
        clist = clist_with(Capability("public", ["read", "stat"]))
        script = Script([ReadOp("public"), StatOp("public"), ConstOp(5)],
                        name="all-public")
        audit = information_audit(script, clist, OBJECTS)
        assert audit["access_granted"] and audit["sound"]

    def test_aggregate_mixing_secret_is_unsound(self):
        clist = clist_with(Capability("public", ["read", "stat"]),
                           Capability("secret", ["stat"]))
        script = Script([SumOp(["public", "secret"])], name="SUM")
        audit = information_audit(script, clist, OBJECTS)
        assert audit["access_granted"]
        assert not audit["sound"]
        monitor = capability_monitor(script, clist, OBJECTS)
        policy = intended_policy(clist, OBJECTS)
        witness = check_soundness(monitor, policy).witness
        # The witness pair differs only in the secret object.
        assert witness.first[0] == witness.second[0]
        assert witness.first[1] != witness.second[1]
