"""Cross-node observability: one rooted span tree, message events.

Every node process emits its span under the coordinator's ``dist_run``
root via deterministic ids (``{pid}-node{n}i{incarnation}``), and the
coordinator closes the spans of crashed incarnations itself — so even
a chaosed run with kills renders as a single clean tree with zero
problems.
"""

from repro import obs
from repro.dist import run_distributed, serial_reference
from repro.flowchart.parser import parse_program
from repro.verify.chaos import FaultPlan

RELAY = """
program relay(x1, x2) {
    s := x1 + x2;
    send ch(s);
    recv ch(u);
    y := u * 2
}
"""


def run_traced(plan=None, nodes=2):
    flowchart = parse_program(RELAY).compile()
    ring = obs.RingBufferSink(capacity=65536)
    with obs.observed(sinks=[ring], reset=True):
        result = run_distributed(flowchart, (3, 4), (1, 2), nodes=nodes,
                                 plan=plan)
    return result, ring


class TestSpanTree:
    def test_clean_run_is_single_rooted_and_closed(self):
        result, ring = run_traced()
        assert result.outcome == 14
        forest = obs.build_span_tree(ring.events())
        assert forest.problems == []
        assert forest.single_rooted
        root = forest.roots[0]
        assert root.op == "dist_run"
        node_spans = [node for _, node in root.walk() if node.op == "node"]
        assert len(node_spans) == 2
        for _, node in root.walk():
            assert node.closed

    def test_crashed_incarnations_still_close(self):
        result, ring = run_traced(plan=FaultPlan(seed=0, kill=1.0))
        assert result.crashes >= 1
        forest = obs.build_span_tree(ring.events())
        assert forest.problems == []
        assert forest.single_rooted
        node_spans = [node for _, node in forest.roots[0].walk()
                      if node.op == "node"]
        # One span per incarnation: N original + one per recovery.
        assert len(node_spans) == result.nodes + result.recoveries
        assert all(node.closed for node in node_spans)


class TestMessageEvents:
    def test_message_sent_events_cover_the_traffic(self):
        result, ring = run_traced()
        sent = ring.events("message_sent")
        assert len(sent) == result.messages_sent
        assert sent
        for event in sent:
            assert {"channel", "seq", "src", "dst"} <= set(event)

    def test_crash_and_recovery_events(self):
        result, ring = run_traced(plan=FaultPlan(seed=0, kill=1.0))
        crashed = ring.events("node_crashed")
        recovered = ring.events("node_recovered")
        assert len(crashed) == result.crashes
        assert len(recovered) == result.recoveries
        assert all(event["incarnation"] >= 1 for event in recovered)

    def test_retries_under_drop_schedule(self):
        result, ring = run_traced(
            plan=FaultPlan(seed=2, msg_drop=0.5), nodes=2)
        flowchart = parse_program(RELAY).compile()
        assert result.row() == serial_reference(flowchart, (3, 4), (1, 2))
        retried = ring.events("message_retried")
        assert len(retried) == result.messages_retried
        assert retried, "a 50% drop schedule must force retransmission"
        assert all(event["attempt"] >= 1 for event in retried)
