"""Deterministic box→node assignment: homes pinned, start on node 0."""

import pytest

from repro.core.errors import ReproError
from repro.flowchart.boxes import RecvBox, StartBox
from repro.flowchart.parser import parse_program
from repro.dist import build_partition, channel_homes

RELAY3 = """
program relay3(x1, x2) {
    s := x1 + x2;
    send a(s);
    recv a(u);
    t := u * 2;
    send b(t);
    recv b(v);
    y := v + x1
}
"""


def compile_source(source):
    return parse_program(source).compile()


class TestChannelHomes:
    def test_homes_cover_every_channel(self):
        flowchart = compile_source(RELAY3)
        homes = channel_homes(flowchart, 3)
        assert sorted(homes) == ["a", "b"]
        assert all(0 <= node < 3 for node in homes.values())

    def test_homes_are_rank_round_robin(self):
        flowchart = compile_source(RELAY3)
        assert channel_homes(flowchart, 2) == {"a": 0, "b": 1}
        assert channel_homes(flowchart, 1) == {"a": 0, "b": 0}


class TestBuildPartition:
    def test_every_box_is_assigned(self):
        flowchart = compile_source(RELAY3)
        partition = build_partition(flowchart, 3)
        assert set(partition.assignment) == set(flowchart.boxes)
        assert all(0 <= node < 3 for node in partition.assignment.values())

    def test_start_and_entry_on_node_zero(self):
        flowchart = compile_source(RELAY3)
        partition = build_partition(flowchart, 3)
        for box_id, box in flowchart.boxes.items():
            if isinstance(box, StartBox):
                assert partition.node_of(box_id) == 0
        entry = flowchart.boxes[flowchart.start_id].successors()[0]
        assert partition.node_of(entry) == 0

    def test_recv_boxes_live_at_their_channel_home(self):
        flowchart = compile_source(RELAY3)
        partition = build_partition(flowchart, 3)
        for box_id, box in flowchart.boxes.items():
            if isinstance(box, RecvBox):
                assert partition.node_of(box_id) == \
                    partition.homes[box.channel]

    def test_deterministic(self):
        flowchart = compile_source(RELAY3)
        first = build_partition(flowchart, 3)
        second = build_partition(flowchart, 3)
        assert first.assignment == second.assignment
        assert first.homes == second.homes

    def test_single_node_degenerates_to_all_zero(self):
        flowchart = compile_source(RELAY3)
        partition = build_partition(flowchart, 1)
        assert set(partition.assignment.values()) == {0}

    def test_zero_nodes_rejected(self):
        with pytest.raises(ReproError, match=">= 1 node"):
            build_partition(compile_source(RELAY3), 0)
