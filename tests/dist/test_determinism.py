"""The headline invariant: serial == distributed, row for row.

Final store, notices (including ``Λ@e{n}`` epoch tags), and step
counts must be identical whether the flowchart runs in one process or
partitioned across N, under any recoverable fault schedule.  Corrupted
envelopes totalize as ``Λ!msg[...]`` — never a silent wrong answer.
"""

import pytest

from repro.dist import run_distributed, serial_reference
from repro.flowchart.parser import parse_program
from repro.verify.chaos import FaultPlan

RELAY3 = """
program relay3(x1, x2) {
    s := x1 + x2;
    send a(s);
    recv a(u);
    t := u * 2;
    send b(t);
    recv b(v);
    y := v + x1
}
"""

PINGPONG = """
program pingpong(x1, x2) {
    n := x1;
    acc := 0;
    while n != 0 {
        send ping(n);
        recv ping(m);
        acc := acc + m * x2;
        n := n - 1
    };
    y := acc
}
"""

EPOCHY = """
program epochy(x1, x2) {
    send ch(x1);
    policy allow(1);
    recv ch(u);
    y := u + x2
}
"""


def compile_source(source):
    return parse_program(source).compile()


def both(source, inputs, allowed, **kwargs):
    flowchart = compile_source(source)
    reference = serial_reference(flowchart, inputs, allowed, **kwargs)
    result = run_distributed(flowchart, inputs, allowed,
                             nodes=kwargs.pop("nodes", 3), **kwargs)
    return reference, result


class TestCleanRuns:
    @pytest.mark.parametrize("nodes", [1, 2, 3])
    def test_relay_row_identical(self, nodes):
        flowchart = compile_source(RELAY3)
        reference = serial_reference(flowchart, (3, 4), (1, 2))
        result = run_distributed(flowchart, (3, 4), (1, 2), nodes=nodes)
        assert result.row() == reference
        assert result.outcome == 17  # (3+4)*2 + 3
        assert result.crashes == 0

    def test_looping_program_row_identical(self):
        reference, result = both(PINGPONG, (4, 5), (1, 2))
        assert result.row() == reference
        assert result.outcome == 50  # (4+3+2+1)*5

    def test_violation_rows_match(self):
        # epochy ends under allow(1) with u ⊒ {1} and x2 ⊒ {2}: the
        # halt check fails in epoch 1, on both sides, with the tag.
        reference, result = both(EPOCHY, (3, 4), (1, 2))
        assert result.row() == reference
        assert str(result.outcome) == "Λ@e1"


class TestChaosedRuns:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_drop_dup_delay_kill_schedule_recovers(self, seed):
        plan = FaultPlan(seed=seed, msg_drop=0.3, msg_dup=0.2,
                         msg_delay=0.3, msg_delay_seconds=0.02, kill=0.08)
        flowchart = compile_source(RELAY3)
        reference = serial_reference(flowchart, (3, 4), (1, 2))
        result = run_distributed(flowchart, (3, 4), (1, 2), nodes=3,
                                 plan=plan)
        assert result.row() == reference
        assert result.recoveries == result.crashes

    def test_every_node_crashing_once_still_matches(self):
        # kill=1.0 fires on the first accepted envelope of every
        # incarnation-0 node: each crashes exactly once, replays its
        # journal, and the run completes with the serial row.
        plan = FaultPlan(seed=0, kill=1.0)
        flowchart = compile_source(RELAY3)
        reference = serial_reference(flowchart, (3, 4), (1, 2))
        result = run_distributed(flowchart, (3, 4), (1, 2), nodes=2,
                                 plan=plan)
        assert result.row() == reference
        assert result.crashes >= 1
        assert result.recoveries == result.crashes

    def test_corruption_totalizes_never_lies(self):
        plan = FaultPlan(seed=1, msg_corrupt=1.0)
        flowchart = compile_source(RELAY3)
        result = run_distributed(flowchart, (3, 4), (1, 2), nodes=2,
                                 plan=plan)
        assert str(result.outcome).startswith("Λ!msg[corrupt:")
        row = result.row()
        assert row["steps"] is None and row["env"] is None


class TestFaultParity:
    def test_empty_recv_matches_serial(self):
        source = "program p(x1) { recv lonely(u); y := u }"
        reference, result = both(source, (1,), (1,))
        assert result.row() == reference
        assert str(result.outcome) == "Λ!msg[empty:lonely]"

    def test_fuel_exhaustion_matches_serial(self):
        reference, result = both(PINGPONG, (50, 1), (1, 2), fuel=40)
        assert result.row() == reference
        assert str(result.outcome) == "Λ!fuel[40]"

    def test_value_cap_matches_serial(self):
        source = ("program p(x1) { send ch(x1); recv ch(u); "
                  "y := u * u * u }")
        reference, result = both(source, (300,), (1,), value_cap=16)
        assert result.row() == reference
        assert str(result.outcome) == "Λ!cap[16]"

    def test_timed_early_notice_matches_serial(self):
        source = ("program p(x1, x2) { send ch(x2); recv ch(u); "
                  "if u == 0 { y := 1 } else { y := 2 } }")
        reference, result = both(source, (1, 0), (1,), timed=True)
        assert result.row() == reference
        assert str(result.outcome) == "Λ"
