"""The high-water-mark protection mechanism (Section 3 comparison).

High-water mark is surveillance without forgetting: a variable's label
only ever grows.  The paper's page-48 comparison:

    *It is easy to see that Ms >= Mh ... Intuitively, surveillance is
    better here, since it allows "forgetting" while high-water mark does
    not.*

This module is a thin, named wrapper over the surveillance interpreter
with ``forgetting=False`` so the two mechanisms differ in exactly one
switch — the design choice bench E06 ablates.
"""

from __future__ import annotations

from typing import Optional

from ..core.domains import ProductDomain
from ..core.mechanism import ProtectionMechanism
from ..core.observability import VALUE_ONLY, OutputModel
from ..core.policy import AllowPolicy
from ..core.program import Program
from ..flowchart.interpreter import DEFAULT_FUEL
from ..flowchart.program import Flowchart
from .dynamic import surveillance_mechanism


def highwater_mechanism(flowchart: Flowchart, policy: AllowPolicy,
                        domain: ProductDomain,
                        output_model: OutputModel = VALUE_ONLY,
                        timed: bool = False,
                        fuel: int = DEFAULT_FUEL,
                        program: Optional[Program] = None,
                        name: Optional[str] = None,
                        value_cap: Optional[int] = None,
                        backend: Optional[str] = None) -> ProtectionMechanism:
    """The high-water-mark mechanism Mh for (Q, allow(J)).

    Identical to the surveillance mechanism except labels accumulate
    monotonically across assignments — once a variable has depended on a
    disallowed input, it is marked forever.
    """
    return surveillance_mechanism(
        flowchart, policy, domain, output_model=output_model, timed=timed,
        forgetting=False, fuel=fuel, program=program,
        name=name or f"M-hw({flowchart.name}, {policy.name})",
        value_cap=value_cap, backend=backend,
    )
