"""The literal Section 3 construction: surveillance as a flowchart transform.

The paper defines the surveillance mechanism *as a program*: transform
``Q`` into a new flowchart ``M`` whose variables are Q's variables plus
the surveillance variables, via four rules:

1. after the START box, set ``x̄_i := {i}`` and every other surveillance
   variable to ∅;
2. replace ``v := E(w1..wp)`` with ``v̄ := w̄1 ∪ ... ∪ w̄p ∪ C̄`` followed
   by the original assignment;
3. replace the decision on ``B(w1..wp)`` with ``C̄ := C̄ ∪ w̄1 ∪ ... ∪ w̄p``
   followed by the decision;
4. replace each HALT with a test of ``ȳ ∪ C̄ ⊆ J``: halt normally when
   it holds, emit the violation notice Λ otherwise (C̄ participates so
   the notice decision depends only on allowed data — Example 4).

Flowchart variables hold integers, so labels are encoded as bitmasks
(bit i-1 ⇔ index i); set union is bitwise-or and the subset test is
``(v̄ | J) == J``.  A violation is signalled by setting the flag
variable ``_viol`` to 1 before halting; the mechanism wrapper reads it
from the final environment.

The timed variant (Theorem 3′) adds rule 3′: before each decision,
test the *would-be* C̄ against J and halt with a violation immediately
when it fails.

The instrumented flowchart is itself a wellformed flowchart — it can be
executed, printed, analysed, or instrumented again.  Bench E04 checks
it agrees with the interpreter-level mechanism on every input and
measures the overhead of the extra boxes.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Optional
from weakref import WeakKeyDictionary

from ..core.domains import ProductDomain
from ..core.errors import ArityMismatchError, FlowchartError
from ..core.mechanism import ProtectionMechanism, ViolationNotice
from ..core.observability import VALUE_ONLY, OutputModel
from ..core.policy import AllowPolicy
from ..core.program import Program
from ..flowchart.boxes import (AssignBox, Box, DecisionBox, DowngradeBox,
                               HaltBox, NodeId, PolicyChangeBox, StartBox)
from ..flowchart.expr import BinOp, Compare, Const, Var
from ..flowchart.fastpath import run_flowchart
from ..flowchart.interpreter import DEFAULT_FUEL, as_program, execute
from ..flowchart.program import Flowchart
from ..obs import runtime as _obs
from .labels import to_mask

#: Name of the surveillance variable of ``v``.
VIOLATION_FLAG = "_viol"
PC_LABEL = "_s_C"
#: Dynamic-policy state: the mask of the policy in force, and the epoch
#: counter (number of policy changes executed).  Only materialised when
#: the flowchart contains policy_change/downgrade boxes — classic
#: programs instrument to exactly the same boxes as before.
POLICY_MASK = "_s_J"
EPOCH_VAR = "_s_epoch"

_ids = itertools.count()

#: flowchart -> {(allowed_mask, timed): instrumented flowchart}.  The
#: transform is pure, so repeated (Q, J) instrumentations — one per
#: policy per sweep rep — can share one result; crucially this keeps
#: the instrumented flowchart's *identity* stable, which is what the
#: compiled-backend cache (`repro.flowchart.fastpath`) is keyed on.
_INSTRUMENT_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()
_instrument_lock = threading.Lock()


def surveillance_variable(variable: str) -> str:
    """The name of v̄ in the instrumented flowchart."""
    return f"_s_{variable}"


def _fresh(hint: str) -> NodeId:
    return f"__{hint}{next(_ids)}"


def _label_union(names, include_pc: bool) -> "BinOp":
    """The expression ``w̄1 | ... | w̄p [| C̄]`` (0 when empty)."""
    terms = [Var(surveillance_variable(name)) for name in sorted(names)]
    if include_pc:
        terms.append(Var(PC_LABEL))
    expression = terms[0] if terms else Const(0)
    for term in terms[1:]:
        expression = BinOp("|", expression, term)
    return expression


def _subset_of_mask(expression, allowed_mask: int) -> Compare:
    """The predicate ``(expression | J) == J``."""
    return Compare("==", BinOp("|", expression, Const(allowed_mask)),
                   Const(allowed_mask))


def _subset_of_policy(expression, dynamic: bool,
                      allowed_mask: int) -> Compare:
    """Subset test against the policy in force.

    Fixed-policy flowcharts keep the constant-folded ``(e | J) == J``
    shape (bit-identical codegen to before); dynamic ones test against
    the ``_s_J`` register so every check honours the policy installed
    by the most recent ``policy_change``.
    """
    if not dynamic:
        return _subset_of_mask(expression, allowed_mask)
    return Compare("==", BinOp("|", expression, Var(POLICY_MASK)),
                   Var(POLICY_MASK))


def instrument(flowchart: Flowchart, policy: AllowPolicy,
               timed: bool = False,
               name: Optional[str] = None) -> Flowchart:
    """Apply the four transformation rules, yielding the flowchart M.

    The result has the same input variables and output variable as Q;
    after it halts, ``_viol == 1`` in the final environment iff the run
    ended in a violation notice.
    """
    if policy.arity != flowchart.arity:
        raise ArityMismatchError(
            f"policy arity {policy.arity} != flowchart arity {flowchart.arity}"
        )
    if flowchart.has_channels():
        # Literal instrumentation encodes labels as integer variables of
        # the instrumented flowchart; channel messages carry labels
        # inside their envelopes, which the integer environment cannot
        # model.  Channel programs are surveilled interpreter-level
        # (repro.surveillance.dynamic.surveil) only.
        raise FlowchartError(
            f"flowchart {flowchart.name!r} has channel boxes; literal "
            "instrumentation does not support send/recv — use the "
            "interpreter-level surveillance mechanism")
    allowed_mask = to_mask(policy.allowed)
    dynamic = flowchart.has_dynamic_policy()
    arity_mask = (1 << flowchart.arity) - 1

    memo_key = (allowed_mask, timed) if name is None else None
    if memo_key is not None:
        with _instrument_lock:
            cached = _INSTRUMENT_MEMO.get(flowchart, {}).get(memo_key)
        if cached is not None:
            if _obs.active:
                _obs.record_instrument_memo(hit=True)
            return cached
        if _obs.active:
            _obs.record_instrument_memo(hit=False)

    boxes: Dict[NodeId, Box] = {}

    # Each original box id is preserved as the entry point of its
    # replacement structure, so all original edges stay valid.
    for node_id, box in flowchart.boxes.items():
        if isinstance(box, StartBox):
            # Rule 1: initialise surveillance variables right after START.
            chain_targets = []
            for position, input_name in enumerate(flowchart.input_variables, 1):
                chain_targets.append(
                    (surveillance_variable(input_name), Const(1 << (position - 1))))
            for program_variable in flowchart.program_variables():
                chain_targets.append(
                    (surveillance_variable(program_variable), Const(0)))
            chain_targets.append(
                (surveillance_variable(flowchart.output_variable), Const(0)))
            chain_targets.append((PC_LABEL, Const(0)))
            chain_targets.append((VIOLATION_FLAG, Const(0)))
            if dynamic:
                chain_targets.append((POLICY_MASK, Const(allowed_mask)))
                chain_targets.append((EPOCH_VAR, Const(0)))

            current = node_id
            boxes[node_id] = StartBox("__patch__")
            previous = node_id
            for target, expression in chain_targets:
                assign_id = _fresh("i")
                boxes[assign_id] = AssignBox(target, expression, "__patch__")
                _patch(boxes, previous, assign_id)
                previous = assign_id
            _patch(boxes, previous, box.next)

        elif isinstance(box, AssignBox):
            # Rule 2: v̄ := w̄1 ∪ ... ∪ w̄p ∪ C̄ ; then the assignment.
            label_id = node_id
            assign_id = _fresh("a")
            boxes[label_id] = AssignBox(
                surveillance_variable(box.target),
                _label_union(box.expression.variables(), include_pc=True),
                assign_id,
            )
            boxes[assign_id] = AssignBox(box.target, box.expression, box.next)

        elif isinstance(box, DecisionBox):
            test_union = _label_union(box.predicate.variables(),
                                      include_pc=False)
            if timed:
                # Rule 3': guard the test; halt with a violation the
                # moment a disallowed variable is about to be tested.
                guard_id = node_id
                temp = _fresh("g")
                update_id = _fresh("c")
                decide_id = _fresh("d")
                viol_id = _fresh("v")
                halt_id = _fresh("h")
                boxes[guard_id] = AssignBox("_s_test", test_union, temp)
                boxes[temp] = DecisionBox(
                    _subset_of_policy(Var("_s_test"), dynamic, allowed_mask),
                    update_id, viol_id,
                )
                boxes[update_id] = AssignBox(
                    PC_LABEL, BinOp("|", Var(PC_LABEL), Var("_s_test")),
                    decide_id,
                )
                boxes[decide_id] = DecisionBox(box.predicate, box.true_next,
                                               box.false_next)
                boxes[viol_id] = AssignBox(VIOLATION_FLAG, Const(1), halt_id)
                boxes[halt_id] = HaltBox()
            else:
                # Rule 3: C̄ := C̄ ∪ w̄s ; then the decision.
                update_id = node_id
                decide_id = _fresh("d")
                boxes[update_id] = AssignBox(
                    PC_LABEL, BinOp("|", Var(PC_LABEL), test_union), decide_id)
                boxes[decide_id] = DecisionBox(box.predicate, box.true_next,
                                               box.false_next)

        elif isinstance(box, HaltBox):
            # Rule 4: halt normally iff ȳ ∪ C̄ ⊆ J, else flag a violation
            # (C̄ participates so the notice decision itself never
            # depends on disallowed data — Example 4).
            check_id = node_id
            ok_id = _fresh("k")
            viol_id = _fresh("v")
            halt_id = _fresh("h")
            boxes[check_id] = DecisionBox(
                _subset_of_policy(
                    BinOp("|",
                          Var(surveillance_variable(flowchart.output_variable)),
                          Var(PC_LABEL)),
                    dynamic, allowed_mask),
                ok_id, viol_id,
            )
            boxes[ok_id] = HaltBox()
            boxes[viol_id] = AssignBox(VIOLATION_FLAG, Const(1), halt_id)
            boxes[halt_id] = HaltBox()

        elif isinstance(box, PolicyChangeBox):
            # Dynamic-policy rule: install the new mask, bump the epoch.
            bump_id = _fresh("p")
            boxes[node_id] = AssignBox(
                POLICY_MASK, Const(to_mask(frozenset(box.allowed))), bump_id)
            boxes[bump_id] = AssignBox(
                EPOCH_VAR, BinOp("+", Var(EPOCH_VAR), Const(1)), box.next)

        elif isinstance(box, DowngradeBox):
            # Declassifier rule: clear the dropped bits of v̄.  Labels
            # only ever hold bits below the arity, so masking with the
            # arity-wide complement is an exact set difference.
            keep_mask = arity_mask & ~to_mask(frozenset(box.indices))
            shadow = surveillance_variable(box.variable)
            boxes[node_id] = AssignBox(
                shadow, BinOp("&", Var(shadow), Const(keep_mask)), box.next)

        else:  # pragma: no cover - closed box hierarchy
            raise TypeError(f"unknown box type {type(box).__name__}")

    suffix = "M'-inst" if timed else "M-inst"
    instrumented = Flowchart(boxes, flowchart.input_variables,
                             flowchart.output_variable,
                             name=name or f"{suffix}({flowchart.name})")
    if memo_key is not None:
        with _instrument_lock:
            _INSTRUMENT_MEMO.setdefault(flowchart, {})[memo_key] = instrumented
    return instrumented


def _patch(boxes: Dict[NodeId, Box], node_id: NodeId, target: NodeId) -> None:
    """Point the single successor slot of ``node_id`` at ``target``."""
    box = boxes[node_id]
    if isinstance(box, StartBox):
        boxes[node_id] = StartBox(target)
    elif isinstance(box, AssignBox):
        boxes[node_id] = AssignBox(box.target, box.expression, target)
    else:  # pragma: no cover - only single-successor boxes are patched
        raise TypeError(f"cannot patch {box!r}")


def instrumented_mechanism(flowchart: Flowchart, policy: AllowPolicy,
                           domain: ProductDomain,
                           output_model: OutputModel = VALUE_ONLY,
                           timed: bool = False,
                           fuel: int = DEFAULT_FUEL,
                           program: Optional[Program] = None,
                           name: Optional[str] = None,
                           value_cap: Optional[int] = None,
                           backend: Optional[str] = None) -> ProtectionMechanism:
    """Wrap the instrumented flowchart as a ProtectionMechanism.

    Executes M and reads the violation flag from the final environment.
    Under a time-observable model, the *protected program's* time is the
    step count of Q itself (re-measured on pass), and notices carry the
    number of original-program steps completed before the violation —
    mirroring the interpreter-level mechanism so the two are
    extensionally equal.
    """
    instrumented = instrument(flowchart, policy, timed=timed)
    protected = program if program is not None else as_program(
        flowchart, domain, output_model, fuel=fuel, value_cap=value_cap,
        backend=backend)
    time_observable = output_model.time_observable
    has_epochs = bool(flowchart.policy_change_ids())

    def mechanism_fn(*inputs):
        result = run_flowchart(instrumented, inputs, fuel=fuel,
                               capture_env=True, value_cap=value_cap,
                               backend=backend)
        violated = result.env.get(VIOLATION_FLAG, 0) == 1
        if violated:
            if _obs.active:
                _obs.record_violation(flowchart.name, "instrumented",
                                      timed=timed)
            if _obs.explain_active:
                # The instrumented flowchart (on whichever fastpath
                # backend executed it) only sets _viol; derive the
                # influence chain from the semantically-equal
                # interpreter-level run (they agree input-for-input —
                # bench E04), so provenance is backend-independent.
                from ..obs.provenance import explain
                explanation = explain(flowchart, policy, inputs,
                                      timed=timed, fuel=fuel)
                _obs.emit("explanation", **explanation.event_fields())
            if time_observable:
                original_steps = _original_steps(flowchart, inputs,
                                                 policy, timed, fuel)
                return ViolationNotice(f"Λ@{original_steps}")
            if has_epochs:
                # Epoch-tagged notice, read from the _s_epoch register —
                # agrees with the interpreter-level mechanism's Λ@e.
                return ViolationNotice(f"Λ@e{result.env.get(EPOCH_VAR, 0)}")
            return ViolationNotice("Λ")
        if time_observable:
            original = run_flowchart(flowchart, inputs, fuel=fuel,
                                     value_cap=value_cap, backend=backend)
            return (result.value, original.steps)
        return result.value

    variant = "M'-inst" if timed else "M-inst"
    label = name or f"{variant}({flowchart.name}, {policy.name})"
    return ProtectionMechanism(mechanism_fn, protected, name=label)


def _original_steps(flowchart: Flowchart, inputs, policy: AllowPolicy,
                    timed: bool, fuel: int) -> int:
    """Steps of Q completed before the violation (for notice stamping).

    Delegates to the interpreter-level surveillance run, which counts
    original boxes directly.
    """
    from .dynamic import surveil

    run = surveil(flowchart, inputs, policy.allowed, timed=timed, fuel=fuel,
                  record=False)
    return run.steps
