"""The surveillance protection mechanism, interpreter-level (Section 3).

This is the semantic twin of the literal flowchart instrumentation in
:mod:`repro.surveillance.instrument` (their outputs agree input-for-input
— an ablation the test suite and bench E04 verify).  The interpreter
tracks, alongside each variable's value, its surveillance label, plus
the label of the program counter C:

- start box: ``x̄_i = {i}``, every other label ∅, ``C̄ = ∅``;
- assignment ``v := E(w1..wp)``: ``v̄ := w̄1 ∪ ... ∪ w̄p ∪ C̄``
  (labels *replace* — surveillance "allows forgetting"; the high-water
  variant accumulates instead);
- decision ``B(w1..wp)``: ``C̄ := C̄ ∪ w̄1 ∪ ... ∪ w̄p``;
- halt: output ``y`` if ``ȳ ∪ C̄ ⊆ J`` else the violation notice Λ.
  (C̄ participates in the halt check: *which* halt is reached — and
  hence whether a notice appears at all — is itself information, and a
  sound mechanism's notice decisions may depend only on allowed data,
  Example 4.)

The *timed* variant (Theorem 3′) additionally halts with Λ the moment a
test involving a disallowed label is about to be taken — before
evaluating it — so the mechanism's running time never depends on
disallowed data.

Violation notices and observable time: when the protecting mechanism is
built for a time-observable program, a notice issued after t steps is
the notice ``Λ@t`` — notices issued at different times are different
outputs, exactly as the Observability Postulate demands.  This is what
makes the untimed mechanism demonstrably unsound under observable time
(Theorem 3's proviso) and the timed one sound (Theorem 3′).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.domains import ProductDomain
from ..core.errors import (ArityMismatchError, FuelExhaustedError,
                           MessageError, ValueCapExceededError)
from ..core.mechanism import ProtectionMechanism, ViolationNotice
from ..core.observability import VALUE_AND_TIME, VALUE_ONLY, OutputModel
from ..core.policy import AllowPolicy
from ..core.program import Program
from ..flowchart.boxes import (AssignBox, DecisionBox, DowngradeBox, HaltBox,
                               PolicyChangeBox, RecvBox, SendBox)
from ..flowchart.interpreter import DEFAULT_FUEL, as_program, initial_environment
from ..flowchart.program import Flowchart
from ..obs import runtime as _obs
from ..robustness.faults import default_value_cap, resolve_value_cap
from .labels import EMPTY, Label, join, permitted, singleton


class SurveillanceRun:
    """One surveilled execution: outcome, timing, and final labels.

    ``epoch`` counts the policy changes executed before termination
    (0 for classic fixed-policy programs); ``final_allowed`` is the
    policy in force when the run ended — the one the halt check used.
    """

    __slots__ = ("outcome", "steps", "labels", "pc_label", "halted_early",
                 "epoch", "final_allowed")

    def __init__(self, outcome: Union[int, ViolationNotice], steps: int,
                 labels: Dict[str, Label], pc_label: Label,
                 halted_early: bool, epoch: int = 0,
                 final_allowed: Optional[Label] = None) -> None:
        self.outcome = outcome
        self.steps = steps
        self.labels = labels
        self.pc_label = pc_label
        self.halted_early = halted_early
        self.epoch = epoch
        self.final_allowed = final_allowed

    @property
    def violated(self) -> bool:
        return isinstance(self.outcome, ViolationNotice)

    def __repr__(self) -> str:
        return (f"SurveillanceRun(outcome={self.outcome!r}, "
                f"steps={self.steps}, early={self.halted_early})")


Observer = Callable[[str, Dict[str, Label], Label], None]

#: Epoch-aware observer: ``(node_id, labels, pc_label, allowed, epoch)``
#: — also told which policy is in force on arrival.
PolicyObserver = Callable[[str, Dict[str, Label], Label, Label, int], None]


def surveil(flowchart: Flowchart, inputs: Sequence[int], allowed: Label,
            timed: bool = False, forgetting: bool = True,
            fuel: int = DEFAULT_FUEL,
            observer: Optional[Observer] = None,
            record: bool = True,
            value_cap: Optional[int] = None,
            policy_observer: Optional[PolicyObserver] = None) -> SurveillanceRun:
    """Run ``flowchart`` under surveillance for ``allow(allowed)``.

    Parameters
    ----------
    allowed:
        The policy's J — the set of 1-based input indices the user may
        learn.
    timed:
        Theorem 3′ behaviour: halt with a violation *before* evaluating
        any test whose variables carry a disallowed label.
    forgetting:
        True gives the paper's surveillance (assignment replaces the
        label); False gives the high-water-mark mechanism (labels only
        accumulate) for the page-48 comparison.
    observer:
        Optional callback invoked as ``observer(node_id, labels,
        pc_label)`` when control *arrives* at each box, before the box
        acts — the dynamic counterpart of a static analysis's entry
        state.  The labels dict is live; observers must not mutate it.
        Used by the flowlint test suite to check the static influence
        fixpoint dominates every dynamic label at every visited PC.
    record:
        False suppresses the observability hooks for this run.  The
        provenance replay (:mod:`repro.obs.provenance`) re-executes a
        point that the mechanism already recorded; counting the replay
        again would double every surveillance metric.
    policy_observer:
        Like ``observer`` but epoch-aware: called as
        ``policy_observer(node_id, labels, pc_label, allowed, epoch)``
        with the policy in force on arrival.  The per-epoch static
        containment property tests use this.

    Dynamic policies (van Delft/Hunt/Sands): a ``policy_change`` box
    replaces the policy in force for every *later* check — flows are
    judged by the policy at completion time, not at write time.  A
    ``downgrade`` box strips its indices from one variable's label (the
    admitted intransitive edge).  Violation notices on flowcharts that
    contain policy changes are epoch-tagged (``Λ@e<n>``): a notice
    issued under a different policy regime is a different output.
    """
    if len(inputs) != flowchart.arity:
        raise ArityMismatchError(
            f"flowchart {flowchart.name} takes {flowchart.arity} inputs, "
            f"got {len(inputs)}"
        )
    cap = (default_value_cap() if value_cap is None
           else resolve_value_cap(value_cap))
    bound = (1 << cap) if cap is not None else None
    env = initial_environment(flowchart, inputs)
    labels: Dict[str, Label] = {name: EMPTY for name in env}
    for position, name in enumerate(flowchart.input_variables, 1):
        labels[name] = singleton(position)
    pc_label: Label = EMPTY
    active_allowed: Label = allowed
    epoch = 0
    # Typed channels under surveillance: each message carries its label
    # (v̄ ∪ C̄ at the send site) inside the envelope — the distributed-
    # setting soundness requirement (Almeida Matos & Cederquist).
    channels: Dict[str, List[Tuple[int, Label]]] = {}
    # Epoch-tagged notices only where epochs exist: classic programs
    # keep the paper's plain Λ bit-for-bit.
    has_epochs = bool(flowchart.policy_change_ids())

    def notice() -> ViolationNotice:
        return ViolationNotice(f"Λ@e{epoch}" if has_epochs else "Λ")

    steps = 0
    current = flowchart.boxes[flowchart.start_id].successors()[0]
    while True:
        if steps >= fuel:
            if _obs.active and record:
                _obs.record_fuel_exhausted(flowchart.name, fuel)
            raise FuelExhaustedError(fuel,
                                     f"surveilled {flowchart.name} exceeded "
                                     f"{fuel} steps on {tuple(inputs)!r}")
        box = flowchart.boxes[current]
        if observer is not None:
            observer(current, labels, pc_label)
        if policy_observer is not None:
            policy_observer(current, labels, pc_label, active_allowed, epoch)
        steps += 1
        if isinstance(box, HaltBox):
            # Rule 4: the halt check is ȳ ∪ C̄ ⊆ J.  C̄ must participate:
            # reaching *this* halt (rather than issuing a notice on some
            # other path) is itself information, and Example 4 demands
            # that "any decision made by M to output a violation notice
            # can depend only on allowed information".  J is the policy
            # *in force now* — the van Delft et al. completion-time rule.
            output_label = join(labels[flowchart.output_variable], pc_label)
            if permitted(output_label, active_allowed):
                outcome: Union[int, ViolationNotice] = env[flowchart.output_variable]
            else:
                outcome = notice()
                if _obs.active and record and has_epochs:
                    _obs.emit("epoch_violation", program=flowchart.name,
                              epoch=epoch)
            if _obs.active and record:
                _obs.record_surveil_run(
                    flowchart.name, steps,
                    violated=isinstance(outcome, ViolationNotice),
                    timed=timed, halted_early=False)
            return SurveillanceRun(outcome, steps, dict(labels), pc_label,
                                   halted_early=False, epoch=epoch,
                                   final_allowed=active_allowed)
        if isinstance(box, AssignBox):
            incoming = join(*(labels[name] for name in box.expression.variables()),
                            pc_label)
            if forgetting:
                labels[box.target] = incoming
            else:
                labels[box.target] = join(labels[box.target], incoming)
            value = box.expression.eval(env)
            env[box.target] = value
            if bound is not None and (value >= bound or value <= -bound):
                if _obs.active and record:
                    _obs.record_value_cap_exceeded(flowchart.name, cap)
                raise ValueCapExceededError(
                    cap, f"surveilled {flowchart.name} assigned a value "
                         f"wider than {cap} bits on {tuple(inputs)!r}")
            current = box.next
        elif isinstance(box, DecisionBox):
            test_label = join(*(labels[name] for name in box.predicate.variables()))
            if timed and not permitted(test_label, active_allowed):
                # Theorem 3': a disallowed variable is about to be
                # tested — halt immediately with a violation notice.
                if _obs.active and record:
                    if has_epochs:
                        _obs.emit("epoch_violation", program=flowchart.name,
                                  epoch=epoch)
                    _obs.record_surveil_run(flowchart.name, steps,
                                            violated=True, timed=True,
                                            halted_early=True)
                return SurveillanceRun(notice(), steps,
                                       dict(labels), pc_label,
                                       halted_early=True, epoch=epoch,
                                       final_allowed=active_allowed)
            pc_label = join(pc_label, test_label)
            current = box.true_next if box.predicate.eval(env) else box.false_next
        elif isinstance(box, PolicyChangeBox):
            active_allowed = frozenset(box.allowed)
            epoch += 1
            if _obs.active and record:
                _obs.emit("policy_changed", program=flowchart.name,
                          epoch=epoch, allowed=sorted(box.allowed))
            current = box.next
        elif isinstance(box, DowngradeBox):
            labels[box.variable] = labels[box.variable] - frozenset(box.indices)
            if _obs.active and record:
                _obs.emit("downgrade_applied", program=flowchart.name,
                          variable=box.variable,
                          dropped=sorted(box.indices))
            current = box.next
        elif isinstance(box, SendBox):
            # The envelope label is v̄ ∪ C̄: a receive learns both the
            # sent value and the control context that reached the send.
            channels.setdefault(box.channel, []).append(
                (env[box.variable], join(labels[box.variable], pc_label)))
            current = box.next
        elif isinstance(box, RecvBox):
            queue = channels.get(box.channel)
            if not queue:
                raise MessageError(
                    f"empty:{box.channel}",
                    f"surveilled {flowchart.name} received on empty channel "
                    f"{box.channel!r} on {tuple(inputs)!r}")
            value, message_label = queue.pop(0)
            env[box.variable] = value
            incoming = join(message_label, pc_label)
            if forgetting:
                labels[box.variable] = incoming
            else:
                labels[box.variable] = join(labels[box.variable], incoming)
            current = box.next
        else:  # pragma: no cover - StartBox is never re-entered
            current = box.successors()[0]


def _allowed_of(policy: AllowPolicy) -> Label:
    if not isinstance(policy, AllowPolicy):
        raise TypeError(
            "the surveillance mechanism is defined for allow(...) policies; "
            f"got {type(policy).__name__}"
        )
    return policy.allowed


def surveillance_mechanism(flowchart: Flowchart, policy: AllowPolicy,
                           domain: ProductDomain,
                           output_model: OutputModel = VALUE_ONLY,
                           timed: bool = False, forgetting: bool = True,
                           fuel: int = DEFAULT_FUEL,
                           program: Optional[Program] = None,
                           name: Optional[str] = None,
                           value_cap: Optional[int] = None,
                           backend: Optional[str] = None) -> ProtectionMechanism:
    """Build the surveillance protection mechanism for (Q, allow(J)).

    ``output_model`` declares what the user observes of the *protected
    program* Q: with :data:`VALUE_AND_TIME`, Q's output is
    ``(value, steps)`` and the mechanism's violation notices are
    time-stamped (``Λ@t``), so time leaks through either channel are
    visible to the soundness checker.

    ``program`` may supply an existing Program wrapper for Q (so several
    mechanisms protect the *same* Program object); otherwise one is
    created from the flowchart.  ``backend`` selects Q's execution tier
    explicitly (the surveillance walk itself is interpreter-level);
    ``None`` defers to the process-wide default.
    """
    allowed = _allowed_of(policy)
    if policy.arity != flowchart.arity:
        raise ArityMismatchError(
            f"policy arity {policy.arity} != flowchart arity {flowchart.arity}"
        )
    protected = program if program is not None else as_program(
        flowchart, domain, output_model, fuel=fuel, value_cap=value_cap,
        backend=backend)

    time_observable = output_model.time_observable

    def mechanism_fn(*inputs):
        run = surveil(flowchart, inputs, allowed, timed=timed,
                      forgetting=forgetting, fuel=fuel, value_cap=value_cap)
        if run.violated:
            if _obs.explain_active:
                # Provenance mode: replay the point with an observer and
                # emit the input-index influence chain behind this Λ.
                from ..obs.provenance import explain
                explanation = explain(flowchart, policy, inputs,
                                      timed=timed, forgetting=forgetting,
                                      fuel=fuel)
                _obs.emit("explanation", **explanation.event_fields())
            if time_observable:
                # Notices issued at different times are different
                # outputs (Observability Postulate).
                return ViolationNotice(f"Λ@{run.steps}")
            return run.outcome
        if time_observable:
            return (run.outcome, run.steps)
        return run.outcome

    variant = "M'" if timed else ("M-hw" if not forgetting else "M-s")
    label = name or f"{variant}({flowchart.name}, {policy.name})"
    return ProtectionMechanism(mechanism_fn, protected, name=label)


def timed_surveillance_mechanism(flowchart: Flowchart, policy: AllowPolicy,
                                 domain: ProductDomain,
                                 output_model: OutputModel = VALUE_AND_TIME,
                                 fuel: int = DEFAULT_FUEL,
                                 program: Optional[Program] = None,
                                 name: Optional[str] = None,
                                 value_cap: Optional[int] = None,
                                 backend: Optional[str] = None) -> ProtectionMechanism:
    """Theorem 3′'s M′ — sound even when running times are observable."""
    return surveillance_mechanism(flowchart, policy, domain,
                                  output_model=output_model, timed=True,
                                  fuel=fuel, program=program, name=name,
                                  value_cap=value_cap, backend=backend)
