"""Surveillance variables: label sets over input indices (Section 3).

    *Associate with each variable v of Q ... a new variable v̄ called the
    surveillance variable of v.  The values of v̄ are always subsets of
    {1, ..., k}.*

A label is a frozenset of 1-based input indices — "the set of indices of
all input variables that may have affected the current value of v in
some way".  The label algebra is the powerset lattice: join is union,
bottom is the empty set.

The literal flowchart instrumentation cannot store sets in integer
variables, so it encodes labels as bitmasks; the codec lives here too.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

Label = FrozenSet[int]

#: The bottom label: "depends on no input".
EMPTY: Label = frozenset()


def singleton(index: int) -> Label:
    """The label {i} given to input variable x_i at the start box."""
    if index < 1:
        raise ValueError(f"input indices are 1-based, got {index}")
    return frozenset((index,))


def join(*labels: Iterable[int]) -> Label:
    """Least upper bound (union) of labels."""
    result: set = set()
    for label in labels:
        result |= set(label)
    return frozenset(result)


def permitted(label: Label, allowed: Label) -> bool:
    """The halt-box test of the surveillance mechanism: ``v̄ ⊆ J``."""
    return label <= allowed


def to_mask(label: Iterable[int]) -> int:
    """Encode a label as a bitmask (bit i-1 set for index i)."""
    mask = 0
    for index in label:
        if index < 1:
            raise ValueError(f"input indices are 1-based, got {index}")
        mask |= 1 << (index - 1)
    return mask


def from_mask(mask: int) -> Label:
    """Decode a bitmask back into a label."""
    if mask < 0:
        raise ValueError(f"label masks are non-negative, got {mask}")
    indices = []
    index = 1
    while mask:
        if mask & 1:
            indices.append(index)
        mask >>= 1
        index += 1
    return frozenset(indices)


def mask_subset(mask: int, allowed_mask: int) -> bool:
    """Bitmask form of the subset test: ``(mask | allowed) == allowed``."""
    return (mask | allowed_mask) == allowed_mask
