"""The surveillance protection mechanism of Section 3, in three forms.

- :mod:`~repro.surveillance.dynamic` — interpreter-level label tracking
  (the workhorse), including the timed M′ of Theorem 3′;
- :mod:`~repro.surveillance.instrument` — the paper's literal
  flowchart-to-flowchart construction (rules 1–4);
- :mod:`~repro.surveillance.highwater` — the high-water-mark baseline
  (no forgetting) used in the page-48 comparison.
"""

from .labels import (EMPTY, Label, from_mask, join, mask_subset, permitted,
                     singleton, to_mask)
from .dynamic import (SurveillanceRun, surveil, surveillance_mechanism,
                      timed_surveillance_mechanism)
from .highwater import highwater_mechanism
from .instrument import (PC_LABEL, VIOLATION_FLAG, instrument,
                         instrumented_mechanism, surveillance_variable)

__all__ = [
    "Label", "EMPTY", "singleton", "join", "permitted", "to_mask",
    "from_mask", "mask_subset",
    "SurveillanceRun", "surveil", "surveillance_mechanism",
    "timed_surveillance_mechanism", "highwater_mechanism",
    "instrument", "instrumented_mechanism", "surveillance_variable",
    "PC_LABEL", "VIOLATION_FLAG",
]
