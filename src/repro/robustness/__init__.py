"""Fault totalization and recovery (the total-function hardening layer).

Jones & Lipton require protection mechanisms to be *total* functions:
``M(a) = Q(a)`` or ``M(a) ∈ F``.  The Observability Postulate makes any
undeclared observable — a crash, an OOM kill, an interrupted sweep — a
covert channel.  This package names every failure mode the execution
engines and sweep runners can hit and maps each one onto a distinguished
violation notice, so a sweep is a total function of its arguments no
matter what its points do.

See ``docs/ROBUSTNESS.md`` for the taxonomy and totalization table.
"""

from .faults import (DECLARED_FAULTS, VALUE_CAP_ENV, TotalizedMechanism,
                     cap_notice, crash_notice, fault_notice, fuel_notice,
                     resolve_value_cap)

__all__ = [
    "DECLARED_FAULTS", "VALUE_CAP_ENV", "TotalizedMechanism",
    "cap_notice", "crash_notice", "fault_notice", "fuel_notice",
    "resolve_value_cap",
]
