"""The typed fault taxonomy and its totalization into notices.

Three failure classes, three distinguished notices:

===================  ==========================  =====================
fault                raised as                   totalized notice
===================  ==========================  =====================
fuel exhaustion      ``FuelExhaustedError``      ``Λ!fuel[N]``
value-magnitude      ``ValueCapExceededError``   ``Λ!cap[C]``
message fault        ``MessageError``            ``Λ!msg[detail]``
undeclared crash     any other ``Exception``     ``Λ!crash[Type]``
===================  ==========================  =====================

The first three are *declared* faults: the engines raise them by design
and every sweep layer (serial, thread, process) catches them inline.
The last is the quarantine class — a deterministic crash (MemoryError,
a worker segfault, an injected fault) that the poison-point bisection
in :mod:`repro.verify.parallel` isolates to individual grid points.

Notice identity matters: the factorization check treats each notice
text as its own output class, so the same fault on the same point must
produce the *same* notice in every executor mode.  ``crash_notice``
therefore encodes only the exception type, never its message (messages
can carry addresses, pids, or timestamps).
"""

from __future__ import annotations

import os
from typing import Optional

from ..core.errors import (ExecutionError, FuelExhaustedError, MessageError,
                           ReproError, ValueCapExceededError)
from ..core.mechanism import ViolationNotice

#: Environment variable supplying the default value-magnitude cap
#: (maximum bit-length of any assigned value; unset means uncapped).
VALUE_CAP_ENV = "REPRO_VALUE_CAP"

#: The declared fault types every sweep layer totalizes inline.
DECLARED_FAULTS = (FuelExhaustedError, ValueCapExceededError, MessageError)


def fuel_notice(fuel: int) -> ViolationNotice:
    """The distinguished outcome of a run that exhausted its fuel budget.

    (Canonical home; re-exported by :mod:`repro.verify.enumerate` for
    compatibility with earlier call sites.)
    """
    return ViolationNotice(f"Λ!fuel[{fuel}]")


def cap_notice(cap: int) -> ViolationNotice:
    """The distinguished outcome of a run that exceeded the value cap."""
    return ViolationNotice(f"Λ!cap[{cap}]")


def message_notice(detail: str) -> ViolationNotice:
    """The distinguished outcome of a run hitting a channel fault.

    ``detail`` is the machine-stable token carried by
    :class:`~repro.core.errors.MessageError` — ``empty:CH`` for a
    receive with no matching send, ``corrupt:CH#SEQ`` for an envelope
    whose checksum failed in transit.  A corrupted message totalizes,
    never silently yields a wrong answer.
    """
    return ViolationNotice(f"Λ!msg[{detail}]")


def crash_notice(error: BaseException) -> ViolationNotice:
    """The distinguished outcome of a quarantined (undeclared) crash.

    Encodes the exception *type only*: messages may embed pids,
    addresses, or timestamps, and the notice must be bit-identical
    across serial, thread, and process executions of the same point.
    """
    return ViolationNotice(f"Λ!crash[{type(error).__name__}]")


def fault_notice(error: BaseException) -> Optional[ViolationNotice]:
    """The totalized notice for a *declared* fault, else None.

    Undeclared exceptions return None on purpose: they must go through
    the quarantine path (which bisects, records provenance, and emits
    ``point_quarantined`` events), not be silently swallowed here.
    """
    if isinstance(error, FuelExhaustedError):
        return fuel_notice(error.fuel)
    if isinstance(error, ValueCapExceededError):
        return cap_notice(error.cap)
    if isinstance(error, MessageError):
        return message_notice(error.detail)
    return None


def resolve_value_cap(value_cap: Optional[int] = None) -> Optional[int]:
    """Resolve the effective value cap (bit-length budget).

    Precedence: explicit argument > ``REPRO_VALUE_CAP`` > uncapped.
    ``None`` means uncapped; a cap must be a positive bit count.
    """
    if value_cap is None:
        raw = os.environ.get(VALUE_CAP_ENV)
        if raw is None or not raw.strip():
            return None
        try:
            value_cap = int(raw)
        except ValueError:
            raise ReproError(
                f"{VALUE_CAP_ENV}={raw!r} is not an integer bit count")
    if value_cap <= 0:
        raise ReproError(
            f"value_cap must be a positive bit-length budget; got {value_cap}")
    return value_cap


#: (resolved?, cap) — the parsed ``REPRO_VALUE_CAP`` default.
_ENV_CAP_CACHE = (False, None)


def default_value_cap() -> Optional[int]:
    """``resolve_value_cap(None)``, cached after the first read.

    The execution entry points consult the environment default on
    every run; an ``os.environ`` read per run costs more than the guard
    itself, so the parsed default is cached process-wide.  Call
    :func:`reset_value_cap_cache` after changing the variable
    mid-process (tests do; ordinary processes set it before starting).
    """
    global _ENV_CAP_CACHE
    resolved, cap = _ENV_CAP_CACHE
    if not resolved:
        cap = resolve_value_cap(None)
        _ENV_CAP_CACHE = (True, cap)
    return cap


def reset_value_cap_cache() -> None:
    """Forget the cached ``REPRO_VALUE_CAP`` default."""
    global _ENV_CAP_CACHE
    _ENV_CAP_CACHE = (False, None)


class TotalizedMechanism:
    """Wraps a mechanism so every declared fault becomes its notice.

    Duck-types the :class:`~repro.core.mechanism.ProtectionMechanism`
    surface the soundness checkers use (``arity``, ``name``,
    ``domain``, call).  Serial and parallel sweeps both apply this
    guard, so their rows stay identical point-for-point whatever the
    fuel or cap budget truncates.
    """

    __slots__ = ("_mechanism",)

    def __init__(self, mechanism) -> None:
        self._mechanism = mechanism

    @property
    def arity(self) -> int:
        return self._mechanism.arity

    @property
    def name(self) -> str:
        return self._mechanism.name

    @property
    def domain(self):
        return self._mechanism.domain

    def __call__(self, *inputs):
        try:
            return self._mechanism(*inputs)
        except DECLARED_FAULTS as error:
            return fault_notice(error)


# ``ExecutionError`` is part of the taxonomy surface for callers that
# classify faults coarsely (declared vs. crash) — keep it importable
# from here alongside the concrete fault types.
__all__ = [
    "DECLARED_FAULTS", "VALUE_CAP_ENV", "ExecutionError",
    "FuelExhaustedError", "MessageError", "ValueCapExceededError",
    "TotalizedMechanism", "cap_notice", "crash_notice",
    "default_value_cap", "fault_notice", "fuel_notice", "message_notice",
    "reset_value_cap_cache", "resolve_value_cap",
]
