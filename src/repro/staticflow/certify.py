"""Static (compile-time) certification of information flow (Section 5).

    *Static information flow analysis techniques can be used to
    determine the flow of information that will occur at the time a
    program is executed ... Flow analysis must take into account not
    merely the flow of information through data variables (as compilers
    do now), but also flow through the program counter in order to avoid
    difficulties such as transmitting disallowed information via
    negative inference.*

This is the Denning & Denning-style certifier the paper sketches: an
abstract interpretation of a structured program over the label lattice.
Each variable gets the join of (a) the labels of everything assigned
into it, and (b) the labels of every guard governing the assignment
(the program-counter flow).  Branches merge by pointwise join; loops
iterate to a fixpoint (which exists — the lattice is finite and the
transfer functions are monotone).

Certification is per-*program*: the whole program is certified for a
policy or rejected.  That is the essential contrast with the dynamic
surveillance mechanism, which decides per-*run* — experiment E18
measures the completeness gap between the two.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from ..core.errors import PolicyError
from ..core.policy import AllowPolicy
from ..flowchart.structured import (Assign, If, Skip, Stmt,
                                    StructuredProgram, While)

Label = FrozenSet[int]


class FlowAnalysis:
    """Result of the static analysis: final label of every variable.

    ``labels[v]`` over-approximates the set of input indices whose
    values may flow into ``v`` on *some* execution (data or control).
    """

    def __init__(self, labels: Dict[str, Label], iterations: int) -> None:
        self.labels = dict(labels)
        self.iterations = iterations

    def output_label(self, program: StructuredProgram) -> Label:
        return self.labels.get(program.output_variable, frozenset())

    def __repr__(self) -> str:
        rendered = ", ".join(f"{v}:{sorted(l)}" for v, l in sorted(self.labels.items()))
        return f"FlowAnalysis({{{rendered}}}, iterations={self.iterations})"


def analyse(program: StructuredProgram) -> FlowAnalysis:
    """Run the static flow analysis on a structured program."""
    labels: Dict[str, Label] = {}
    for position, name in enumerate(program.input_variables, 1):
        labels[name] = frozenset((position,))
    labels.setdefault(program.output_variable, frozenset())

    iterations = [0]

    def transfer(body: Tuple[Stmt, ...], env: Dict[str, Label],
                 pc: Label) -> Dict[str, Label]:
        for statement in body:
            env = transfer_stmt(statement, env, pc)
        return env

    def read_label(env: Dict[str, Label], names) -> Label:
        result: Label = frozenset()
        for name in names:
            result |= env.get(name, frozenset())
        return result

    def merge(first: Dict[str, Label], second: Dict[str, Label]) -> Dict[str, Label]:
        merged = dict(first)
        for name, label in second.items():
            merged[name] = merged.get(name, frozenset()) | label
        return merged

    def transfer_stmt(statement: Stmt, env: Dict[str, Label],
                      pc: Label) -> Dict[str, Label]:
        if isinstance(statement, Skip):
            return env
        if isinstance(statement, Assign):
            out = dict(env)
            out[statement.target] = (
                read_label(env, statement.expression.variables()) | pc)
            return out
        if isinstance(statement, If):
            guard = read_label(env, statement.predicate.variables())
            inner_pc = pc | guard
            then_env = transfer(statement.then_body, dict(env), inner_pc)
            else_env = transfer(statement.else_body, dict(env), inner_pc)
            return merge(then_env, else_env)
        if isinstance(statement, While):
            # Fixpoint: the guard label itself can grow as body
            # assignments feed the tested variables.
            current = dict(env)
            while True:
                iterations[0] += 1
                guard = read_label(current, statement.predicate.variables())
                body_env = transfer(statement.body, dict(current), pc | guard)
                merged = merge(current, body_env)
                if merged == current:
                    return merged
                current = merged
        raise TypeError(f"unknown statement {statement!r}")

    final = transfer(program.body, labels, frozenset())
    return FlowAnalysis(final, iterations[0])


class Certificate:
    """The certifier's verdict for one (program, policy) pair."""

    def __init__(self, certified: bool, output_label: Label,
                 allowed: Label, analysis: FlowAnalysis) -> None:
        self.certified = certified
        self.output_label = output_label
        self.allowed = allowed
        self.analysis = analysis

    def __bool__(self) -> bool:
        return self.certified

    def __repr__(self) -> str:
        verdict = "CERTIFIED" if self.certified else "REJECTED"
        return (f"Certificate({verdict}: ȳ={sorted(self.output_label)} "
                f"vs J={sorted(self.allowed)})")


def certify(program: StructuredProgram, policy: AllowPolicy) -> Certificate:
    """Certify a structured program for an allow(...) policy.

    Certified means: on *every* execution, the output's value is a
    function of allowed inputs only — so the program may run unmodified
    for users holding this policy.  Rejection is conservative: some
    rejected programs have runs (or are even globally) policy-compliant,
    which is exactly Theorem 4's shadow over static analysis.
    """
    if not isinstance(policy, AllowPolicy):
        raise PolicyError("static certification is defined for allow(...) policies")
    if policy.arity != len(program.input_variables):
        raise PolicyError(
            f"policy arity {policy.arity} != program arity "
            f"{len(program.input_variables)}"
        )
    analysis = analyse(program)
    output_label = analysis.output_label(program)
    certified = output_label <= policy.allowed
    return Certificate(certified, output_label, policy.allowed, analysis)
