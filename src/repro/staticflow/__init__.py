"""Static (compile-time) enforcement — Section 5.

Denning-style certification (:mod:`~repro.staticflow.certify`) over
security-class lattices (:mod:`~repro.staticflow.classes`), and the
policy-specialising, transform-assisted compiler
(:mod:`~repro.staticflow.compile`).
"""

from .classes import (SecurityLattice, chain_lattice, label_of_indices,
                      powerset_lattice)
from .certify import Certificate, FlowAnalysis, analyse, certify
from .compile import (CompilationOutcome, compile_per_policy,
                      compile_with_transforms, static_mechanism)
from .hybrid import (HybridOutcome, eliminate_dead_surveillance,
                     hybrid_mechanism, instrumentation_overhead,
                     label_dependence_closure)
from .denning import (ClassAssignment, DenningAnalysis, certify_lattice,
                      military_assignment)
from .cfgcertify import (CfgCertificate, certify_flowchart,
                         control_dependencies)

__all__ = [
    "SecurityLattice", "powerset_lattice", "chain_lattice",
    "label_of_indices",
    "FlowAnalysis", "Certificate", "analyse", "certify",
    "static_mechanism", "CompilationOutcome", "compile_with_transforms",
    "compile_per_policy",
    "HybridOutcome", "hybrid_mechanism", "label_dependence_closure",
    "eliminate_dead_surveillance", "instrumentation_overhead",
    "ClassAssignment", "DenningAnalysis", "certify_lattice",
    "military_assignment",
    "CfgCertificate", "certify_flowchart", "control_dependencies",
]
