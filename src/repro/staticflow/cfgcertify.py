"""Static certification of arbitrary flowcharts (Section 5, CFG-level).

The structured certifier (:mod:`repro.staticflow.certify`) needs if/
while syntax; Moore's technique — which the paper cites for "Algol-like
programs" — generalises to arbitrary control-flow graphs once *control
dependence* replaces syntactic nesting:

- a node is control-dependent on a decision ``d`` iff one of ``d``'s
  branches always reaches it while the other may avoid it (the classic
  Ferrante–Ottenstein–Warren criterion, computed from postdominators);
- an assignment's static label is the join of its operands' labels and
  the *test labels of the decisions it is control-dependent on* — the
  region-scoped PC flow, which forgets a branch once its arms
  reconverge (unlike dynamic surveillance's monotone C̄);
- everything iterates to a fixpoint over the finite label lattice, with
  merge-point join.

A flowchart is certified for ``allow(J)`` iff at every halt node the
output label (plus the halt's own control-dependence labels — which
halt is reached is information too) is within J.

Differential guarantee, tested: on flowcharts compiled from structured
programs, this certifier and the structured one agree *by construction
of control dependence*; on irreducible graphs only this one applies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..core.errors import PolicyError
from ..core.policy import AllowPolicy
from ..flowchart.analysis import postdominators
from ..flowchart.boxes import AssignBox, DecisionBox, HaltBox, NodeId
from ..flowchart.program import Flowchart

Label = FrozenSet[int]


def control_dependencies(flowchart: Flowchart) -> Dict[NodeId, FrozenSet[NodeId]]:
    """FOW control dependence: node -> decisions it depends on.

    ``n`` is control-dependent on decision ``d`` iff ``n``
    postdominates some successor of ``d`` but does not strictly
    postdominate ``d`` itself.
    """
    pdom = postdominators(flowchart)
    dependencies: Dict[NodeId, Set[NodeId]] = {
        node_id: set() for node_id in flowchart.boxes}
    for decision_id in flowchart.decision_ids():
        box = flowchart.boxes[decision_id]
        assert isinstance(box, DecisionBox)
        for successor in box.successors():
            for node_id in flowchart.boxes:
                if node_id == decision_id:
                    continue
                # n postdominates this successor of d, but does not
                # strictly postdominate d itself.
                if (node_id in pdom[successor]
                        and node_id not in pdom[decision_id] - {decision_id}):
                    dependencies[node_id].add(decision_id)

    # Transitive closure: a node governed by an inner decision is also
    # governed by whatever governs that decision (nested guards) — the
    # CFG counterpart of the structured certifier's pc nesting.
    changed = True
    while changed:
        changed = False
        for node_id, direct in dependencies.items():
            expanded = set(direct)
            for decision_id in direct:
                expanded |= dependencies[decision_id]
            if expanded != direct:
                dependencies[node_id] = expanded
                changed = True
    return {node_id: frozenset(deps)
            for node_id, deps in dependencies.items()}


class CfgCertificate:
    """Verdict of the CFG-level certifier."""

    def __init__(self, certified: bool, output_label: Label,
                 allowed: Label, iterations: int,
                 labels: Dict[NodeId, Dict[str, Label]]) -> None:
        self.certified = certified
        self.output_label = output_label
        self.allowed = allowed
        self.iterations = iterations
        self.labels = labels

    def __bool__(self) -> bool:
        return self.certified

    def __repr__(self) -> str:
        verdict = "CERTIFIED" if self.certified else "REJECTED"
        return (f"CfgCertificate({verdict}: ȳ={sorted(self.output_label)} "
                f"vs J={sorted(self.allowed)}, "
                f"iterations={self.iterations})")


def certify_flowchart(flowchart: Flowchart,
                      policy: AllowPolicy) -> CfgCertificate:
    """Certify an arbitrary flowchart for an allow(...) policy.

    Forward dataflow over the CFG: each node carries a variable→label
    map; predecessors merge by pointwise union; an assignment joins its
    operand labels with the labels of every controlling decision's test
    (evaluated at that decision's own state).  Monotone over a finite
    lattice, so the fixpoint terminates.
    """
    if not isinstance(policy, AllowPolicy):
        raise PolicyError(
            "flowchart certification is defined for allow(...) policies")
    if policy.arity != flowchart.arity:
        raise PolicyError(
            f"policy arity {policy.arity} != flowchart arity "
            f"{flowchart.arity}")

    if flowchart.has_dynamic_policy():
        # Completion-time policy checks and downgrader relabeling are
        # outside this certifier's fixed-policy model; certifying here
        # against the *initial* J would be unsound when a later
        # policy_change tightens it.  Defer to the epoch-aware verdict
        # (:mod:`repro.analysis.epochs`) by conservatively rejecting.
        every = frozenset(range(1, flowchart.arity + 1))
        return CfgCertificate(False, every, policy.allowed, 0, {})

    dependencies = control_dependencies(flowchart)
    order = flowchart.reachable_from(flowchart.start_id)
    predecessors = flowchart.predecessors()

    initial: Dict[str, Label] = {}
    for position, name in enumerate(flowchart.input_variables, 1):
        initial[name] = frozenset((position,))

    # in_state[node] = variable labels on entry to the node.
    in_state: Dict[NodeId, Dict[str, Label]] = {
        node_id: {} for node_id in order}
    in_state[flowchart.start_id] = dict(initial)

    def merge(target: Dict[str, Label], source: Dict[str, Label]) -> bool:
        changed = False
        for name, label in source.items():
            combined = target.get(name, frozenset()) | label
            if combined != target.get(name):
                target[name] = combined
                changed = True
        return changed

    def read_label(state: Dict[str, Label], names) -> Label:
        result: Label = frozenset()
        for name in names:
            result |= state.get(name, frozenset())
        return result

    def pc_label(node_id: NodeId) -> Label:
        label: Label = frozenset()
        for decision_id in dependencies[node_id]:
            decision = flowchart.boxes[decision_id]
            assert isinstance(decision, DecisionBox)
            label |= read_label(in_state[decision_id],
                                decision.predicate.variables())
        return label

    def out_state(node_id: NodeId) -> Dict[str, Label]:
        state = dict(in_state[node_id])
        box = flowchart.boxes[node_id]
        if isinstance(box, AssignBox):
            state[box.target] = (
                read_label(state, box.expression.variables())
                | pc_label(node_id))
        return state

    iterations = 0
    changed = True
    while changed:
        iterations += 1
        changed = False
        for node_id in order:
            if node_id == flowchart.start_id:
                computed = dict(initial)
            else:
                computed = {}
                for predecessor in predecessors[node_id]:
                    merge(computed, out_state(predecessor))
            if merge(in_state[node_id], computed):
                changed = True

    output_label: Label = frozenset()
    for halt_id in flowchart.halt_ids():
        state = in_state[halt_id]
        output_label |= state.get(flowchart.output_variable, frozenset())
        # Which halt is reached is information too.
        output_label |= pc_label(halt_id)

    certified = output_label <= policy.allowed
    return CfgCertificate(certified, output_label, policy.allowed,
                          iterations, in_state)
