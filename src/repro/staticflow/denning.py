"""Denning-style certification over *arbitrary* security-class lattices.

Section 5 builds on Denning's lattice model [2] and Denning & Denning's
certification [3].  The index-powerset certifier in
:mod:`repro.staticflow.certify` is the instance the paper's allow(...)
policies need; this module provides the general mechanism: every
variable is bound to a class of an arbitrary
:class:`~repro.staticflow.classes.SecurityLattice`, flows must be
non-decreasing in the lattice order, and a program is certified for a
clearance iff every flow into every *sink* variable stays ≤ its bound.

Classic instance: the military chain ``unclassified < secret <
top-secret`` with per-variable clearances — the model Bell [1] and
Denning [2] study, which the paper's framework subsumes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..core.errors import PolicyError
from ..flowchart.structured import (Assign, If, Skip, Stmt,
                                    StructuredProgram, While)
from .classes import SecurityLattice


class ClassAssignment:
    """Binding of program variables to lattice classes.

    ``sources`` fixes input classes (where data *comes from*);
    ``clearances`` bounds sink variables (what may *flow into* them).
    Unlisted variables are unconstrained sinks and bottom-class sources.
    """

    def __init__(self, lattice: SecurityLattice,
                 sources: Mapping[str, object],
                 clearances: Mapping[str, object]) -> None:
        for mapping in (sources, clearances):
            for variable, security_class in mapping.items():
                if security_class not in lattice.elements:
                    raise PolicyError(
                        f"{security_class!r} is not a class of "
                        f"{lattice.name} (variable {variable!r})")
        self.lattice = lattice
        self.sources = dict(sources)
        self.clearances = dict(clearances)

    def source_class(self, variable: str):
        return self.sources.get(variable, self.lattice.bottom)

    def __repr__(self) -> str:
        return (f"ClassAssignment({self.lattice.name}, "
                f"sources={self.sources}, clearances={self.clearances})")


class DenningAnalysis:
    """Computed class of every variable, plus per-clearance verdicts."""

    def __init__(self, classes: Dict[str, object],
                 violations: Tuple[Tuple[str, object, object], ...]) -> None:
        self.classes = dict(classes)
        self.violations = violations

    @property
    def certified(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:
        verdict = ("CERTIFIED" if self.certified
                   else f"violations={list(self.violations)}")
        return f"DenningAnalysis({verdict})"


def certify_lattice(program: StructuredProgram,
                    assignment: ClassAssignment) -> DenningAnalysis:
    """Certify a structured program against a class assignment.

    Abstract interpretation over the lattice: an assignment's class is
    the join of its operands' classes and the governing guards' classes
    (implicit flow, including across loop iterations to a fixpoint);
    branches merge by join.  A violation is any variable whose final
    class exceeds its clearance.
    """
    lattice = assignment.lattice
    classes: Dict[str, object] = {}
    for variable in program.input_variables:
        classes[variable] = assignment.source_class(variable)

    def read_class(env: Dict[str, object], names) -> object:
        result = lattice.bottom
        for name in names:
            result = lattice.join(result, env.get(name, lattice.bottom))
        return result

    def merge(first: Dict[str, object],
              second: Dict[str, object]) -> Dict[str, object]:
        merged = dict(first)
        for name, security_class in second.items():
            merged[name] = lattice.join(
                merged.get(name, lattice.bottom), security_class)
        return merged

    def transfer(body, env: Dict[str, object], pc) -> Dict[str, object]:
        for statement in body:
            env = transfer_stmt(statement, env, pc)
        return env

    def transfer_stmt(statement: Stmt, env: Dict[str, object],
                      pc) -> Dict[str, object]:
        if isinstance(statement, Skip):
            return env
        if isinstance(statement, Assign):
            out = dict(env)
            out[statement.target] = lattice.join(
                read_class(env, statement.expression.variables()), pc)
            return out
        if isinstance(statement, If):
            guard = read_class(env, statement.predicate.variables())
            inner_pc = lattice.join(pc, guard)
            return merge(transfer(statement.then_body, dict(env), inner_pc),
                         transfer(statement.else_body, dict(env), inner_pc))
        if isinstance(statement, While):
            current = dict(env)
            while True:
                guard = read_class(current,
                                   statement.predicate.variables())
                body_env = transfer(statement.body, dict(current),
                                    lattice.join(pc, guard))
                merged = merge(current, body_env)
                if merged == current:
                    return merged
                current = merged
        raise TypeError(f"unknown statement {statement!r}")

    final = transfer(program.body, classes, lattice.bottom)

    violations = []
    for variable, bound in assignment.clearances.items():
        actual = final.get(variable, lattice.bottom)
        if not lattice.leq(actual, bound):
            violations.append((variable, actual, bound))
    return DenningAnalysis(final, tuple(violations))


def military_assignment(program: StructuredProgram,
                        sources: Mapping[str, str],
                        output_clearance: str,
                        levels: Tuple[str, ...] = ("unclassified",
                                                   "secret",
                                                   "top-secret")) -> ClassAssignment:
    """Convenience builder for the classic military chain.

    ``sources`` maps input variables to level names; the output variable
    gets ``output_clearance`` as its bound.
    """
    from .classes import chain_lattice

    lattice = chain_lattice(list(levels))
    return ClassAssignment(lattice, sources,
                           {program.output_variable: output_clearance})
