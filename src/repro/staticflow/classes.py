"""Security-class lattices for static certification (Section 5).

Section 5 points to Denning-style static information-flow analysis
(Denning & Denning [3]); its security classes form a lattice.  For
``allow(...)`` policies the natural lattice is the powerset of input
indices ordered by inclusion — the same label algebra the surveillance
mechanism tracks dynamically — but the certifier is written against the
tiny :class:`SecurityLattice` interface so other lattices (e.g. the
classic ``unclassified < secret < top-secret`` chain) plug in too.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Sequence, Tuple


class SecurityLattice:
    """A finite join-semilattice of security classes."""

    def __init__(self, elements: Iterable, leq: Callable, join: Callable,
                 bottom, name: str = "L") -> None:
        self.elements = tuple(elements)
        self._leq = leq
        self._join = join
        self.bottom = bottom
        self.name = name

    def leq(self, first, second) -> bool:
        return self._leq(first, second)

    def join(self, *items):
        result = self.bottom
        for item in items:
            result = self._join(result, item)
        return result

    def __repr__(self) -> str:
        return f"SecurityLattice({self.name}, {len(self.elements)} classes)"


def powerset_lattice(arity: int) -> SecurityLattice:
    """The powerset of {1..arity} under inclusion — labels as classes."""
    import itertools

    universe = range(1, arity + 1)
    elements = [frozenset(c) for size in range(arity + 1)
                for c in itertools.combinations(universe, size)]
    return SecurityLattice(
        elements,
        leq=lambda a, b: a <= b,
        join=lambda a, b: a | b,
        bottom=frozenset(),
        name=f"P({{1..{arity}}})",
    )


def chain_lattice(levels: Sequence[str]) -> SecurityLattice:
    """A totally ordered lattice, e.g. ["unclassified", "secret", "top-secret"].

    Fenton's two-point ``null < priv`` chain is ``chain_lattice(["null",
    "priv"])``.
    """
    index = {level: i for i, level in enumerate(levels)}
    return SecurityLattice(
        levels,
        leq=lambda a, b: index[a] <= index[b],
        join=lambda a, b: a if index[a] >= index[b] else b,
        bottom=levels[0],
        name="<".join(levels),
    )


def label_of_indices(indices: Iterable[int]) -> FrozenSet[int]:
    """Convenience: a powerset-lattice class from input indices."""
    return frozenset(indices)
