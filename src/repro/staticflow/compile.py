"""Compile-time enforcement: policy-specialised programs (Section 5).

    *Using static techniques to produce programs would result in
    efficient security enforcement.  Of course, this requires that the
    security policy be known at compile time ... A different compilation
    would be required for each different security policy to be enforced
    for a given program.*

The static mechanism for (Q, I) is all-or-nothing: if the certifier
passes Q for I, the mechanism is Q itself (zero runtime overhead); if
not, the mechanism is "pull the plug" — unless a *program transform*
rescues certification, which is the Section 5 technique Example 9
illustrates.  :func:`compile_with_transforms` tries the paper's
transforms before giving up, and reports which (if any) rescued the
program.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.domains import ProductDomain
from ..core.mechanism import (ProtectionMechanism, null_mechanism,
                              program_as_mechanism)
from ..core.observability import VALUE_ONLY, OutputModel
from ..core.policy import AllowPolicy
from ..core.program import Program
from ..flowchart.interpreter import DEFAULT_FUEL, as_program
from ..flowchart.program import Flowchart
from ..flowchart.structured import StructuredProgram
from ..flowchart.transforms import (duplicate_assignment_transform,
                                    find_ite_regions, ite_transform_all,
                                    while_transform_all)
from ..surveillance.dynamic import surveillance_mechanism
from .certify import Certificate, certify


def static_mechanism(program: StructuredProgram, policy: AllowPolicy,
                     domain: ProductDomain,
                     output_model: OutputModel = VALUE_ONLY,
                     fuel: int = DEFAULT_FUEL,
                     wrapped: Optional[Program] = None) -> ProtectionMechanism:
    """The pure compile-time mechanism: Q if certified, else always-Λ."""
    certificate = certify(program, policy)
    flowchart = program.compile()
    protected = wrapped if wrapped is not None else as_program(
        flowchart, domain, output_model, fuel=fuel)
    if certificate.certified:
        mechanism = program_as_mechanism(protected)
        mechanism.name = f"M-static({program.name}, {policy.name})"
        return mechanism
    mechanism = null_mechanism(protected)
    mechanism.name = f"M-static-reject({program.name}, {policy.name})"
    return mechanism


class CompilationOutcome:
    """What the transforming compiler produced for one policy."""

    def __init__(self, mechanism: ProtectionMechanism,
                 certificate: Certificate,
                 transform_used: Optional[str],
                 residual: Optional[Flowchart]) -> None:
        self.mechanism = mechanism
        self.certificate = certificate
        self.transform_used = transform_used
        self.residual = residual

    def __repr__(self) -> str:
        return (f"CompilationOutcome(transform={self.transform_used!r}, "
                f"certified={self.certificate.certified})")


def _flowchart_certified(flowchart: Flowchart, policy: AllowPolicy,
                         domain: ProductDomain, fuel: int) -> bool:
    """Certify a flowchart by running its surveillance mechanism over the
    domain and checking it never issues a notice.

    Transforms produce flowcharts (not structured programs); a flowchart
    is statically acceptable exactly when its surveillance mechanism
    accepts every input — Theorem 3 makes that sound, and exhaustive
    acceptance makes it a compile-time fact for the finite domain.
    """
    mechanism = surveillance_mechanism(flowchart, policy, domain, fuel=fuel)
    return all(mechanism.passes(*point) for point in domain)


def compile_with_transforms(program: StructuredProgram, policy: AllowPolicy,
                            domain: ProductDomain,
                            output_model: OutputModel = VALUE_ONLY,
                            fuel: int = DEFAULT_FUEL) -> CompilationOutcome:
    """Section 5's transforming compiler.

    Pipeline: certify Q directly; if rejected, try (in order) the
    if-then-else transform, the while transform, and assignment
    duplication, accepting the first functionally-equivalent rewrite
    whose surveillance mechanism is violation-free on the domain.  If
    a rewrite is violation-free, the compiled mechanism is the rewrite
    itself run as a program (zero runtime checks); if only assignment
    duplication helps partially, the compiled mechanism is the rewrite's
    surveillance mechanism (Example 9's shape: a residual runtime test
    of the disallowed guard only).
    """
    flowchart = program.compile()
    protected = as_program(flowchart, domain, output_model, fuel=fuel)
    certificate = certify(program, policy)
    if certificate.certified:
        mechanism = program_as_mechanism(protected)
        mechanism.name = f"M-static({program.name}, {policy.name})"
        return CompilationOutcome(mechanism, certificate, None, None)

    candidates: List[Tuple[str, Flowchart]] = [("none", flowchart)]
    try:
        candidates.append(("ite", ite_transform_all(flowchart)))
        candidates.append(
            ("ite+identical",
             ite_transform_all(flowchart, detect_identical_arms=True)))
    except Exception:  # pragma: no cover - transform inapplicable
        pass
    try:
        candidates.append(("while", while_transform_all(flowchart)))
    except Exception:  # pragma: no cover - transform inapplicable
        pass
    for region in find_ite_regions(flowchart):
        try:
            candidates.append(
                ("duplicate",
                 duplicate_assignment_transform(flowchart, region)))
        except Exception:
            continue

    # First pass: a rewrite certified violation-free compiles to itself.
    for label, rewritten in candidates:
        if _flowchart_certified(rewritten, policy, domain, fuel):
            residual_program = as_program(rewritten, domain, output_model,
                                          fuel=fuel)

            def run_rewrite(*inputs, _residual=residual_program):
                return _residual(*inputs)

            mechanism = ProtectionMechanism(
                run_rewrite, protected,
                name=f"M-static-{label}({program.name}, {policy.name})")
            return CompilationOutcome(mechanism, certificate, label, rewritten)

    # Second pass: pick the rewrite whose surveillance mechanism accepts
    # the most inputs (Example 9: duplication leaves a residual check).
    best_label: Optional[str] = None
    best_flowchart: Optional[Flowchart] = None
    best_accepts = -1
    for label, rewritten in candidates:
        mechanism = surveillance_mechanism(rewritten, policy, domain,
                                           fuel=fuel, program=protected)
        accepts = len(mechanism.acceptance_set())
        if accepts > best_accepts:
            best_accepts = accepts
            best_label = label
            best_flowchart = rewritten

    if best_flowchart is not None and best_accepts > 0:
        mechanism = surveillance_mechanism(
            best_flowchart, policy, domain, fuel=fuel, program=protected,
            name=f"M-static-{best_label}-residual({program.name}, {policy.name})")
        return CompilationOutcome(mechanism, certificate, best_label,
                                  best_flowchart)

    mechanism = null_mechanism(protected)
    mechanism.name = f"M-static-reject({program.name}, {policy.name})"
    return CompilationOutcome(mechanism, certificate, None, None)


def compile_per_policy(program: StructuredProgram,
                       policies: Sequence[AllowPolicy],
                       domain: ProductDomain,
                       fuel: int = DEFAULT_FUEL) -> Dict[str, CompilationOutcome]:
    """One compilation per policy — the Section 5 deployment model."""
    return {
        policy.name: compile_with_transforms(program, policy, domain,
                                             fuel=fuel)
        for policy in policies
    }
