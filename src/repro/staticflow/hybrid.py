"""Efficient enforcement: static analysis that pays for itself (Section 5).

    *Using static techniques to produce programs would result in
    efficient security enforcement.*

Two concrete engineering payoffs of the certifier, both ablated by
bench E23:

1. :func:`hybrid_mechanism` — certify first; a certified (program,
   policy) runs the *original* program with zero checks, everything
   else falls back to dynamic surveillance.  Same soundness, large
   constant-factor win on certified pairs.
2. :func:`eliminate_dead_surveillance` — an optimisation pass over the
   instrumented flowchart: a surveillance variable whose label can
   never reach the output label ȳ or the PC label C̄ (computed from the
   static label-dependence graph) cannot affect any rule-4 check, so
   its init and update boxes are removed.  The pass is conservative and
   exactly output-preserving — the test suite checks the optimised
   instrumentation agrees with the original on every input.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..core.domains import ProductDomain
from ..core.mechanism import ProtectionMechanism, program_as_mechanism
from ..core.observability import VALUE_ONLY, OutputModel
from ..core.policy import AllowPolicy
from ..flowchart.boxes import AssignBox, Box, DecisionBox, NodeId, StartBox
from ..flowchart.interpreter import DEFAULT_FUEL, as_program, execute
from ..flowchart.program import Flowchart
from ..flowchart.structured import StructuredProgram
from ..surveillance.dynamic import surveillance_mechanism
from ..surveillance.instrument import (PC_LABEL, VIOLATION_FLAG, instrument,
                                       surveillance_variable)
from .certify import certify


class HybridOutcome:
    """What :func:`hybrid_mechanism` decided for one (program, policy)."""

    def __init__(self, mechanism: ProtectionMechanism, static: bool) -> None:
        self.mechanism = mechanism
        self.static = static

    def __repr__(self) -> str:
        mode = "static (zero checks)" if self.static else "dynamic"
        return f"HybridOutcome({mode}: {self.mechanism.name})"


def hybrid_mechanism(program: StructuredProgram, policy: AllowPolicy,
                     domain: ProductDomain,
                     output_model: OutputModel = VALUE_ONLY,
                     fuel: int = DEFAULT_FUEL) -> HybridOutcome:
    """Certify-then-surveil: the cheapest sound mechanism per pair."""
    flowchart = program.compile()
    protected = as_program(flowchart, domain, output_model, fuel=fuel)
    if certify(program, policy).certified:
        mechanism = program_as_mechanism(protected)
        mechanism.name = f"M-hybrid-static({program.name}, {policy.name})"
        return HybridOutcome(mechanism, static=True)
    mechanism = surveillance_mechanism(
        flowchart, policy, domain, output_model=output_model, fuel=fuel,
        program=protected,
        name=f"M-hybrid-dyn({program.name}, {policy.name})")
    return HybridOutcome(mechanism, static=False)


def label_dependence_closure(flowchart: Flowchart) -> FrozenSet[str]:
    """Variables whose surveillance labels can reach ȳ or C̄.

    Build the static label-flow graph of the *original* flowchart:
    an assignment ``v := E(ws)`` flows each w's label into v; a decision
    ``B(ws)`` flows each tested w's label into C.  The rule-4 check
    reads ȳ and C̄, so the needed set is the backward closure from
    {output, C} — every other variable's surveillance is dead.
    """
    # Forward edges: variable -> variables its label flows into.
    flows_into: Dict[str, Set[str]] = {}
    pc = "__C__"
    for box in flowchart.boxes.values():
        if isinstance(box, AssignBox):
            for source in box.expression.variables():
                flows_into.setdefault(source, set()).add(box.target)
            # Rule 2 folds C̄ into every assigned label.
            flows_into.setdefault(pc, set()).add(box.target)
        elif isinstance(box, DecisionBox):
            for source in box.predicate.variables():
                flows_into.setdefault(source, set()).add(pc)

    # Backward closure from {y, C}.
    needed: Set[str] = {flowchart.output_variable, pc}
    changed = True
    while changed:
        changed = False
        for source, targets in flows_into.items():
            if source not in needed and targets & needed:
                needed.add(source)
                changed = True
    needed.discard(pc)
    return frozenset(needed)


def eliminate_dead_surveillance(flowchart: Flowchart, policy: AllowPolicy,
                                timed: bool = False,
                                name: Optional[str] = None) -> Flowchart:
    """Instrument, then drop surveillance boxes for dead variables.

    Returns an instrumented flowchart extensionally equal to
    ``instrument(flowchart, policy, timed)`` but without the ``_s_v``
    init/update boxes of variables outside the dependence closure.
    """
    needed = label_dependence_closure(flowchart)
    keep_surveillance = {surveillance_variable(variable)
                         for variable in needed}
    keep_surveillance.add(surveillance_variable(flowchart.output_variable))
    keep_surveillance.add(PC_LABEL)
    keep_surveillance.add(VIOLATION_FLAG)
    keep_surveillance.add("_s_test")  # the timed guard's temporary

    instrumented = instrument(flowchart, policy, timed=timed)
    boxes: Dict[NodeId, Box] = dict(instrumented.boxes)

    def is_dead(box: Box) -> bool:
        if not isinstance(box, AssignBox):
            return False
        target = box.target
        if not target.startswith("_s_"):
            return False
        return target not in keep_surveillance

    # Splice out dead assignment boxes by repointing predecessors.
    for node_id in list(boxes):
        box = boxes.get(node_id)
        if box is None or not is_dead(box):
            continue
        assert isinstance(box, AssignBox)
        successor = box.next
        del boxes[node_id]
        for other_id, other in list(boxes.items()):
            if isinstance(other, StartBox) and other.next == node_id:
                boxes[other_id] = StartBox(successor)
            elif isinstance(other, AssignBox) and other.next == node_id:
                boxes[other_id] = AssignBox(other.target, other.expression,
                                            successor)
            elif isinstance(other, DecisionBox):
                true_next = successor if other.true_next == node_id \
                    else other.true_next
                false_next = successor if other.false_next == node_id \
                    else other.false_next
                if (true_next, false_next) != (other.true_next,
                                               other.false_next):
                    boxes[other_id] = DecisionBox(other.predicate,
                                                  true_next, false_next)

    return Flowchart(boxes, instrumented.input_variables,
                     instrumented.output_variable,
                     name=name or f"{instrumented.name}-opt")


def instrumentation_overhead(flowchart: Flowchart, policy: AllowPolicy,
                             domain: ProductDomain,
                             fuel: int = DEFAULT_FUEL) -> Dict[str, float]:
    """Measured cost of enforcement variants, for the E23 ablation.

    Average executed boxes per input for: the bare program, the full
    instrumentation, and the dead-surveillance-eliminated
    instrumentation; plus static box counts.
    """
    full = instrument(flowchart, policy)
    optimised = eliminate_dead_surveillance(flowchart, policy)

    def average_steps(target: Flowchart) -> float:
        total = 0
        for point in domain:
            total += execute(target, point, fuel=fuel).steps
        return total / len(domain)

    return {
        "bare_boxes": len(flowchart.boxes),
        "full_boxes": len(full.boxes),
        "optimised_boxes": len(optimised.boxes),
        "bare_steps": average_steps(flowchart),
        "full_steps": average_steps(full),
        "optimised_steps": average_steps(optimised),
    }
