"""Ruzzo's observations, made executable (Section 4).

Two results attributed to Ruzzo:

1. *Soundness of a given mechanism is undecidable* — since Q is sound
   for (Q, allow()) iff Q is constant, and constancy of a computable
   function is undecidable.
2. *The maximal sound mechanism need not be recursive* — with
   ``Q(x1, x2) = 1 if the x1-th machine halts after exactly x2 steps
   else 0`` and ``allow(1)``, the maximal mechanism outputs Λ at x1 iff
   machine x1 halts at all: the halting problem.

Both are Π1/Σ1 statements; what *is* executable is their step-bounded
projection, and the projection exhibits the instability that proves the
point: enlarging the step window flips verdicts, so no bounded check
computes the true maximal mechanism.  :func:`ruzzo_program` builds Q
from the real machine enumeration; :func:`halting_verdicts` charts the
window-dependence.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.domains import Domain, ProductDomain
from ..core.mechanism import is_violation
from ..core.maximal import maximal_mechanism
from ..core.policy import allow
from ..core.program import Program
from .zoo import machine


def ruzzo_program(machine_indices: Sequence[int], max_steps: int,
                  state_count: int = 2) -> Program:
    """Q(x1, x2) = 1 iff machine x1 halts on input x1 after exactly x2 steps.

    ``x2`` ranges over ``0..max_steps``; the machine runs its own index
    (in unary) as input, the classic diagonal convention.
    """
    machines = {index: machine(index, state_count)
                for index in machine_indices}
    domain = ProductDomain(
        Domain(list(machine_indices), name="Machine"),
        Domain.integers(0, max_steps, name="Steps"),
    )

    def q(x1: int, x2: int) -> int:
        return 1 if machines[x1].halts_after_exactly(x1, x2) else 0

    return Program(q, domain, name=f"Q-ruzzo[≤{max_steps}]")


def maximal_rejects(machine_indices: Sequence[int], max_steps: int,
                    state_count: int = 2) -> Dict[int, bool]:
    """For each machine index: does the (window-bounded) maximal
    mechanism output Λ on its row?

    True iff the machine halts within the window — the maximal
    mechanism *is* a halting oracle on rows where the window suffices,
    and wrong on rows where it does not; that gap is non-recursiveness
    seen from below.
    """
    program = ruzzo_program(machine_indices, max_steps, state_count)
    construction = maximal_mechanism(program, allow(1, arity=2))
    verdicts: Dict[int, bool] = {}
    for index in machine_indices:
        verdicts[index] = is_violation(construction.mechanism(index, 0))
    return verdicts


def halting_verdicts(machine_indices: Sequence[int],
                     windows: Sequence[int],
                     state_count: int = 2) -> List[Tuple[int, Dict[int, bool]]]:
    """``maximal_rejects`` across growing step windows.

    A machine that halts in ``k`` steps flips its row's verdict once the
    window reaches ``k``; a non-halting machine's row never flips —
    and no bounded procedure can tell "never" from "not yet".
    """
    return [(window, maximal_rejects(machine_indices, window, state_count))
            for window in windows]


def soundness_is_constancy(machine_index: int, input_range: int,
                           max_steps: int,
                           state_count: int = 2) -> Tuple[bool, bool]:
    """Ruzzo's first observation, instantiated.

    Let Qi(x) = 1 if machine i halts on x within the step budget else 0.
    Returns (is_constant_on_window, judged_sound_for_allow_none) — equal
    by construction, which is the reduction: deciding soundness decides
    constancy.
    """
    from ..core.mechanism import program_as_mechanism
    from ..core.policy import allow_none
    from ..core.soundness import check_soundness

    tm = machine(machine_index, state_count)
    domain = ProductDomain(Domain.integers(0, input_range, name="X"))

    def qi(x: int) -> int:
        return 1 if tm.run(x, max_steps).halted else 0

    program = Program(qi, domain, name=f"Q{machine_index}")
    outputs = {program(x) for (x,) in domain}
    constant = len(outputs) == 1
    sound = check_soundness(program_as_mechanism(program),
                            allow_none(1)).sound
    return constant, sound
