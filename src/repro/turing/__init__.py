"""Turing machines and Ruzzo's observations (Section 4)."""

from .machine import (BLANK, HALT_STATE, Move, TMResult, Transitions,
                      TuringMachine, tape_ones)
from .zoo import behaviour_sample, machine, total_machines
from .ruzzo import (halting_verdicts, maximal_rejects, ruzzo_program,
                    soundness_is_constancy)

__all__ = [
    "TuringMachine", "TMResult", "Transitions", "Move", "BLANK",
    "HALT_STATE", "tape_ones",
    "machine", "total_machines", "behaviour_sample",
    "ruzzo_program", "maximal_rejects", "halting_verdicts",
    "soundness_is_constancy",
]
