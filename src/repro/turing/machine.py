"""A deterministic single-tape Turing machine (Section 4, Ruzzo).

Ruzzo's observation needs real machines: *"Letting Q(x1, x2) = if the
i-th Turing machine on input x1 halts after exactly x2 steps then 1
else 0, we see that M(x1, x2) = Λ if and only if the i-th Turing
machine halts on x1.  Certainly this is not a recursive function."*

The machine model: bi-infinite tape over {0, 1, blank}, states
addressed by index, transitions ``(state, symbol) -> (state', symbol',
move)``.  Inputs are written in unary (``n`` ones) starting at the
head.  All runs are step-bounded, so every question we ask is the
*step-bounded* (decidable) projection of Ruzzo's — which is exactly the
point: the unbounded question is the non-recursive one.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from ..core.errors import ExecutionError

BLANK = 2  # tape alphabet: 0, 1, blank


class Move(enum.IntEnum):
    LEFT = -1
    STAY = 0
    RIGHT = 1


#: transitions[(state, symbol)] = (next_state, write_symbol, move)
Transitions = Dict[Tuple[int, int], Tuple[int, int, Move]]

HALT_STATE = -1


class TuringMachine:
    """A validated deterministic TM; state 0 is initial, -1 is halt."""

    def __init__(self, transitions: Transitions, state_count: int,
                 name: str = "tm") -> None:
        self.transitions = dict(transitions)
        self.state_count = state_count
        self.name = name
        self._validate()

    def _validate(self) -> None:
        if self.state_count < 1:
            raise ExecutionError("a machine needs at least one state")
        for (state, symbol), (next_state, write, move) in self.transitions.items():
            if not (0 <= state < self.state_count):
                raise ExecutionError(f"bad source state {state}")
            if symbol not in (0, 1, BLANK):
                raise ExecutionError(f"bad read symbol {symbol}")
            if next_state != HALT_STATE and not (
                    0 <= next_state < self.state_count):
                raise ExecutionError(f"bad target state {next_state}")
            if write not in (0, 1, BLANK):
                raise ExecutionError(f"bad write symbol {write}")
            if not isinstance(move, Move):
                raise ExecutionError(f"bad move {move!r}")

    def run(self, input_value: int, max_steps: int) -> "TMResult":
        """Run on unary input; return halting status within the bound.

        A missing transition halts the machine (convention: implicit
        halt), counting the step that discovered it.
        """
        if input_value < 0:
            raise ExecutionError("unary inputs are non-negative")
        tape: Dict[int, int] = {offset: 1 for offset in range(input_value)}
        head = 0
        state = 0
        steps = 0
        while steps < max_steps:
            symbol = tape.get(head, BLANK)
            action = self.transitions.get((state, symbol))
            steps += 1
            if action is None:
                return TMResult(True, steps, tape_ones(tape))
            next_state, write, move = action
            if write == BLANK:
                tape.pop(head, None)
            else:
                tape[head] = write
            head += int(move)
            if next_state == HALT_STATE:
                return TMResult(True, steps, tape_ones(tape))
            state = next_state
        return TMResult(False, steps, tape_ones(tape))

    def halts_after_exactly(self, input_value: int, step_count: int) -> bool:
        """Ruzzo's predicate: halts on the input after exactly n steps."""
        result = self.run(input_value, max_steps=step_count + 1)
        return result.halted and result.steps == step_count

    def __repr__(self) -> str:
        return (f"TuringMachine({self.name}: {self.state_count} states, "
                f"{len(self.transitions)} transitions)")


def tape_ones(tape: Dict[int, int]) -> int:
    """Number of 1s left on the tape (the machine's unary 'output')."""
    return sum(1 for symbol in tape.values() if symbol == 1)


class TMResult:
    __slots__ = ("halted", "steps", "output")

    def __init__(self, halted: bool, steps: int, output: int) -> None:
        self.halted = halted
        self.steps = steps
        self.output = output

    def __repr__(self) -> str:
        status = "halted" if self.halted else "running"
        return f"TMResult({status} after {self.steps} steps, out={self.output})"
