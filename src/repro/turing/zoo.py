"""An effective enumeration of Turing machines (the "i-th machine").

Ruzzo's construction quantifies over *the i-th Turing machine*; for the
finite-projection experiments we need a concrete, deterministic
enumeration.  :func:`machine` decodes an index into a machine over a
small state budget: the index's base-B digits fill the transition table
in a fixed order.  The enumeration is surjective onto that budget's
machines and stable across runs, which is all the experiments need —
some indices halt fast, some loop forever, some depend on their input,
exactly the behavioural diversity the halting question lives on.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .machine import BLANK, HALT_STATE, Move, Transitions, TuringMachine

#: Per-(state, symbol) action space: next_state in {0..S-1, HALT},
#: write in {0, 1, BLANK}, move in {L, S, R}; plus "no transition".
_SYMBOLS = (0, 1, BLANK)
_MOVES = (Move.LEFT, Move.STAY, Move.RIGHT)


def _action_space(state_count: int):
    actions = [None]  # "no transition" = implicit halt
    for next_state in list(range(state_count)) + [HALT_STATE]:
        for write in _SYMBOLS:
            for move in _MOVES:
                actions.append((next_state, write, move))
    return actions


def machine(index: int, state_count: int = 2) -> TuringMachine:
    """The ``index``-th machine with the given state budget.

    The index's digits (base = size of the per-cell action space)
    select an action for each (state, symbol) cell in a fixed order.
    """
    if index < 0:
        raise ValueError("machine indices are non-negative")
    actions = _action_space(state_count)
    base = len(actions)
    transitions: Transitions = {}
    remaining = index
    for state in range(state_count):
        for symbol in _SYMBOLS:
            action = actions[remaining % base]
            remaining //= base
            if action is not None:
                transitions[(state, symbol)] = action
    return TuringMachine(transitions, state_count, name=f"tm#{index}")


def total_machines(state_count: int = 2) -> int:
    """Size of the enumeration's period for a state budget."""
    base = len(_action_space(state_count))
    return base ** (state_count * len(_SYMBOLS))


def behaviour_sample(indices, input_value: int,
                     max_steps: int) -> Dict[int, Tuple[bool, int]]:
    """(halted?, steps) for each machine index — used by tests to show
    the enumeration actually contains halting, looping, and slow
    machines."""
    result = {}
    for index in indices:
        run = machine(index).run(input_value, max_steps)
        result[index] = (run.halted, run.steps)
    return result
