"""Compiling structured programs to Fenton's data-mark machine.

Section 6 claims the framework "is not biased toward any particular
solution for providing security" — the same policy questions make sense
for flowchart surveillance and for Fenton's machine alike.  This
compiler makes that claim testable: a (restricted) structured program
is lowered to data-mark-machine code, so one source program can be
enforced *dynamically in two different models* and the verdicts
compared (experiment E26).

Supported source language (register-machine-friendly subset):

- ``v := c``, ``v := w``, ``v := v + c``, ``v := v - c`` (saturating at
  0 — registers are naturals), ``v := v + w``;
- ``if w == 0 { ... } else { ... }`` and ``if w != 0 ...``;
- ``while w != 0 { ... }``;
- ``skip``.

Semantics note: the machine computes over ℕ, the flowchart over ℤ; the
compiler is exact for programs whose values stay non-negative, which
the cross-model tests verify exhaustively on their domains.

**Mark disciplines.**  How the emitted code handles Fenton's PC mark is
a security design decision, and getting it wrong is instructive — so
the compiler exposes all three variants as an ablation
(:class:`Discipline`):

- ``TAINT`` — no mark restoration: any branch on priv data leaves P
  priv forever.  Sound and brutally incomplete (data movement on a
  register machine *is* branching).
- ``JOIN`` — restore P at every branch/loop join, nothing more.
  **Unsound**: a loop whose trip count is priv writes its targets on
  some trips and not on zero trips; the still-null mark of the untaken
  write is a negative-inference channel.  (The machine-level twin of
  the paper's Example 1 critique; the test suite carries the witness.)
- ``PREMARK`` — restore at joins *and* pre-mark the static write set of
  every region from the tested register (:class:`FMarkFrom`), Fenton's
  well-formedness discipline.  Sound, with completeness approaching
  flowchart surveillance.

Each copy site gets its own scratch register so stale marks never
bleed between unrelated data movements.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.errors import ExecutionError
from ..flowchart.expr import BinOp, Compare, Const, Var
from ..flowchart.structured import (Assign, If, Skip, Stmt,
                                    StructuredProgram, While)
from .fenton import (DataMarkMachine, FDecJz, FHalt, FInc, FInstruction,
                     FMarkFrom, HaltMode)


class CompileError(ExecutionError):
    """The statement is outside the compilable subset."""


class Discipline(enum.Enum):
    """How the compiled code treats Fenton's PC mark (see module doc)."""

    TAINT = "taint"
    JOIN = "join"
    PREMARK = "premark"

    def __str__(self) -> str:
        return self.value


class _Assembler:
    """F-instruction emitter with label patching."""

    def __init__(self) -> None:
        self.instructions: List[FInstruction] = []
        self._patches: List[Tuple[int, str, str]] = []
        self._labels: Dict[str, int] = {}
        self._label_counter = 0

    @property
    def here(self) -> int:
        return len(self.instructions)

    def fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def bind(self, label: str) -> None:
        if label in self._labels:
            raise CompileError(f"label {label!r} bound twice")
        self._labels[label] = self.here

    def emit(self, instruction: FInstruction) -> int:
        self.instructions.append(instruction)
        return self.here - 1

    def emit_inc(self, register: int) -> int:
        """FInc falling through to the next instruction."""
        return self.emit(FInc(register, self.here + 1))

    def emit_mark_from(self, target: int, source: int) -> int:
        return self.emit(FMarkFrom(target, source, self.here + 1))

    def emit_decjz(self, register: int, next_label: Optional[str],
                   zero_label: Optional[str],
                   join_label: Optional[str] = None) -> int:
        """DecJz with any operand as a label (None = fall through)."""
        address = self.emit(FDecJz(register, -1, -1))
        self._patches.append((address, "next",
                              next_label or f"@{address + 1}"))
        self._patches.append((address, "zero",
                              zero_label or f"@{address + 1}"))
        if join_label is not None:
            self._patches.append((address, "join", join_label))
        return address

    def emit_jump(self, target_label: str, zero_register: int) -> int:
        """Unconditional jump via the reserved always-zero register."""
        address = self.emit(FDecJz(zero_register, -1, -1))
        self._patches.append((address, "next", target_label))
        self._patches.append((address, "zero", target_label))
        return address

    def assemble(self, register_count: int, output_register: int,
                 halt_mode: HaltMode, name: str) -> DataMarkMachine:
        resolved: List[FInstruction] = list(self.instructions)

        def resolve(label: str) -> int:
            if label.startswith("@"):
                return int(label[1:])
            if label not in self._labels:
                raise CompileError(f"unbound label {label!r}")
            return self._labels[label]

        fields: Dict[int, Dict[str, int]] = {}
        for address, field, label in self._patches:
            fields.setdefault(address, {})[field] = resolve(label)
        for address, updates in fields.items():
            instruction = resolved[address]
            assert isinstance(instruction, FDecJz)
            resolved[address] = FDecJz(
                instruction.register,
                updates.get("next", instruction.next),
                updates.get("zero", instruction.zero),
                updates.get("join", instruction.join),
            )
        return DataMarkMachine(resolved, register_count, output_register,
                               halt_mode=halt_mode, name=name)


def _write_set(body) -> FrozenSet[str]:
    """Variables a statement list may modify (marks included).

    Copies restore their source's *value* but touch its mark, so copy
    sources count as written; tested variables are decremented and
    re-incremented, so they count too.
    """
    written: Set[str] = set()
    for statement in body:
        if isinstance(statement, Skip):
            continue
        if isinstance(statement, Assign):
            written.add(statement.target)
            expression = statement.expression
            if isinstance(expression, Var):
                written.add(expression.name)
            elif (isinstance(expression, BinOp)
                  and isinstance(expression.right, Var)):
                written.add(expression.right.name)
        elif isinstance(statement, If):
            written |= set(statement.predicate.variables())
            written |= _write_set(statement.then_body)
            written |= _write_set(statement.else_body)
        elif isinstance(statement, While):
            written |= set(statement.predicate.variables())
            written |= _write_set(statement.body)
    return frozenset(written)


class FentonCompiler:
    """One-shot compiler; use :func:`compile_to_fenton`."""

    def __init__(self, program: StructuredProgram, halt_mode: HaltMode,
                 discipline: Discipline) -> None:
        self.program = program
        self.halt_mode = halt_mode
        self.discipline = discipline
        self.assembler = _Assembler()
        # Register allocation: output first, inputs next (1..k), then
        # locals; per-site scratches are allocated on demand.
        self.registers: Dict[str, int] = {program.output_variable: 0}
        for name in program.input_variables:
            self._allocate(name)
        self._collect_locals(program.body)
        self.zero = self._allocate("__zero")
        self._scratch_counter = 0

    def _allocate(self, name: str) -> int:
        if name not in self.registers:
            self.registers[name] = len(self.registers)
        return self.registers[name]

    def _fresh_scratch(self) -> int:
        """A dedicated scratch per copy site: stale marks never bleed
        between unrelated data movements."""
        self._scratch_counter += 1
        return self._allocate(f"__scratch{self._scratch_counter}")

    def _collect_locals(self, body) -> None:
        for statement in body:
            if isinstance(statement, Assign):
                self._allocate(statement.target)
                for name in statement.expression.variables():
                    self._allocate(name)
            elif isinstance(statement, If):
                for name in statement.predicate.variables():
                    self._allocate(name)
                self._collect_locals(statement.then_body)
                self._collect_locals(statement.else_body)
            elif isinstance(statement, While):
                for name in statement.predicate.variables():
                    self._allocate(name)
                self._collect_locals(statement.body)

    # -- mark plumbing ----------------------------------------------------

    def _join_label_or_none(self, label: str) -> Optional[str]:
        return None if self.discipline is Discipline.TAINT else label

    def _premark(self, target: int, source: int) -> None:
        if self.discipline is Discipline.PREMARK and target != source:
            self.assembler.emit_mark_from(target, source)

    def _premark_region(self, body, tested: int) -> None:
        if self.discipline is not Discipline.PREMARK:
            return
        for name in sorted(_write_set(body)):
            self._premark(self.registers[name], tested)

    # -- primitives --------------------------------------------------------

    def _clear(self, register: int) -> None:
        """register := 0 (its own mark already dominates the test)."""
        top = self.assembler.fresh_label("clr")
        done = self.assembler.fresh_label("clrdone")
        self.assembler.bind(top)
        self.assembler.emit_decjz(register, next_label=top,
                                  zero_label=done,
                                  join_label=self._join_label_or_none(done))
        self.assembler.bind(done)

    def _add_constant(self, register: int, amount: int) -> None:
        for _ in range(amount):
            self.assembler.emit_inc(register)

    def _subtract_constant(self, register: int, amount: int) -> None:
        """register := max(0, register - amount) — saturating."""
        for _ in range(amount):
            skip = self.assembler.fresh_label("subz")
            self.assembler.emit_decjz(
                register, next_label=None, zero_label=skip,
                join_label=self._join_label_or_none(skip))
            self.assembler.bind(skip)

    def _move(self, source: int, target: int) -> None:
        """target += source; source := 0."""
        self._premark(target, source)
        top = self.assembler.fresh_label("mv")
        done = self.assembler.fresh_label("mvdone")
        self.assembler.bind(top)
        self.assembler.emit_decjz(source, next_label=None, zero_label=done,
                                  join_label=self._join_label_or_none(done))
        self.assembler.emit_inc(target)
        self.assembler.emit_jump(top, self.zero)
        self.assembler.bind(done)

    def _copy(self, source: int, target: int) -> None:
        """target += source, preserving source (via a fresh scratch)."""
        scratch = self._fresh_scratch()
        self._premark(target, source)
        self._move(source, scratch)
        top = self.assembler.fresh_label("cp")
        done = self.assembler.fresh_label("cpdone")
        self.assembler.bind(top)
        self.assembler.emit_decjz(scratch, next_label=None, zero_label=done,
                                  join_label=self._join_label_or_none(done))
        self.assembler.emit_inc(source)
        self.assembler.emit_inc(target)
        self.assembler.emit_jump(top, self.zero)
        self.assembler.bind(done)

    def _test_zero(self, register: int, zero_label: str,
                   join_label: Optional[str]) -> None:
        """Branch on register == 0 without changing its value
        (falls through on nonzero after re-incrementing)."""
        self.assembler.emit_decjz(register, next_label=None,
                                  zero_label=zero_label,
                                  join_label=join_label)
        self.assembler.emit_inc(register)

    # -- statements ---------------------------------------------------------

    def compile_body(self, body) -> None:
        for statement in body:
            self.compile_stmt(statement)

    def compile_stmt(self, statement: Stmt) -> None:
        if isinstance(statement, Skip):
            return
        if isinstance(statement, Assign):
            self._compile_assign(statement)
            return
        if isinstance(statement, If):
            self._compile_if(statement)
            return
        if isinstance(statement, While):
            self._compile_while(statement)
            return
        raise CompileError(f"cannot compile {statement!r}")

    def _compile_assign(self, statement: Assign) -> None:
        target = self.registers[statement.target]
        expression = statement.expression
        if isinstance(expression, Const):
            if expression.value < 0:
                raise CompileError("negative constants are not ℕ")
            self._clear(target)
            self._add_constant(target, expression.value)
            return
        if isinstance(expression, Var):
            source = self.registers[expression.name]
            if source == target:
                return
            self._clear(target)
            self._copy(source, target)
            return
        if isinstance(expression, BinOp) and isinstance(expression.left, Var):
            left = self.registers[expression.left.name]
            if left != target:
                raise CompileError(
                    "compound assignments must update their own target "
                    f"({statement!r})")
            if expression.op == "+" and isinstance(expression.right, Const):
                self._add_constant(target, expression.right.value)
                return
            if expression.op == "-" and isinstance(expression.right, Const):
                self._subtract_constant(target, expression.right.value)
                return
            if expression.op == "+" and isinstance(expression.right, Var):
                self._copy(self.registers[expression.right.name], target)
                return
        raise CompileError(f"expression not compilable: {expression!r}")

    def _tested_register(self, predicate) -> Tuple[int, bool]:
        """(register, true_means_zero) for w == 0 / w != 0 tests."""
        if (isinstance(predicate, Compare)
                and isinstance(predicate.left, Var)
                and isinstance(predicate.right, Const)
                and predicate.right.value == 0
                and predicate.op in ("==", "!=")):
            return (self.registers[predicate.left.name],
                    predicate.op == "==")
        raise CompileError(
            f"only `w == 0` / `w != 0` tests compile; got {predicate!r}")

    def _compile_if(self, statement: If) -> None:
        register, true_means_zero = self._tested_register(
            statement.predicate)
        zero_arm = statement.then_body if true_means_zero \
            else statement.else_body
        nonzero_arm = statement.else_body if true_means_zero \
            else statement.then_body
        self._premark_region(list(statement.then_body)
                             + list(statement.else_body), register)
        zero_label = self.assembler.fresh_label("ifz")
        join_label = self.assembler.fresh_label("ifjoin")
        self._test_zero(register, zero_label,
                        self._join_label_or_none(join_label))
        self.compile_body(nonzero_arm)          # fall-through arm
        self.assembler.emit_jump(join_label, self.zero)
        self.assembler.bind(zero_label)
        self.compile_body(zero_arm)
        self.assembler.bind(join_label)

    def _compile_while(self, statement: While) -> None:
        register, true_means_zero = self._tested_register(
            statement.predicate)
        if true_means_zero:
            raise CompileError("while w == 0 does not terminate usefully "
                               "on naturals; use while w != 0")
        self._premark_region(statement.body, register)
        top = self.assembler.fresh_label("wtop")
        exit_label = self.assembler.fresh_label("wexit")
        self.assembler.bind(top)
        self._test_zero(register, exit_label,
                        self._join_label_or_none(exit_label))
        self.compile_body(statement.body)
        self.assembler.emit_jump(top, self.zero)
        self.assembler.bind(exit_label)

    def finish(self, name: str) -> DataMarkMachine:
        self.assembler.emit(FHalt())
        return self.assembler.assemble(len(self.registers), 0,
                                       self.halt_mode, name=name)


def compile_to_fenton(program: StructuredProgram,
                      halt_mode: HaltMode = HaltMode.NOTICE,
                      discipline: Discipline = Discipline.PREMARK
                      ) -> Tuple[DataMarkMachine, Dict[str, int]]:
    """Compile a structured program; returns (machine, register map).

    Inputs occupy registers 1..k in declaration order; the output
    variable is register 0.
    """
    compiler = FentonCompiler(program, halt_mode, discipline)
    compiler.compile_body(program.body)
    machine = compiler.finish(
        name=f"fenton[{program.name}, {discipline}]")
    return machine, dict(compiler.registers)


def compilable(program: StructuredProgram) -> bool:
    """Conservative check: does the program fit the compilable subset?"""
    try:
        compile_to_fenton(program)
        return True
    except CompileError:
        return False
