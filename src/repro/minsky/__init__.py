"""Fenton's model of computation (Example 1): Minsky machines + data marks."""

from .machine import (DEFAULT_FUEL, DecJz, Halt, Inc, Instruction,
                      MinskyMachine, MinskyResult, as_program)
from .compile import MacroAssembler, adder_machine, doubler_machine
from .fenton import (NULL, PRIV, DataMarkMachine, FDecJz, FHalt, FInc,
                     FentonResult, HaltMode,
                     balanced_negative_inference_program, fenton_mechanism,
                     negative_inference_program,
                     undefined_trailing_halt_program)

__all__ = [
    "Instruction", "Inc", "DecJz", "Halt", "MinskyMachine", "MinskyResult",
    "as_program", "DEFAULT_FUEL",
    "MacroAssembler", "adder_machine", "doubler_machine",
    "NULL", "PRIV", "HaltMode", "FInstruction", "FInc", "FDecJz", "FHalt",
    "DataMarkMachine", "FentonResult", "fenton_mechanism",
    "negative_inference_program", "balanced_negative_inference_program",
    "undefined_trailing_halt_program",
]

from .fenton import FInstruction, FMarkFrom  # noqa: E402
from .fcompile import (CompileError, Discipline, compilable,  # noqa: E402
                       compile_to_fenton)

__all__ += ["FMarkFrom", "CompileError", "Discipline", "compilable",
            "compile_to_fenton"]
