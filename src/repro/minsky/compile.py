"""Small macro-assembler for Minsky machines.

Writing raw two-instruction programs is painful; these combinators
emit common idioms (clear, move, copy, add, constant) so Example 1
programs and tests stay readable.  Each macro appends instructions to a
:class:`MacroAssembler` and returns the entry address.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.errors import ExecutionError
from .machine import DecJz, Halt, Inc, Instruction, MinskyMachine


class MacroAssembler:
    """Accumulates instructions with forward-patchable jump targets."""

    def __init__(self, register_count: int, output_register: int = 0,
                 name: str = "minsky") -> None:
        self.register_count = register_count
        self.output_register = output_register
        self.name = name
        self._instructions: List[Instruction] = []
        self._patches: Dict[int, str] = {}
        self._labels: Dict[str, int] = {}

    @property
    def here(self) -> int:
        """Address of the next instruction to be emitted."""
        return len(self._instructions)

    def label(self, name: str) -> None:
        """Bind ``name`` to the current address."""
        if name in self._labels:
            raise ExecutionError(f"duplicate label {name!r}")
        self._labels[name] = self.here

    def _emit(self, instruction: Instruction) -> int:
        address = self.here
        self._instructions.append(instruction)
        return address

    # -- primitives -----------------------------------------------------

    def inc(self, register: int) -> int:
        """r += 1, fall through."""
        return self._emit(Inc(register, self.here + 1))

    def dec_jz(self, register: int, zero_label: str) -> int:
        """If r == 0 jump to label; else r -= 1 and fall through."""
        address = self._emit(DecJz(register, self.here + 1, -1))
        self._patches[address] = zero_label
        return address

    def halt(self) -> int:
        return self._emit(Halt())

    def clear_loop(self, register: int) -> int:
        """r := 0 — canonical tight loop."""
        entry = self.here
        done = f"__cl_done{entry}"
        # while r != 0: r -= 1  (DecJz falls through on nonzero, so loop
        # back to itself until the zero arm fires).
        address = self._emit(DecJz(register, entry, -1))
        self._patches[address] = done
        self.label(done)
        return entry

    def move(self, source: int, target: int) -> int:
        """target += source; source := 0."""
        entry = self.here
        done = f"__mv_done{entry}"
        address = self._emit(DecJz(source, self.here + 1, -1))
        self._patches[address] = done
        self.inc(target)
        self.jump_to_address(entry, scratch=None)
        self.label(done)
        return entry

    def jump_to_address(self, address: int, scratch: Optional[int]) -> int:
        """Unconditional backwards jump to a known address.

        Implemented as a DecJz on a register guaranteed zero at this
        point; when ``scratch`` is None a dedicated always-zero register
        is required — by convention the *last* register, which no macro
        touches.
        """
        register = scratch if scratch is not None else self.register_count - 1
        return self._emit(DecJz(register, address, address))

    def copy(self, source: int, target: int, scratch: int) -> int:
        """target += source, preserving source (via a scratch register)."""
        entry = self.move(source, scratch)
        # scratch -> source and target simultaneously
        loop = self.here
        done = f"__cp_done{loop}"
        address = self._emit(DecJz(scratch, self.here + 1, -1))
        self._patches[address] = done
        self.inc(source)
        self.inc(target)
        self.jump_to_address(loop, scratch=None)
        self.label(done)
        return entry

    def constant(self, register: int, value: int) -> int:
        """register += value (a run of Incs)."""
        entry = self.here
        for _ in range(value):
            self.inc(register)
        return entry

    # -- assembly ---------------------------------------------------------

    def assemble(self) -> MinskyMachine:
        """Patch labels and build the machine."""
        instructions = list(self._instructions)
        for address, label in self._patches.items():
            if label not in self._labels:
                raise ExecutionError(f"undefined label {label!r}")
            target = self._labels[label]
            instruction = instructions[address]
            assert isinstance(instruction, DecJz)
            instructions[address] = DecJz(instruction.register,
                                          instruction.next
                                          if instruction.next != -1 else target,
                                          target
                                          if instruction.zero == -1
                                          else instruction.zero)
        return MinskyMachine(instructions, self.register_count,
                             self.output_register, name=self.name)


def adder_machine() -> MinskyMachine:
    """``r0 := r1 + r2`` — the canonical worked example.

    Registers: 0 output, 1 and 2 inputs, 3 reserved always-zero.
    """
    assembler = MacroAssembler(register_count=4, name="adder")
    assembler.move(1, 0)
    assembler.move(2, 0)
    assembler.halt()
    return assembler.assemble()


def doubler_machine() -> MinskyMachine:
    """``r0 := 2 * r1`` (two Incs per Dec).

    Registers: 0 output, 1 input, 2 reserved always-zero.
    """
    assembler = MacroAssembler(register_count=3, name="doubler")
    entry = assembler.here
    done = "__done"
    address = assembler._emit(DecJz(1, assembler.here + 1, -1))
    assembler._patches[address] = done
    assembler.inc(0)
    assembler.inc(0)
    assembler.jump_to_address(entry, scratch=None)
    assembler.label(done)
    assembler.halt()
    return assembler.assemble()
