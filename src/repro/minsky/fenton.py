"""Fenton's data-mark machine and the paper's critique (Example 1).

Fenton [5] equips a Minsky machine with *data marks*: each register has
a security attribute, ``null`` or ``priv``, and so does the program
counter P.  Branching on a ``priv`` register marks P ``priv``; marks
restore when control returns to the join point of the branch (this is
the structure that makes Fenton's subsystems "memoryless").  The halt
statement is::

    if P = null then halt

and the paper's Example 1 critique is that the semantics when
``P != null`` is *not completely defined*, and one reasonable reading is
**unsound**:

- ``HaltMode.NOTICE`` — emit an error message (violation notice).  A
  program can then emit the message *iff some priv value is zero*: the
  presence/absence of the message is a negative-inference channel
  (:func:`negative_inference_program` constructs the paper's witness).
- ``HaltMode.NOOP`` — treat the halt as a no-op and fall through; but
  if the halt is the *last* statement the behaviour is undefined, which
  we surface as :class:`~repro.core.errors.UndefinedSemanticsError`
  (:func:`undefined_trailing_halt_program` constructs that witness).

Data-mark rules implemented (following Fenton's machine):

- ``Inc r`` / ``Dec r``: ``mark(r) := mark(r) ⊔ mark(P)`` — a value
  changed under priv control is priv;
- ``DecJz r``: before branching, ``mark(P) := mark(P) ⊔ mark(r)``; the
  pre-branch mark of P is restored when control reaches the branch's
  declared join address;
- ``Halt``: if ``mark(P) = null`` stop normally, else apply the chosen
  interpretation.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.domains import ProductDomain
from ..core.errors import ExecutionError, FuelExhaustedError, UndefinedSemanticsError
from ..core.mechanism import ProtectionMechanism, ViolationNotice
from ..core.program import Program

DEFAULT_FUEL = 100_000

NULL = "null"
PRIV = "priv"


def _join_marks(first: str, second: str) -> str:
    return PRIV if PRIV in (first, second) else NULL


class HaltMode(enum.Enum):
    """The two readings of ``if P = null then halt`` when P is priv."""

    NOTICE = "notice"   # emit an error message — the unsound reading
    NOOP = "noop"       # skip the halt — undefined if it is the last statement

    def __str__(self) -> str:
        return self.value


class FInstruction:
    """Base class for data-mark-machine instructions."""


class FInc(FInstruction):
    """Increment ``register``; its mark absorbs the PC mark."""

    __slots__ = ("register", "next")

    def __init__(self, register: int, next: int) -> None:
        self.register = register
        self.next = next

    def __repr__(self) -> str:
        return f"FInc(r{self.register} -> {self.next})"


class FDecJz(FInstruction):
    """Branch on ``register``; PC mark absorbs the register mark.

    ``join`` (optional) is the address where the two arms of this branch
    reconverge; on reaching it the PC mark is restored to its value
    before the branch — Fenton's mark-restoration discipline.
    """

    __slots__ = ("register", "next", "zero", "join")

    def __init__(self, register: int, next: int, zero: int,
                 join: Optional[int] = None) -> None:
        self.register = register
        self.next = next
        self.zero = zero
        self.join = join

    def __repr__(self) -> str:
        return (f"FDecJz(r{self.register} -> {self.next} / z:{self.zero}"
                f"{f' join:{self.join}' if self.join is not None else ''})")


class FHalt(FInstruction):
    """``if P = null then halt`` — Example 1's problematic statement."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "FHalt()"


class FMarkFrom(FInstruction):
    """Pre-marking: ``mark(target) := mark(target) ⊔ mark(source) ⊔ P``.

    Fenton's well-formedness discipline: before branching on sensitive
    data, a program must raise the marks of every register either arm
    may write — otherwise the *absence* of a write (the untaken arm, a
    zero-trip loop) leaks through a register's still-null mark.  The
    instruction changes no register value; it only joins marks.
    """

    __slots__ = ("target", "source", "next")

    def __init__(self, target: int, source: int, next: int) -> None:
        self.target = target
        self.source = source
        self.next = next

    def __repr__(self) -> str:
        return f"FMarkFrom(r{self.target} ⊔= r{self.source} -> {self.next})"


class FentonResult:
    """One run of the data-mark machine."""

    __slots__ = ("outcome", "steps", "marks", "registers")

    def __init__(self, outcome: Union[int, ViolationNotice], steps: int,
                 marks: Tuple[str, ...], registers: Tuple[int, ...]) -> None:
        self.outcome = outcome
        self.steps = steps
        self.marks = marks
        self.registers = registers

    @property
    def violated(self) -> bool:
        return isinstance(self.outcome, ViolationNotice)

    def __repr__(self) -> str:
        return f"FentonResult(outcome={self.outcome!r}, steps={self.steps})"


class DataMarkMachine:
    """Fenton's machine: a Minsky machine with null/priv data marks."""

    def __init__(self, instructions: Sequence[FInstruction],
                 register_count: int, output_register: int = 0,
                 halt_mode: HaltMode = HaltMode.NOTICE,
                 name: str = "fenton") -> None:
        self.instructions: Tuple[FInstruction, ...] = tuple(instructions)
        self.register_count = register_count
        self.output_register = output_register
        self.halt_mode = halt_mode
        self.name = name
        self._validate()

    def _validate(self) -> None:
        if not self.instructions:
            raise ExecutionError(f"machine {self.name!r} has no instructions")
        size = len(self.instructions)
        for address, instruction in enumerate(self.instructions):
            if isinstance(instruction, FInc):
                targets = (instruction.next,)
            elif isinstance(instruction, FDecJz):
                targets = (instruction.next, instruction.zero)
                if instruction.join is not None and not (0 <= instruction.join < size):
                    raise ExecutionError(
                        f"instruction {address} has bad join {instruction.join}")
            elif isinstance(instruction, FMarkFrom):
                targets = (instruction.next,)
                if not (0 <= instruction.target < self.register_count
                        and 0 <= instruction.source < self.register_count):
                    raise ExecutionError(
                        f"instruction {address} marks bad registers")
            elif isinstance(instruction, FHalt):
                targets = ()
            else:
                raise ExecutionError(
                    f"unknown instruction {instruction!r} at {address}")
            for target in targets:
                if not (0 <= target < size):
                    raise ExecutionError(
                        f"instruction {address} jumps to bad address {target}")

    def run(self, registers: Sequence[int], marks: Sequence[str],
            fuel: int = DEFAULT_FUEL) -> FentonResult:
        """Execute with initial register values and data marks.

        The outcome is the output register's value on a normal halt
        (with its final mark reported alongside), a
        :class:`ViolationNotice` under ``HaltMode.NOTICE`` when a priv
        halt is attempted, or :class:`UndefinedSemanticsError` raised
        under ``HaltMode.NOOP`` when the skipped halt is the last
        statement.
        """
        if len(registers) != self.register_count:
            raise ExecutionError(
                f"expected {self.register_count} registers, got {len(registers)}")
        if len(marks) != self.register_count:
            raise ExecutionError(
                f"expected {self.register_count} marks, got {len(marks)}")
        for mark in marks:
            if mark not in (NULL, PRIV):
                raise ExecutionError(f"bad mark {mark!r}")

        state: List[int] = [max(0, int(value)) for value in registers]
        state_marks: List[str] = list(marks)
        pc = 0
        pc_mark = NULL
        # Stack of (join_address, saved_pc_mark) — Fenton's restoration.
        restore_stack: List[Tuple[int, str]] = []
        steps = 0

        while True:
            if steps >= fuel:
                raise FuelExhaustedError(
                    fuel, f"machine {self.name!r} exceeded {fuel} steps")
            while restore_stack and restore_stack[-1][0] == pc:
                _, saved = restore_stack.pop()
                pc_mark = saved
            instruction = self.instructions[pc]
            steps += 1
            if isinstance(instruction, FHalt):
                if pc_mark == NULL:
                    return FentonResult(state[self.output_register], steps,
                                        tuple(state_marks), tuple(state))
                if self.halt_mode is HaltMode.NOTICE:
                    return FentonResult(
                        ViolationNotice("error: halt with priv P"),
                        steps, tuple(state_marks), tuple(state))
                # HaltMode.NOOP: skip to the next statement.
                if pc + 1 >= len(self.instructions):
                    raise UndefinedSemanticsError(
                        "halt with priv P is a no-op, but it is the last "
                        "program statement — semantics undefined (Example 1)")
                pc += 1
            elif isinstance(instruction, FInc):
                state[instruction.register] += 1
                state_marks[instruction.register] = _join_marks(
                    state_marks[instruction.register], pc_mark)
                pc = instruction.next
            elif isinstance(instruction, FMarkFrom):
                state_marks[instruction.target] = _join_marks(
                    _join_marks(state_marks[instruction.target],
                                state_marks[instruction.source]),
                    pc_mark)
                pc = instruction.next
            else:
                assert isinstance(instruction, FDecJz)
                if instruction.join is not None:
                    restore_stack.append((instruction.join, pc_mark))
                pc_mark = _join_marks(pc_mark,
                                      state_marks[instruction.register])
                if state[instruction.register] == 0:
                    pc = instruction.zero
                else:
                    state[instruction.register] -= 1
                    state_marks[instruction.register] = _join_marks(
                        state_marks[instruction.register], pc_mark)
                    pc = instruction.next

    def __repr__(self) -> str:
        return (f"DataMarkMachine({self.name}: "
                f"{len(self.instructions)} instructions, "
                f"halt_mode={self.halt_mode})")


def negative_inference_program(halt_mode: HaltMode) -> DataMarkMachine:
    """The Example 1 witness: an error message iff the priv input is zero.

    Register 1 holds the priv input x; register 0 (null) is the output.

    Layout::

        0: DecJz r1 -> 1 / zero: 2   (join = 3)
        1: (x != 0 arm) Inc r0 -> 3
        2: (x == 0 arm) FHalt        <- attempted halt inside priv region
        3: FHalt                     <- normal halt at the join (P restored)

    With ``HaltMode.NOTICE``: x = 0 reaches address 2 with P = priv and
    emits the error message; x != 0 reaches the join, where P is
    restored to null, and halts normally with output 1.  The message's
    presence reveals x = 0 — the negative-inference leak ("the absence
    of an error message would indicate that x != 0").

    With ``HaltMode.NOOP``: the priv halt at 2 falls through to 3,
    where P has been restored, so both paths halt normally — but the
    two paths now disagree on r0 (0 vs 1), so the *value* leaks instead
    unless the program is fixed to equalise the arms; the test suite
    explores both readings.
    """
    program = (
        FDecJz(1, 1, 2, join=3),
        FInc(0, 3),
        FHalt(),
        FHalt(),
    )
    return DataMarkMachine(program, register_count=2, output_register=0,
                           halt_mode=halt_mode,
                           name=f"negative-inference[{halt_mode}]")


def balanced_negative_inference_program(halt_mode: HaltMode) -> DataMarkMachine:
    """Like :func:`negative_inference_program` but with equal-value arms.

    Both arms leave r0 = 0, so under ``HaltMode.NOOP`` the program is a
    constant function (sound for ``allow()``), while under
    ``HaltMode.NOTICE`` the error message still leaks ``x = 0`` — the
    sharpest form of the Example 1 critique: the *only* difference
    between sound and unsound is the halt interpretation.

    Layout::

        0: DecJz r1 -> 2 / zero: 1   (join = 2)
        1: FHalt                     <- priv halt attempt on the x == 0 arm
        2: FHalt                     <- join; P restored; normal halt, r0 = 0
    """
    program = (
        FDecJz(1, 2, 1, join=2),
        FHalt(),
        FHalt(),
    )
    return DataMarkMachine(program, register_count=2, output_register=0,
                           halt_mode=halt_mode,
                           name=f"balanced-negative-inference[{halt_mode}]")


def undefined_trailing_halt_program() -> DataMarkMachine:
    """A priv halt as the *last* statement — the undefined case.

    ``0: DecJz r1 -> 1 / zero: 1`` (no join — P stays priv), ``1: FHalt``.
    Under ``HaltMode.NOOP`` every run reaches the trailing halt with
    P = priv and raises :class:`UndefinedSemanticsError`.
    """
    program = (
        FDecJz(1, 1, 1),
        FHalt(),
    )
    return DataMarkMachine(program, register_count=2, output_register=0,
                           halt_mode=HaltMode.NOOP,
                           name="undefined-trailing-halt")


def fenton_mechanism(machine: DataMarkMachine, domain: ProductDomain,
                     priv_registers: Sequence[int],
                     check_output_mark: bool = False,
                     fuel: int = DEFAULT_FUEL) -> ProtectionMechanism:
    """Wrap a data-mark machine as a protection mechanism.

    Inputs fill registers 1..k (register 0 is the null output register);
    registers listed in ``priv_registers`` are marked priv, the rest
    null.  The protected Program is the *un-marked* machine semantics
    (marks ignored, halting at the first FHalt regardless of P) — the
    function Q that Fenton's mechanism gatekeeps.

    ``check_output_mark=True`` adds Fenton's output rule ("objects may
    only encode information from sources having the null attribute"): a
    normal halt whose output register is marked priv also yields a
    violation notice.  Note the notice *differs* from the priv-halt
    notice — distinguishable notices are themselves a leak (Example 4),
    which the soundness checker duly reports.
    """
    priv_set = set(priv_registers)

    def q_semantics(*inputs):
        # Q ignores marks: run with everything null and halt-at-first-halt.
        plain = DataMarkMachine(machine.instructions, machine.register_count,
                                machine.output_register,
                                halt_mode=machine.halt_mode,
                                name=machine.name)
        registers = [0] * machine.register_count
        for offset, value in enumerate(inputs, 1):
            registers[offset] = value
        result = plain.run(registers, [NULL] * machine.register_count,
                           fuel=fuel)
        return result.outcome

    def mechanism_fn(*inputs):
        registers = [0] * machine.register_count
        for offset, value in enumerate(inputs, 1):
            registers[offset] = value
        marks = [PRIV if index in priv_set else NULL
                 for index in range(machine.register_count)]
        result = machine.run(registers, marks, fuel=fuel)
        if (check_output_mark and not result.violated
                and result.marks[machine.output_register] == PRIV):
            return ViolationNotice("error: output register is priv")
        return result.outcome

    program = Program(q_semantics, domain, name=f"Q[{machine.name}]")
    return ProtectionMechanism(mechanism_fn, program,
                               name=f"M-fenton[{machine.name}]")
