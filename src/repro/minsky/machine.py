"""A Minsky register machine (Example 1's model of computation).

    *The value Q(d1, ..., dk) is the value obtained by the computation
    of some given Minsky-machine that was started with its i-th register
    containing di.*

The classic two-instruction machine over unbounded non-negative
registers:

- ``Inc(r, next)`` — increment register ``r``, go to ``next``;
- ``DecJz(r, next, zero)`` — if register ``r`` is zero go to ``zero``,
  otherwise decrement it and go to ``next``;
- ``Halt()`` — stop; the output is register 0 by convention (overridable).

Programs are tuples of instructions addressed by index.  The interpreter
counts executed instructions, so Minsky programs obey the same
observability discipline as flowcharts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.domains import ProductDomain
from ..core.errors import ExecutionError, FuelExhaustedError
from ..core.observability import VALUE_ONLY, Observation, OutputModel
from ..core.program import Program

DEFAULT_FUEL = 100_000


class Instruction:
    """Base class for Minsky-machine instructions."""


class Inc(Instruction):
    """Increment register ``register`` then jump to ``next``."""

    __slots__ = ("register", "next")

    def __init__(self, register: int, next: int) -> None:
        self.register = register
        self.next = next

    def __repr__(self) -> str:
        return f"Inc(r{self.register} -> {self.next})"


class DecJz(Instruction):
    """If ``register`` is zero jump to ``zero``; else decrement, go ``next``."""

    __slots__ = ("register", "next", "zero")

    def __init__(self, register: int, next: int, zero: int) -> None:
        self.register = register
        self.next = next
        self.zero = zero

    def __repr__(self) -> str:
        return f"DecJz(r{self.register} -> {self.next} / z:{self.zero})"


class Halt(Instruction):
    """Stop the machine."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Halt()"


class MinskyMachine:
    """A validated Minsky-machine program."""

    def __init__(self, instructions: Sequence[Instruction],
                 register_count: int, output_register: int = 0,
                 name: str = "minsky") -> None:
        self.instructions: Tuple[Instruction, ...] = tuple(instructions)
        self.register_count = register_count
        self.output_register = output_register
        self.name = name
        self._validate()

    def _validate(self) -> None:
        if not self.instructions:
            raise ExecutionError(f"machine {self.name!r} has no instructions")
        if not (0 <= self.output_register < self.register_count):
            raise ExecutionError(
                f"output register {self.output_register} out of range")
        size = len(self.instructions)
        for address, instruction in enumerate(self.instructions):
            if isinstance(instruction, Inc):
                targets = (instruction.next,)
                registers = (instruction.register,)
            elif isinstance(instruction, DecJz):
                targets = (instruction.next, instruction.zero)
                registers = (instruction.register,)
            elif isinstance(instruction, Halt):
                targets = ()
                registers = ()
            else:
                raise ExecutionError(
                    f"unknown instruction {instruction!r} at {address}")
            for target in targets:
                if not (0 <= target < size):
                    raise ExecutionError(
                        f"instruction {address} jumps to bad address {target}")
            for register in registers:
                if not (0 <= register < self.register_count):
                    raise ExecutionError(
                        f"instruction {address} uses bad register {register}")

    def run(self, registers: Sequence[int],
            fuel: int = DEFAULT_FUEL) -> "MinskyResult":
        """Execute from address 0 with the given initial registers."""
        if len(registers) != self.register_count:
            raise ExecutionError(
                f"machine {self.name!r} has {self.register_count} registers, "
                f"got {len(registers)} initial values")
        state: List[int] = [max(0, int(value)) for value in registers]
        pc = 0
        steps = 0
        while True:
            if steps >= fuel:
                raise FuelExhaustedError(
                    fuel, f"machine {self.name!r} exceeded {fuel} steps")
            instruction = self.instructions[pc]
            steps += 1
            if isinstance(instruction, Halt):
                return MinskyResult(state[self.output_register], steps,
                                    tuple(state))
            if isinstance(instruction, Inc):
                state[instruction.register] += 1
                pc = instruction.next
            else:
                assert isinstance(instruction, DecJz)
                if state[instruction.register] == 0:
                    pc = instruction.zero
                else:
                    state[instruction.register] -= 1
                    pc = instruction.next

    def __repr__(self) -> str:
        return (f"MinskyMachine({self.name}: {len(self.instructions)} "
                f"instructions, {self.register_count} registers)")


class MinskyResult:
    """One run: output-register value, step count, final registers."""

    __slots__ = ("value", "steps", "registers")

    def __init__(self, value: int, steps: int,
                 registers: Tuple[int, ...]) -> None:
        self.value = value
        self.steps = steps
        self.registers = registers

    def observation(self) -> Observation:
        return Observation(self.value, self.steps)

    def __repr__(self) -> str:
        return f"MinskyResult(value={self.value}, steps={self.steps})"


def as_program(machine: MinskyMachine, domain: ProductDomain,
               input_registers: Optional[Sequence[int]] = None,
               output_model: OutputModel = VALUE_ONLY,
               fuel: int = DEFAULT_FUEL,
               name: Optional[str] = None) -> Program:
    """Wrap a Minsky machine as a Section 2 Program.

    ``input_registers`` names which registers receive the program
    inputs (default: registers 0..k-1); all other registers start 0.
    """
    positions = (tuple(input_registers) if input_registers is not None
                 else tuple(range(domain.arity)))
    if len(positions) != domain.arity:
        raise ExecutionError(
            f"{len(positions)} input registers for arity {domain.arity}")

    def run(*inputs):
        registers = [0] * machine.register_count
        for register, value in zip(positions, inputs):
            registers[register] = value
        result = machine.run(registers, fuel=fuel)
        return output_model.project(result.observation())

    return Program(run, domain, name=name or machine.name)
