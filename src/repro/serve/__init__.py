"""`repro serve`: the multi-tenant enforcement service.

Jones & Lipton model an enforcement mechanism as surveillance attached
to a *run*; this package turns the repo's mechanisms into a long-lived
served workload (ROADMAP item 1): an asyncio HTTP/JSON front end over
the execution tiers, the parallel sweep runner, the linter, and the
provenance explainer, with per-tenant fuel/value-cap/QPS budgets and a
result cache shared across tenants.

Layering
--------
- :mod:`.schema`   — request validation (structured 4xx, never a 500)
- :mod:`.tenants`  — tenant budgets, QPS token buckets
- :mod:`.cache`    — fingerprinted flowchart + response caches
- :mod:`.batcher`  — coalesces concurrent /execute into batch grids
- :mod:`.server`   — the asyncio HTTP server and endpoint handlers

Configuration discipline: the *CLI layer* reads the environment once
at startup (``REPRO_BACKEND``, ``REPRO_BATCH_LANES``,
``REPRO_VALUE_CAP``, ``REPRO_EXEC_CACHE``); everything below receives
budgets and backends as explicit parameters.  See docs/SERVING.md.
"""

from .schema import RequestError
from .server import ReproServer, ServerConfig, serve_in_thread
from .tenants import TenantBudget, TenantRegistry

__all__ = [
    "ReproServer", "RequestError", "ServerConfig", "TenantBudget",
    "TenantRegistry", "serve_in_thread",
]
