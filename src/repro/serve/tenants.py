"""Tenant budgets: fuel/value-cap ceilings and QPS admission.

A tenant is a named principal sharing the server process (the
multi-principal setting of Almeida Matos & Cederquist, PAPERS.md).
Each carries *ceilings* — the largest fuel and value-cap budgets its
requests may use — plus an optional QPS limit enforced by a token
bucket.  A request may tighten its own budgets below the ceiling but
never loosen past it: enforcement budgets are a security policy, not a
preference.

Isolation invariant (the env-leak regression test): budgets flow from
here into mechanisms as *explicit parameters*.  Nothing below the
serve layer reads ``os.environ``, so one tenant's budgets can never
become another's.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Optional

from .schema import RequestError

__all__ = ["TenantBudget", "TenantRegistry", "TokenBucket"]


class TenantBudget:
    """Per-tenant ceilings.  ``None`` means "server default applies"."""

    __slots__ = ("name", "fuel", "value_cap", "qps", "burst", "backend",
                 "lane_engine", "audit", "audit_sample")

    def __init__(self, name: str, fuel: Optional[int] = None,
                 value_cap: Optional[int] = None,
                 qps: Optional[float] = None,
                 burst: Optional[int] = None,
                 backend: Optional[str] = None,
                 lane_engine: Optional[str] = None,
                 audit: Optional[bool] = None,
                 audit_sample: Optional[float] = None) -> None:
        self.name = name
        self.fuel = fuel
        self.value_cap = value_cap
        self.qps = qps
        self.burst = burst
        self.backend = backend
        self.lane_engine = lane_engine
        # Audit opt-in: None inherits the server's setting; False
        # excludes this tenant from the ledger entirely; True opts in
        # even when other tenants are excluded.  ``audit_sample``
        # (0..1) thins this tenant's records below the server rate.
        self.audit = audit
        self.audit_sample = audit_sample

    @classmethod
    def from_dict(cls, name: str, spec: Dict) -> "TenantBudget":
        known = {"fuel", "value_cap", "qps", "burst", "backend",
                 "lane_engine", "audit", "audit_sample"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"tenant {name!r}: unknown budget key(s) "
                f"{sorted(unknown)}; known: {sorted(known)}")
        for key in ("fuel", "value_cap", "burst"):
            value = spec.get(key)
            if value is not None and (isinstance(value, bool)
                                      or not isinstance(value, int)
                                      or value <= 0):
                raise ValueError(
                    f"tenant {name!r}: {key!r} must be a positive integer")
        qps = spec.get("qps")
        if qps is not None and (isinstance(qps, bool)
                                or not isinstance(qps, (int, float))
                                or qps <= 0):
            raise ValueError(f"tenant {name!r}: 'qps' must be positive")
        audit = spec.get("audit")
        if audit is not None and not isinstance(audit, bool):
            raise ValueError(f"tenant {name!r}: 'audit' must be a boolean")
        audit_sample = spec.get("audit_sample")
        if audit_sample is not None and (
                isinstance(audit_sample, bool)
                or not isinstance(audit_sample, (int, float))
                or not 0.0 <= audit_sample <= 1.0):
            raise ValueError(
                f"tenant {name!r}: 'audit_sample' must be in [0, 1]")
        return cls(name, fuel=spec.get("fuel"),
                   value_cap=spec.get("value_cap"), qps=qps,
                   burst=spec.get("burst"), backend=spec.get("backend"),
                   lane_engine=spec.get("lane_engine"), audit=audit,
                   audit_sample=audit_sample)

    def to_dict(self) -> Dict:
        return {key: getattr(self, key)
                for key in ("fuel", "value_cap", "qps", "burst", "backend",
                            "lane_engine", "audit", "audit_sample")
                if getattr(self, key) is not None}


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second, ``burst`` deep.

    ``now`` is injectable so tests drive time deterministically.
    """

    def __init__(self, rate: float, burst: int, now=time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self._tokens = float(self.burst)
        self._now = now
        self._stamp = now()
        self._lock = threading.Lock()

    def admit(self) -> bool:
        with self._lock:
            now = self._now()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class TenantRegistry:
    """Known tenants and their admission state.

    Unknown tenants are rejected (403) unless the registry was built
    with ``open_admission`` — the default for a server started without
    a tenants file, where every caller shares the ``default`` budget.
    """

    def __init__(self, default: Optional[TenantBudget] = None,
                 tenants: Optional[Dict[str, TenantBudget]] = None,
                 open_admission: bool = True,
                 now=time.monotonic) -> None:
        self.default = default or TenantBudget("default")
        self.tenants = dict(tenants or {})
        self.open_admission = open_admission
        self._now = now
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_dict(cls, spec: Dict, now=time.monotonic) -> "TenantRegistry":
        if not isinstance(spec, dict):
            raise ValueError("tenants config must be a JSON object")
        default = TenantBudget.from_dict("default",
                                         spec.get("default", {}))
        tenants = {
            name: TenantBudget.from_dict(name, budget)
            for name, budget in spec.get("tenants", {}).items()}
        # A config that names tenants is a closed world unless it says
        # otherwise; a config with only a default admits anyone.
        open_admission = bool(spec.get("open_admission", not tenants))
        return cls(default=default, tenants=tenants,
                   open_admission=open_admission, now=now)

    @classmethod
    def from_file(cls, path: str) -> "TenantRegistry":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def budget_for(self, tenant: str) -> TenantBudget:
        """The tenant's budget, or a structured 403 for strangers."""
        budget = self.tenants.get(tenant)
        if budget is not None:
            return budget
        if tenant == "default" or self.open_admission:
            return self.default
        raise RequestError(403, "unknown_tenant",
                           f"unknown tenant {tenant!r}")

    def admit(self, tenant: str) -> TenantBudget:
        """Budget lookup + QPS admission (429 when the bucket is dry)."""
        budget = self.budget_for(tenant)
        if budget.qps is not None:
            with self._lock:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    burst = budget.burst or max(1, int(budget.qps))
                    bucket = TokenBucket(budget.qps, burst, now=self._now)
                    self._buckets[tenant] = bucket
            if not bucket.admit():
                raise RequestError(
                    429, "qps_exceeded",
                    f"tenant {tenant!r} exceeded {budget.qps} requests/s")
        return budget

    def effective_fuel(self, budget: TenantBudget,
                       requested: Optional[int], default: int) -> int:
        """The run's fuel: request <= tenant ceiling <= server default."""
        ceiling = budget.fuel if budget.fuel is not None else default
        if requested is None:
            return ceiling
        if requested > ceiling:
            raise RequestError(
                403, "budget_exceeded",
                f"tenant {budget.name!r} fuel ceiling is {ceiling}; "
                f"requested {requested}")
        return requested

    def effective_value_cap(self, budget: TenantBudget,
                            requested: Optional[int],
                            default: Optional[int]) -> Optional[int]:
        """The run's value cap — tighter of request and ceiling.

        ``None`` (uncapped) is the loosest cap, so a tenant with a cap
        ceiling can never run uncapped, and a request may only lower
        the bit budget further.
        """
        ceiling = budget.value_cap if budget.value_cap is not None else default
        if requested is None:
            return ceiling
        if ceiling is not None and requested > ceiling:
            raise RequestError(
                403, "budget_exceeded",
                f"tenant {budget.name!r} value-cap ceiling is {ceiling} "
                f"bits; requested {requested}")
        return requested
