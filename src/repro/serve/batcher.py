"""Coalesce concurrent /execute requests into batch-tier grids.

Requests arriving within one flush window that target the same
``(flowchart, fuel, value_cap, lane_engine)`` become lanes of a single
:func:`~repro.flowchart.batchpath.execute_batch` call — the Gen-2
vectorized engine amortizes compilation and the block-dispatch loop
across the whole set, which is what lets the server sustain hundreds
of requests per second without hundreds of scalar executions.

Fidelity: lane ``i``'s decoded outcome is bit-identical to a scalar
``run_flowchart`` of the same point under the same budgets (PR6's
differential suite pins this per engine), including the distinguished
``Λ!fuel[N]``/``Λ!cap[C]`` notices.  If a whole batch fails for any
undeclared reason, every lane is retried individually so one poisoned
request cannot fail its neighbours.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from ..flowchart.batchpath import K_CAP, K_FUEL, execute_batch
from ..flowchart.program import Flowchart
from ..obs import runtime as _obs
from ..robustness.faults import cap_notice, fuel_notice

__all__ = ["ExecuteBatcher", "execute_point_outcome"]


def execute_point_outcome(flowchart: Flowchart, point: Tuple[int, ...],
                          fuel: int, value_cap: Optional[int],
                          backend: str) -> Dict:
    """One scalar execution, declared faults totalized into notices.

    The non-coalesced path (explicit ``backend`` other than batch) and
    the batcher's per-lane fallback both land here, so every /execute
    response is produced by the same decoding.
    """
    from ..core.errors import FuelExhaustedError, ValueCapExceededError
    from ..flowchart.fastpath import run_flowchart

    try:
        result = run_flowchart(flowchart, point, fuel=fuel,
                               backend=backend, value_cap=value_cap)
    except FuelExhaustedError:
        return {"value": None, "steps": None,
                "notice": str(fuel_notice(fuel))}
    except ValueCapExceededError as error:
        return {"value": None, "steps": None,
                "notice": str(cap_notice(error.cap))}
    return {"value": result.value, "steps": result.steps, "notice": None}


class _PendingBatch:
    __slots__ = ("flowchart", "fuel", "value_cap", "lane_engine", "points",
                 "futures", "request_spans")

    def __init__(self, flowchart: Flowchart, fuel: int,
                 value_cap: Optional[int],
                 lane_engine: Optional[str]) -> None:
        self.flowchart = flowchart
        self.fuel = fuel
        self.value_cap = value_cap
        self.lane_engine = lane_engine
        self.points: List[Tuple[int, ...]] = []
        self.futures: List[asyncio.Future] = []
        self.request_spans: List[str] = []


class ExecuteBatcher:
    """The per-server coalescer.  All methods run on the event loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop, executor,
                 window_s: float = 0.002, max_lanes: int = 512,
                 root_span: Optional[str] = None) -> None:
        self._loop = loop
        self._executor = executor
        self.window_s = window_s
        self.max_lanes = max_lanes
        self.root_span = root_span
        self._pending: Dict[Tuple, _PendingBatch] = {}
        self.batches_flushed = 0
        self.lanes_executed = 0

    async def submit(self, key: Tuple, flowchart: Flowchart,
                     point: Tuple[int, ...], fuel: int,
                     value_cap: Optional[int],
                     lane_engine: Optional[str],
                     request_span: Optional[str] = None) -> Dict:
        """Queue one point; resolves with its decoded outcome dict."""
        batch = self._pending.get(key)
        if batch is None:
            batch = _PendingBatch(flowchart, fuel, value_cap, lane_engine)
            self._pending[key] = batch
            self._loop.call_later(self.window_s, self._flush, key)
        future: asyncio.Future = self._loop.create_future()
        batch.points.append(point)
        batch.futures.append(future)
        if request_span is not None:
            batch.request_spans.append(request_span)
        if len(batch.points) >= self.max_lanes:
            self._flush(key)
        return await future

    def _flush(self, key: Tuple) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:  # already flushed by the max_lanes trigger
            return
        self.batches_flushed += 1
        self.lanes_executed += len(batch.points)
        task = self._loop.run_in_executor(self._executor,
                                          self._run_batch, batch)
        task.add_done_callback(
            lambda done, batch=batch: self._deliver(batch, done))

    def _run_batch(self, batch: _PendingBatch) -> List[Dict]:
        """Worker-thread body: one grid execution, decoded per lane."""
        span = _obs.span_begin(
            "batch", parent=self.root_span,
            program=batch.flowchart.name, lanes=len(batch.points),
            requests=list(batch.request_spans))
        try:
            rows = execute_batch(batch.flowchart, batch.points,
                                 fuel=batch.fuel, value_cap=batch.value_cap,
                                 engine=batch.lane_engine)
            fuel_out = str(fuel_notice(batch.fuel))
            cap_out = (str(cap_notice(rows.cap))
                       if rows.cap is not None else None)
            outcomes: List[Dict] = []
            for i in range(len(batch.points)):
                kind = rows.kind(i)
                if kind == K_FUEL:
                    outcomes.append({"value": None, "steps": None,
                                     "notice": fuel_out})
                elif kind == K_CAP:
                    outcomes.append({"value": None, "steps": None,
                                     "notice": cap_out})
                else:
                    outcomes.append({"value": rows.value(i),
                                     "steps": rows.steps(i),
                                     "notice": None})
            return outcomes
        except Exception:
            # Whole-batch failure: isolate lanes so one bad request
            # cannot take down its coalesced neighbours.  Scalar
            # fallback runs on the compiled tier — the same engine the
            # batch tier itself retires hazardous lanes to.
            outcomes = []
            for point in batch.points:
                try:
                    outcomes.append(execute_point_outcome(
                        batch.flowchart, point, batch.fuel,
                        batch.value_cap, "compiled"))
                except Exception as error:  # undeclared fault
                    outcomes.append({"__error__": error})
            return outcomes
        finally:
            _obs.span_finish(span)

    def _deliver(self, batch: _PendingBatch, done) -> None:
        error = done.exception()
        for index, future in enumerate(batch.futures):
            if future.cancelled():
                continue
            if error is not None:
                future.set_exception(error)
            else:
                outcome = done.result()[index]
                lane_error = (outcome.get("__error__")
                              if isinstance(outcome, dict) else None)
                if lane_error is not None:
                    future.set_exception(lane_error)
                else:
                    future.set_result(outcome)
