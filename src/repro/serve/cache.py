"""Fingerprinted caches shared across tenants.

Sharing is safe *because of* the key discipline: every response cache
key embeds the full budget tuple ``(flowchart, policy, fuel, cap,
backend)``, so two tenants share an entry only when their requests are
observationally identical — same program, same budgets, same tier.  A
tenant can never be served a result computed under someone else's
budget (which would leak that budget's fault behaviour).

Three layers:

- flowchart cache: source fingerprint → compiled :class:`Flowchart`,
  so repeated submissions of the same source reuse the per-flowchart
  compile caches in ``fastpath``/``batchpath`` (which are keyed by
  object identity and die with the graph);
- response cache: an :class:`~repro.flowchart.fastpath._LRUMemo` over
  rendered JSON-ready payloads;
- in-flight map: coalesces concurrent identical sweeps onto one
  computation (the server awaits the same future).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from ..flowchart.fastpath import _LRUMemo
from ..flowchart.program import Flowchart

__all__ = ["ServeCache", "flowchart_fingerprint"]

#: Compiled flowcharts kept per distinct submitted source.
_FLOWCHART_CACHE_SIZE = 256


def flowchart_fingerprint(flowchart: Flowchart) -> str:
    """A stable content fingerprint for cache keys.

    Library programs are canonical singletons per name; ad-hoc sources
    hash their structural rendering, so semantically identical
    resubmissions (same boxes, same wiring) key the same entry even
    when whitespace differs.
    """
    rendering = flowchart.pretty()
    digest = hashlib.sha256(rendering.encode("utf-8")).hexdigest()[:16]
    return f"{flowchart.name}:{digest}"


class ServeCache:
    """The server's shared cache plane; every method is thread-safe."""

    def __init__(self, response_size: int = 4096) -> None:
        self.responses = _LRUMemo(response_size)
        self._flowcharts = _LRUMemo(_FLOWCHART_CACHE_SIZE)

    # -- flowchart interning ------------------------------------------------

    def intern_flowchart(self, flowchart: Flowchart) -> Tuple[Flowchart, str]:
        """Map a parsed flowchart onto its cached twin (and fingerprint).

        Request parsing builds a fresh :class:`Flowchart` per POST;
        interning returns the first instance seen for that fingerprint
        so the identity-keyed compile/memo caches underneath stay warm
        across requests and tenants.

        The fingerprint memo lives on the instance itself (never keyed
        by ``id()``, whose values are recycled after GC), so it can
        never pair a freed flowchart's fingerprint with a new one.
        """
        fingerprint = getattr(flowchart, "_serve_fingerprint", None)
        if fingerprint is None:
            fingerprint = flowchart_fingerprint(flowchart)
            flowchart._serve_fingerprint = fingerprint
        interned = self._flowcharts.get(fingerprint)
        if interned is None:
            self._flowcharts.put(fingerprint, flowchart)
            interned = flowchart
        return interned, fingerprint

    # -- response cache -----------------------------------------------------

    def get_response(self, key: Tuple) -> Optional[Dict]:
        return self.responses.get(key)

    def put_response(self, key: Tuple, payload: Dict) -> None:
        self.responses.put(key, payload)

    def stats(self) -> Dict[str, int]:
        stats = {f"responses_{k}": v for k, v in self.responses.stats().items()}
        stats.update({f"flowcharts_{k}": v
                      for k, v in self._flowcharts.stats().items()})
        return stats
