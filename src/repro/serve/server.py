"""The asyncio HTTP/JSON enforcement service behind ``repro serve``.

One process, many tenants: the server fronts the execution tiers, the
parallel sweep runner, the flowlint passes, and the provenance
explainer over a deliberately small HTTP/1.1 surface (stdlib asyncio
streams — no new dependencies):

========  =========  ====================================================
method    path       what
========  =========  ====================================================
GET       /healthz   liveness probe (503 once graceful drain begins)
GET       /metrics   Prometheus text exposition of the obs registry
POST      /execute   one point execution (``repro run``)
POST      /sweep     a soundness sweep (``repro sweep --results-json``)
POST      /lint      static analysis (``repro lint --json``)
POST      /explain   violation provenance (``repro explain --json``)
========  =========  ====================================================

Responses are bit-identical to their CLI twins: same values, same step
counts, same ``Λ!fuel[N]``/``Λ!cap[C]`` notice strings, same sweep
rows, same lint/explain dictionaries.  The serve test suite pins this
against golden CLI output.

Startup is where the environment dies: the four env caches are reset
and read exactly once into :class:`ServerConfig` effective defaults;
from there on, every budget and backend travels as an explicit
parameter.  Handlers never touch ``os.environ`` — that is the whole
point of the PR8 bugfixes this service sits on.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from ..core.errors import ReproError
from ..flowchart.batchpath import (default_lane_engine,
                                   reset_lane_engine_cache)
from ..flowchart.fastpath import (default_backend, export_memo_stats,
                                  reset_backend_cache, reset_exec_cache,
                                  resolve_backend)
from ..flowchart.interpreter import DEFAULT_FUEL
from ..obs import runtime as _obs
from ..obs.audit import (AuditLedger, SpikeTracker, budget_fingerprint,
                         classify_notice, decision_payload, sampled_in)
from ..robustness.faults import default_value_cap, reset_value_cap_cache
from .batcher import ExecuteBatcher, execute_point_outcome
from .cache import ServeCache
from .schema import (RequestError, parse_execute, parse_explain, parse_lint,
                     parse_sweep)
from .tenants import TenantRegistry

__all__ = ["ReproServer", "ServerConfig", "serve_in_thread"]

#: The served paths — also the closed label set for per-endpoint
#: latency series (anything else is labeled ``other``).
_ENDPOINTS = ("/healthz", "/metrics", "/execute", "/sweep", "/lint",
              "/explain")

#: Write staged audit decisions to the ledger this often, from a pool
#: thread (never on the request path); an unclean exit loses at most
#: this window, and the trailing seal it leaves behind is exactly
#: what ``repro audit verify`` reports.
_AUDIT_DRAIN_INTERVAL_S = 1.0

_JSON = "application/json; charset=utf-8"
_PROM = "text/plain; version=0.0.4; charset=utf-8"
_REASONS = {200: "OK", 400: "Bad Request", 403: "Forbidden",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


class ServerConfig:
    """Everything the server reads exactly once, before serving.

    ``backend`` defaults to the *batch* tier: coalescing concurrent
    /execute requests into grid evaluations is the service's reason to
    exist, and the differential suite guarantees batch lanes are
    bit-identical to scalar runs.  Pass ``backend="compiled"`` (or any
    other tier) to opt out.  ``value_cap``/``lane_engine`` left unset
    inherit the environment defaults — read once at startup through
    the PR8 reset functions, never again.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 tenants: Optional[TenantRegistry] = None,
                 fuel: int = DEFAULT_FUEL,
                 value_cap: Optional[int] = None,
                 backend: str = "batch",
                 lane_engine: Optional[str] = None,
                 executor: str = "thread",
                 jobs: Optional[int] = None,
                 batch_window_ms: float = 2.0,
                 batch_max_lanes: int = 512,
                 cache_size: int = 4096,
                 workers: int = 8,
                 max_body: int = 1 << 20,
                 audit_path: Optional[str] = None,
                 audit_sample: float = 1.0,
                 audit_max_bytes: Optional[int] = None,
                 audit_keep: int = 3,
                 audit_durable: bool = True,
                 drain_grace_s: float = 0.0,
                 drain_deadline_s: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.tenants = tenants or TenantRegistry()
        self.fuel = fuel
        self.value_cap = value_cap
        self.backend = backend
        self.lane_engine = lane_engine
        self.executor = executor
        self.jobs = jobs
        self.batch_window_ms = batch_window_ms
        self.batch_max_lanes = batch_max_lanes
        self.cache_size = cache_size
        self.workers = workers
        self.max_body = max_body
        # Audit plane: a hash-chained decision ledger (off when no
        # path).  ``audit_sample`` is the server-wide record rate;
        # tenants can thin (``audit_sample``) or opt out (``audit``)
        # per budget.  ``audit_max_bytes`` rotates generations.
        self.audit_path = audit_path
        self.audit_sample = audit_sample
        self.audit_max_bytes = audit_max_bytes
        self.audit_keep = audit_keep
        self.audit_durable = audit_durable
        # Graceful drain: once stop is requested /healthz answers 503
        # so load balancers stop routing here; ``drain_grace_s`` keeps
        # the listener open that long for probes to notice, and
        # ``drain_deadline_s`` bounds how long in-flight requests get
        # to finish before teardown proceeds anyway.
        self.drain_grace_s = drain_grace_s
        self.drain_deadline_s = drain_deadline_s


class _ThreadSpanParent:
    """Parent the current worker thread's spans under ``span_id``.

    The sweep runner opens its own span tree on whatever thread runs
    it; pushing the request span onto that thread's stack makes the
    sweep a child of the request, keeping each request single-rooted
    under the server's ``serve`` span (the soak test asserts this).
    """

    def __init__(self, span_id: Optional[str]) -> None:
        self._span_id = span_id

    def __enter__(self) -> "_ThreadSpanParent":
        if self._span_id is not None:
            _obs._stack().append(self._span_id)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._span_id is not None:
            stack = _obs._stack()
            if stack and stack[-1] == self._span_id:
                stack.pop()


class ReproServer:
    """The serving loop.  Create, ``await start()``, ``await
    wait_stopped()``; call :meth:`request_stop` (thread-safe) to end."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.cache = ServeCache(config.cache_size)
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._batcher: Optional[ExecuteBatcher] = None
        self._stopped: Optional[asyncio.Event] = None
        self._draining = False
        self._inflight = 0
        self._inflight_sweeps: Dict[Tuple, asyncio.Future] = {}
        self._root_span = None
        self.audit: Optional[AuditLedger] = None
        self._budget_fps: Dict[Tuple, str] = {}
        self._audit_staged: list = []
        self._audit_staged_lock = threading.Lock()
        self._seal_task: Optional["asyncio.Task"] = None
        self._spikes = SpikeTracker()
        # Effective defaults, fixed at start(); placeholders until then.
        self.fuel = config.fuel
        self.default_value_cap = config.value_cap
        self.default_backend = config.backend
        self.lane_engine = config.lane_engine

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        # The one environment read of the server's lifetime: flush all
        # four env-derived caches, then capture their values as this
        # process's explicit defaults.
        reset_exec_cache()
        reset_value_cap_cache()
        reset_backend_cache()
        reset_lane_engine_cache()
        self.fuel = self.config.fuel
        self.default_backend = resolve_backend(self.config.backend)
        self.default_value_cap = (self.config.value_cap
                                  if self.config.value_cap is not None
                                  else default_value_cap())
        self.lane_engine = (self.config.lane_engine
                            or default_lane_engine())

        if self.config.audit_path is not None:
            # seal_every=0: requests stage decisions in memory and a
            # periodic pool-thread task drains them via append_batch,
            # which seals once per drain — neither the write nor the
            # sidecar seal's atomic replace (which can block for
            # milliseconds on filesystem journaling) ever runs on the
            # request path.  Shutdown drains and closes, re-sealing
            # exactly.
            self.audit = AuditLedger(
                self.config.audit_path, sample=self.config.audit_sample,
                max_bytes=self.config.audit_max_bytes,
                keep=self.config.audit_keep, seal_every=0,
                durable=self.config.audit_durable)

        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve")
        self._root_span = _obs.span_begin(
            "serve", host=self.config.host,
            backend=self.default_backend, fuel=self.fuel)
        self._batcher = ExecuteBatcher(
            self._loop, self._executor,
            window_s=self.config.batch_window_ms / 1000.0,
            max_lanes=self.config.batch_max_lanes,
            root_span=self._root_span.id if self._root_span else None)
        if self.audit is not None:
            self._seal_task = asyncio.ensure_future(
                self._drain_audit_periodically())
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        self.started_at = time.monotonic()

    def _drain_audit(self) -> None:
        """Chain and write the staged decisions, sealing once."""
        with self._audit_staged_lock:
            staged, self._audit_staged = self._audit_staged, []
        if staged:
            self.audit.append_batch(staged)

    async def _drain_audit_periodically(self) -> None:
        """Write staged decisions off the request path, forever."""
        while True:
            await asyncio.sleep(_AUDIT_DRAIN_INTERVAL_S)
            await self._loop.run_in_executor(self._executor,
                                             self._drain_audit)

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        """Thread-safe, idempotent shutdown request.

        Flips the drain flag immediately — the very next /healthz
        answers 503 even before the event loop processes the stop —
        so a probing load balancer never routes to a server that has
        decided to go away.
        """
        self._draining = True
        if self._loop is not None and self._stopped is not None:
            try:
                self._loop.call_soon_threadsafe(self._stopped.set)
            except RuntimeError:
                pass  # loop already closed: nothing left to stop

    async def wait_stopped(self) -> None:
        """Serve until :meth:`request_stop`, then tear down."""
        assert self._stopped is not None
        await self._stopped.wait()
        await self._shutdown()

    async def _shutdown(self) -> None:
        self._draining = True
        if self.config.drain_grace_s > 0:
            # Keep the listener open while probes observe the 503 —
            # in-flight and newly arriving requests complete normally
            # during the grace window; only /healthz changes answer.
            await asyncio.sleep(self.config.drain_grace_s)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_deadline_s
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if self._seal_task is not None:
            self._seal_task.cancel()
            try:
                await self._seal_task
            except asyncio.CancelledError:
                pass
            self._seal_task = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self.audit is not None:
            self._drain_audit()
            self.audit.close()
        _obs.span_finish(self._root_span)
        self._root_span = None

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except RequestError as error:
                    writer.write(self._render_response(
                        error.status, _JSON,
                        self._json_bytes(error.to_dict()), False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (headers.get("connection", "").lower()
                              != "close")
                status, content_type, payload = await self._dispatch(
                    method, path, body)
                writer.write(self._render_response(
                    status, content_type, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to clean up per-connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # shutdown races the close handshake; both fine

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            raise ConnectionError("malformed request line")
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            length = -1
        if length < 0:
            raise RequestError(
                400, "bad_request",
                f"Content-Length {raw_length!r} is not a "
                "non-negative integer")
        if length > self.config.max_body:
            # Answer 413 and drop the connection without draining.
            raise RequestError(
                413, "payload_too_large",
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body}-byte limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path.split("?", 1)[0], headers, body

    @staticmethod
    def _render_response(status: int, content_type: str, payload: bytes,
                         keep_alive: bool) -> bytes:
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: {connection}\r\n\r\n")
        return head.encode("latin-1") + payload

    @staticmethod
    def _json_bytes(payload: Dict) -> bytes:
        return json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")

    # -- dispatch -----------------------------------------------------------

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> Tuple[int, str, bytes]:
        started = time.perf_counter()
        self._inflight += 1
        registry = _obs.registry
        registry.counter("serve.requests").inc()
        span = _obs.span_begin(
            "request",
            parent=self._root_span.id if self._root_span else None,
            method=method, path=path)
        status = 500
        try:
            status, content_type, payload = await self._route(
                method, path, body, span)
            return status, content_type, payload
        except RequestError as error:
            status = error.status
            registry.counter("serve.errors").inc()
            registry.counter(f"serve.errors.{error.code}").inc()
            return status, _JSON, self._json_bytes(error.to_dict())
        except ReproError as error:
            # A domain error that slipped past request validation is
            # still the client's input, not a server fault.
            status = 400
            registry.counter("serve.errors").inc()
            return status, _JSON, self._json_bytes(
                {"error": {"code": "repro_error", "message": str(error)}})
        except Exception as error:  # the 500 of last resort
            registry.counter("serve.errors").inc()
            registry.counter("serve.errors.internal").inc()
            return 500, _JSON, self._json_bytes(
                {"error": {"code": "internal",
                           "message": f"{type(error).__name__}: {error}"}})
        finally:
            self._inflight -= 1
            elapsed = time.perf_counter() - started
            registry.histogram("serve.latency_s").observe(elapsed)
            # Per-endpoint latency rides a labeled series; unknown
            # paths collapse into one label so a probe scan cannot
            # mint unbounded metric cardinality.
            endpoint = path if path in _ENDPOINTS else "other"
            registry.histogram("serve.latency_s",
                               labels={"endpoint": endpoint}).observe(elapsed)
            _obs.span_finish(span, status=status)

    async def _route(self, method: str, path: str, body: bytes,
                     span) -> Tuple[int, str, bytes]:
        if path == "/healthz":
            if method != "GET":
                raise RequestError(405, "method_not_allowed",
                                   f"{path} is GET-only")
            status = 503 if self._draining else 200
            return status, _JSON, self._json_bytes(self._healthz())
        if path == "/metrics":
            if method != "GET":
                raise RequestError(405, "method_not_allowed",
                                   f"{path} is GET-only")
            return 200, _PROM, self._metrics_text().encode("utf-8")
        handlers = {"/execute": self._handle_execute,
                    "/sweep": self._handle_sweep,
                    "/lint": self._handle_lint,
                    "/explain": self._handle_explain}
        handler = handlers.get(path)
        if handler is None:
            raise RequestError(404, "not_found", f"unknown path {path!r}")
        if method != "POST":
            raise RequestError(405, "method_not_allowed",
                               f"{path} is POST-only")
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(400, "bad_json",
                               f"request body is not JSON: {error}")
        response = await handler(payload, span)
        return 200, _JSON, self._json_bytes(response)

    # -- GET endpoints ------------------------------------------------------

    def _healthz(self) -> Dict:
        uptime = (time.monotonic() - self.started_at
                  if self.started_at is not None else 0.0)
        return {"status": "draining" if self._draining else "ok",
                "uptime_s": round(uptime, 3),
                "backend": self.default_backend, "fuel": self.fuel,
                "value_cap": self.default_value_cap}

    def _metrics_text(self) -> str:
        registry = _obs.registry
        export_memo_stats()
        for name, value in self.cache.stats().items():
            registry.gauge(f"serve.cache.{name}").set(value)
        if self._batcher is not None:
            registry.gauge("serve.batches_flushed").set(
                self._batcher.batches_flushed)
            registry.gauge("serve.lanes_executed").set(
                self._batcher.lanes_executed)
        if self.audit is not None:
            registry.gauge("audit.records").set(
                self.audit.records + len(self._audit_staged))
        return registry.to_prometheus()

    # -- POST endpoints -----------------------------------------------------

    def _effective_budgets(self, tenant: str, fuel: Optional[int],
                           value_cap: Optional[int]):
        registry = self.config.tenants
        budget = registry.admit(tenant)
        return (budget,
                registry.effective_fuel(budget, fuel, self.fuel),
                registry.effective_value_cap(budget, value_cap,
                                             self.default_value_cap))

    def _record_decision(self, budget, tenant: str, endpoint: str, span,
                         notice: Optional[str], fuel: Optional[int] = None,
                         value_cap: Optional[int] = None,
                         backend: Optional[str] = None,
                         lane_engine: Optional[str] = None,
                         provenance: Optional[Dict] = None) -> None:
        """One enforcement decision: labeled metrics + audit ledger.

        The labeled counters always run (they are how ``/metrics``
        exposes per-tenant decision analytics); the ledger append runs
        only when the server has one and the tenant has not opted out.
        Cache hits record too — a served decision is a decision, no
        matter which layer produced it.
        """
        registry = _obs.registry
        decision = "notice" if notice is not None else "accept"
        registry.counter("serve.decisions",
                         labels={"tenant": tenant,
                                 "decision": decision}).inc()
        if notice is not None:
            registry.counter("serve.notices",
                             labels={"tenant": tenant,
                                     "kind": classify_notice(notice)}).inc()
        rate = self._spikes.update(tenant, notice is not None)
        if rate is not None:
            registry.counter("serve.rate_spikes",
                             labels={"tenant": tenant}).inc()
            _obs.emit("violation_rate_spike", tenant=tenant,
                      rate=round(rate, 6), window=self._spikes.window)
        if self.audit is None or budget.audit is False:
            return
        if provenance is not None:
            provenance = {key: value for key, value in provenance.items()
                          if value is not None} or None
        # The request path only *stages* the decision: building the
        # payload and growing a list costs single-digit microseconds,
        # while chaining, hashing, writing, and sealing cost tens to
        # (on a journaling filesystem) thousands — so those run on the
        # periodic drain task, off every request's critical path.
        # Shutdown drains before closing, so a clean stop loses
        # nothing; an unclean exit loses at most the drain interval,
        # which the trailing seal makes visible to ``verify``.
        payload = decision_payload(
            decision, notice=notice, tenant=tenant, endpoint=endpoint,
            span=span.id if span else None,
            budget=self._budget_fingerprint(fuel, value_cap, backend,
                                            lane_engine),
            provenance=provenance, ts=time.time())
        if not sampled_in(payload, self.audit.sample
                          if budget.audit_sample is None
                          else budget.audit_sample):
            return
        with self._audit_staged_lock:
            self._audit_staged.append(payload)

    def _budget_fingerprint(self, fuel, value_cap, backend,
                            lane_engine) -> str:
        """Memoized :func:`budget_fingerprint` — a server sees few
        distinct budgets, and the canonical-JSON + sha256 round is
        measurable on the request path.  Bounded against adversarial
        per-request fuel values."""
        key = (fuel, value_cap, backend, lane_engine)
        cached = self._budget_fps.get(key)
        if cached is None:
            if len(self._budget_fps) >= 4096:
                self._budget_fps.clear()
            cached = self._budget_fps[key] = budget_fingerprint(
                fuel=fuel, value_cap=value_cap, backend=backend,
                lane_engine=lane_engine)
        return cached

    async def _handle_execute(self, payload, span) -> Dict:
        request = parse_execute(payload)
        budget, fuel, value_cap = self._effective_budgets(
            request.tenant, request.fuel, request.value_cap)
        backend = resolve_backend(request.backend or budget.backend
                                  or self.default_backend)
        lane_engine = budget.lane_engine or self.lane_engine
        flowchart, fingerprint = self.cache.intern_flowchart(
            request.flowchart)
        tenant = (budget.name if request.tenant == "default"
                  else request.tenant)
        key = ("execute", fingerprint, request.inputs, fuel, value_cap,
               backend, lane_engine if backend == "batch" else None)
        # The shared key is budget-only, so the cached payload must be
        # tenant-free: the requester's tenant is stamped on after the
        # lookup, never stored where another tenant could read it.
        lane = lane_engine if backend == "batch" else None
        provenance = {"program": flowchart.name,
                      "point": list(request.inputs)}
        cached = self.cache.get_response(key)
        if cached is not None:
            _obs.registry.counter("serve.execute.cache_hits").inc()
            self._record_decision(budget, tenant, "/execute", span,
                                  cached["notice"], fuel=fuel,
                                  value_cap=value_cap, backend=backend,
                                  lane_engine=lane, provenance=provenance)
            return dict(cached, tenant=tenant)
        if backend == "batch":
            outcome = await self._batcher.submit(
                key[:2] + key[3:], flowchart, request.inputs, fuel,
                value_cap, lane_engine,
                request_span=span.id if span else None)
        else:
            outcome = await self._loop.run_in_executor(
                self._executor, execute_point_outcome, flowchart,
                request.inputs, fuel, value_cap, backend)
        response = {
            "program": flowchart.name,
            "inputs": list(request.inputs),
            "value": outcome["value"],
            "steps": outcome["steps"],
            "notice": outcome["notice"],
            "fuel": fuel,
            "value_cap": value_cap,
            "backend": backend,
        }
        self.cache.put_response(key, response)
        self._record_decision(budget, tenant, "/execute", span,
                              outcome["notice"], fuel=fuel,
                              value_cap=value_cap, backend=backend,
                              lane_engine=lane, provenance=provenance)
        return dict(response, tenant=tenant)

    async def _handle_sweep(self, payload, span) -> Dict:
        request = parse_sweep(payload)
        budget, fuel, value_cap = self._effective_budgets(
            request.tenant, request.fuel, request.value_cap)
        backend = resolve_backend(request.backend or budget.backend
                                  or self.default_backend)
        lane_engine = request.lane_engine or budget.lane_engine \
            or self.lane_engine
        key = request.cache_key(fuel, value_cap, backend, lane_engine)
        tenant = (budget.name if request.tenant == "default"
                  else request.tenant)

        def record(response: Dict) -> Dict:
            # A sweep request's decision is its verdict: any unsound
            # pair is a notice for the requester, and the provenance
            # pointer names the (programs, mechanism) to re-explain.
            notice = "Λ" if response.get("unsound") else None
            self._record_decision(
                budget, tenant, "/sweep", span, notice, fuel=fuel,
                value_cap=value_cap, backend=backend,
                lane_engine=lane_engine,
                provenance={"programs": list(request.programs),
                            "policy": request.mechanism})
            return response

        cached = self.cache.get_response(key)
        if cached is not None:
            _obs.registry.counter("serve.sweep.cache_hits").inc()
            return record(cached)
        # Concurrent identical sweeps coalesce onto one computation:
        # rows are schedule-independent, so every waiter can share it.
        inflight = self._inflight_sweeps.get(key)
        if inflight is not None:
            return record(await asyncio.shield(inflight))
        future = self._loop.create_future()
        self._inflight_sweeps[key] = future
        try:
            response = await self._loop.run_in_executor(
                self._executor, self._run_sweep, request, fuel,
                value_cap, backend, lane_engine,
                span.id if span else None)
            self.cache.put_response(key, response)
            future.set_result(response)
            return record(response)
        except BaseException as error:
            future.set_exception(error)
            # A shared failure is still consumed by any waiters above;
            # mark it retrieved so lone failures don't warn on GC.
            future.exception()
            raise
        finally:
            self._inflight_sweeps.pop(key, None)

    def _run_sweep(self, request, fuel: int, value_cap: Optional[int],
                   backend: str, lane_engine: Optional[str],
                   parent_span: Optional[str]) -> Dict:
        from ..cli import LIBRARY
        from ..core import ProductDomain
        from ..verify import parallel_soundness_sweep, unsound_results

        flowcharts = [LIBRARY[name]() for name in request.programs]
        executor = request.executor or self.config.executor
        with _ThreadSpanParent(parent_span):
            results = parallel_soundness_sweep(
                flowcharts, request.mechanism,
                grid=lambda arity: ProductDomain.integer_grid(
                    request.low, request.high, arity),
                fuel=fuel,
                executor=executor,
                max_workers=request.jobs or self.config.jobs,
                chunk_size=request.chunk_size,
                value_cap=value_cap,
                backend=backend,
                lane_engine=lane_engine)
        rows = [
            {
                "program": result.program_name,
                "policy": result.policy_name,
                "sound": result.sound,
                "accepts": result.accepts,
                "domain_size": result.domain_size,
                "backends": result.backends,
            }
            for result in results
        ]
        return {
            "rows": rows,
            "pairs": len(results),
            "unsound": len(unsound_results(results)),
            "mechanism": request.mechanism,
            "low": request.low,
            "high": request.high,
            "fuel": fuel,
            "value_cap": value_cap,
            "backend": backend,
        }

    async def _handle_lint(self, payload, span) -> Dict:
        request = parse_lint(payload)
        budget = self.config.tenants.admit(request.tenant)
        tenant = (budget.name if request.tenant == "default"
                  else request.tenant)
        flowchart, fingerprint = self.cache.intern_flowchart(
            request.flowchart)
        provenance = {"program": flowchart.name,
                      "policy": request.policy_text}

        def record(response: Dict) -> Dict:
            notice = "Λ" if response.get("errors") else None
            self._record_decision(budget, tenant, "/lint", span, notice,
                                  provenance=provenance)
            return response

        key = request.cache_key(fingerprint)
        cached = self.cache.get_response(key)
        if cached is not None:
            _obs.registry.counter("serve.lint.cache_hits").inc()
            return record(cached)
        response = await self._loop.run_in_executor(
            self._executor, self._run_lint, flowchart,
            request.policy_text, span.id if span else None)
        self.cache.put_response(key, response)
        return record(response)

    def _run_lint(self, flowchart, policy_text: Optional[str],
                  parent_span: Optional[str]) -> Dict:
        from ..analysis import PassManager
        from ..flowchart.parser import parse_policy

        policy = (parse_policy(policy_text, arity=flowchart.arity)
                  if policy_text is not None else None)
        with _ThreadSpanParent(parent_span):
            report = PassManager.with_default_passes().run(flowchart,
                                                           policy)
        exit_code = 1 if report.has_errors else 0
        # The exact shape of ``repro lint --json`` for one program.
        return {
            "programs": 1,
            "errors": len(report.errors),
            "exit_code": exit_code,
            "reports": [report.to_dict()],
        }

    async def _handle_explain(self, payload, span) -> Dict:
        request = parse_explain(payload)
        budget, fuel, _cap = self._effective_budgets(
            request.tenant, request.fuel, None)
        tenant = (budget.name if request.tenant == "default"
                  else request.tenant)
        flowchart, _fingerprint = self.cache.intern_flowchart(
            request.flowchart)
        response = await self._loop.run_in_executor(
            self._executor, self._run_explain, flowchart, request, fuel,
            span.id if span else None)
        self._record_decision(
            budget, tenant, "/explain", span,
            "Λ" if response.get("violated") else None, fuel=fuel,
            provenance={"program": flowchart.name,
                        "policy": request.policy.name,
                        "point": (list(request.inputs)
                                  if request.inputs is not None else None)})
        return response

    def _run_explain(self, flowchart, request, fuel: int,
                     parent_span: Optional[str]) -> Dict:
        from .. import obs

        with _ThreadSpanParent(parent_span):
            if request.static:
                explanation = obs.explain_static(flowchart,
                                                 request.policy)
            else:
                explanation = obs.explain(flowchart, request.policy,
                                          request.inputs,
                                          timed=request.timed, fuel=fuel)
        # ``repro explain --json`` prints exactly ``to_dict()``; keep it
        # verbatim under "explanation" with the exit signal alongside.
        return {"explanation": explanation.to_dict(),
                "violated": explanation.violated}


class ServerHandle:
    """A running server on a background thread (tests, benches, CI)."""

    def __init__(self, server: ReproServer, thread: threading.Thread,
                 port: int) -> None:
        self.server = server
        self.thread = thread
        self.port = port
        self.host = server.config.host

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        self.server.request_stop()
        self.thread.join(timeout)


def serve_in_thread(config: Optional[ServerConfig] = None,
                    timeout: float = 10.0) -> ServerHandle:
    """Start a server on a daemon thread; returns once it is bound."""
    config = config or ServerConfig()
    server = ReproServer(config)
    started = threading.Event()
    failure: list = []

    async def _main() -> None:
        try:
            await server.start()
        except Exception as error:  # surface bind errors to the caller
            failure.append(error)
            started.set()
            return
        started.set()
        await server.wait_stopped()

    def _run() -> None:
        asyncio.run(_main())

    thread = threading.Thread(target=_run, daemon=True,
                              name="repro-serve-loop")
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("server failed to start within "
                           f"{timeout}s")
    if failure:
        raise failure[0]
    return ServerHandle(server, thread, server.port)
