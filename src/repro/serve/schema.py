"""Request validation for the serve endpoints.

Every parser takes the decoded JSON payload and returns a typed
request object, or raises :class:`RequestError` carrying an HTTP
status, a stable machine-readable ``code``, and a human message.  A
malformed flowchart, an unknown policy, a negative fuel budget — all
of these are *client* errors and must surface as structured 4xx
responses, never as a 500 (the serve test suite enforces this over a
corpus of malformed payloads).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.errors import ReproError
from ..flowchart.fastpath import BACKEND_ALIASES, BACKENDS
from ..flowchart.interpreter import DEFAULT_FUEL
from ..flowchart.parser import parse_policy, parse_program
from ..flowchart.program import Flowchart

__all__ = [
    "ExecuteRequest", "ExplainRequest", "LintRequest", "RequestError",
    "SweepRequest", "parse_execute", "parse_explain", "parse_lint",
    "parse_sweep",
]

#: Upper bound on sweep grid extent per axis — a served ∀-sweep over an
#: unbounded grid is a denial-of-service vector, not a proof.
MAX_GRID_SPAN = 64

_MECHANISMS = ("program", "surveillance", "timed", "highwater")
_EXECUTORS = ("auto", "serial", "thread", "process")
_LANES = ("auto", "numpy", "python")


class RequestError(Exception):
    """A client error with an HTTP status and a stable error code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def to_dict(self) -> Dict:
        return {"error": {"code": self.code, "message": self.message}}


def _bad(code: str, message: str) -> RequestError:
    return RequestError(400, code, message)


def _library() -> Dict:
    from ..cli import LIBRARY  # late: cli imports serve lazily, not here
    return LIBRARY


def _require_object(payload) -> Dict:
    if not isinstance(payload, dict):
        raise _bad("bad_request",
                   f"request body must be a JSON object, "
                   f"got {type(payload).__name__}")
    return payload


def _parse_flowchart(payload: Dict) -> Flowchart:
    """``{"library": name}`` or ``{"source": text}`` — exactly one."""
    library_name = payload.get("library")
    source = payload.get("source")
    if (library_name is None) == (source is None):
        raise _bad("bad_program",
                   "provide exactly one of 'library' or 'source'")
    if library_name is not None:
        if not isinstance(library_name, str):
            raise _bad("bad_program", "'library' must be a string")
        try:
            return _library()[library_name]()
        except KeyError:
            known = ", ".join(sorted(_library()))
            raise _bad("unknown_program",
                       f"unknown library program {library_name!r}; "
                       f"known: {known}") from None
    if not isinstance(source, str):
        raise _bad("bad_program", "'source' must be a string")
    try:
        return parse_program(source).compile()
    except ReproError as error:
        raise _bad("bad_program", f"cannot parse program: {error}") from None


def _parse_policy(payload: Dict, arity: int, required: bool = True):
    text = payload.get("policy")
    if text is None:
        if required:
            raise _bad("bad_policy", "'policy' is required")
        return None
    if not isinstance(text, str):
        raise _bad("bad_policy", "'policy' must be a string")
    try:
        return parse_policy(text, arity=arity)
    except ReproError as error:
        raise _bad("bad_policy", f"cannot parse policy: {error}") from None


def _parse_int(payload: Dict, key: str, default: Optional[int] = None,
               minimum: Optional[int] = None,
               maximum: Optional[int] = None) -> Optional[int]:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(f"bad_{key}", f"'{key}' must be an integer")
    if minimum is not None and value < minimum:
        raise _bad(f"bad_{key}", f"'{key}' must be >= {minimum}; got {value}")
    if maximum is not None and value > maximum:
        raise _bad(f"bad_{key}", f"'{key}' must be <= {maximum}; got {value}")
    return value


def _parse_choice(payload: Dict, key: str, choices: Tuple[str, ...],
                  default: Optional[str] = None) -> Optional[str]:
    value = payload.get(key, default)
    if value is None:
        return None
    if not isinstance(value, str) or value not in choices:
        raise _bad(f"bad_{key}",
                   f"'{key}' must be one of {list(choices)}; got {value!r}")
    return value


def _parse_tenant(payload: Dict) -> str:
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise _bad("bad_tenant", "'tenant' must be a non-empty string")
    return tenant


def _parse_backend(payload: Dict) -> Optional[str]:
    backend = payload.get("backend")
    if backend is None:
        return None
    valid = tuple(BACKENDS) + tuple(BACKEND_ALIASES)
    if not isinstance(backend, str) or backend not in valid:
        raise _bad("bad_backend",
                   f"'backend' must be one of {sorted(valid)}; "
                   f"got {backend!r}")
    return BACKEND_ALIASES.get(backend, backend)


class ExecuteRequest:
    """One point execution: the served analogue of ``repro run``."""

    __slots__ = ("tenant", "flowchart", "inputs", "fuel", "value_cap",
                 "backend")

    def __init__(self, tenant: str, flowchart: Flowchart,
                 inputs: Tuple[int, ...], fuel: Optional[int],
                 value_cap: Optional[int],
                 backend: Optional[str]) -> None:
        self.tenant = tenant
        self.flowchart = flowchart
        self.inputs = inputs
        self.fuel = fuel
        self.value_cap = value_cap
        self.backend = backend


def parse_execute(payload) -> ExecuteRequest:
    payload = _require_object(payload)
    flowchart = _parse_flowchart(payload)
    raw_inputs = payload.get("inputs")
    if not isinstance(raw_inputs, list):
        raise _bad("bad_inputs", "'inputs' must be a list of integers")
    if any(isinstance(v, bool) or not isinstance(v, int)
           for v in raw_inputs):
        raise _bad("bad_inputs", "'inputs' must be a list of integers")
    if len(raw_inputs) != flowchart.arity:
        raise _bad("bad_inputs",
                   f"program {flowchart.name!r} takes {flowchart.arity} "
                   f"input(s); got {len(raw_inputs)}")
    return ExecuteRequest(
        tenant=_parse_tenant(payload),
        flowchart=flowchart,
        inputs=tuple(raw_inputs),
        fuel=_parse_int(payload, "fuel", minimum=1),
        value_cap=_parse_int(payload, "value_cap", minimum=1),
        backend=_parse_backend(payload),
    )


class SweepRequest:
    """A soundness sweep: the served analogue of ``repro sweep``."""

    __slots__ = ("tenant", "programs", "mechanism", "low", "high", "fuel",
                 "value_cap", "executor", "jobs", "chunk_size", "backend",
                 "lane_engine")

    def __init__(self, tenant: str, programs: List[str], mechanism: str,
                 low: int, high: int, fuel: Optional[int],
                 value_cap: Optional[int], executor: Optional[str],
                 jobs: Optional[int], chunk_size: Optional[int],
                 backend: Optional[str],
                 lane_engine: Optional[str]) -> None:
        self.tenant = tenant
        self.programs = programs
        self.mechanism = mechanism
        self.low = low
        self.high = high
        self.fuel = fuel
        self.value_cap = value_cap
        self.executor = executor
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.backend = backend
        self.lane_engine = lane_engine

    def cache_key(self, fuel: int, value_cap: Optional[int],
                  backend: str, lane_engine: Optional[str]) -> Tuple:
        """Identity of the *rows* — executor/jobs excluded, because the
        sweep's verdicts are schedule-independent (the PR3 invariant the
        differential suite pins)."""
        return ("sweep", tuple(self.programs), self.mechanism, self.low,
                self.high, fuel, value_cap, backend, lane_engine)


def parse_sweep(payload) -> SweepRequest:
    payload = _require_object(payload)
    raw_programs = payload.get("programs")
    if (not isinstance(raw_programs, list) or not raw_programs
            or any(not isinstance(name, str) for name in raw_programs)):
        raise _bad("bad_programs",
                   "'programs' must be a non-empty list of library names")
    library = _library()
    unknown = [name for name in raw_programs if name not in library]
    if unknown:
        raise _bad("unknown_program",
                   f"unknown library program(s): {', '.join(unknown)}")
    mechanism = _parse_choice(payload, "mechanism", _MECHANISMS,
                              default="surveillance")
    low = _parse_int(payload, "low", default=0)
    high = _parse_int(payload, "high", default=2)
    if high < low:
        raise _bad("bad_grid", f"'high' ({high}) must be >= 'low' ({low})")
    if high - low > MAX_GRID_SPAN:
        raise _bad("bad_grid",
                   f"grid span {high - low} exceeds the served maximum "
                   f"{MAX_GRID_SPAN}")
    backend = _parse_backend(payload)
    return SweepRequest(
        tenant=_parse_tenant(payload),
        programs=list(raw_programs),
        mechanism=mechanism,
        low=low,
        high=high,
        fuel=_parse_int(payload, "fuel", minimum=1),
        value_cap=_parse_int(payload, "value_cap", minimum=1),
        executor=_parse_choice(payload, "executor", _EXECUTORS),
        jobs=_parse_int(payload, "jobs", minimum=1, maximum=64),
        chunk_size=_parse_int(payload, "chunk_size", minimum=1),
        backend=backend,
        lane_engine=_parse_choice(payload, "lane_engine", _LANES),
    )


class LintRequest:
    """Static analysis: the served analogue of ``repro lint --json``."""

    __slots__ = ("tenant", "flowchart", "policy_text")

    def __init__(self, tenant: str, flowchart: Flowchart,
                 policy_text: Optional[str]) -> None:
        self.tenant = tenant
        self.flowchart = flowchart
        self.policy_text = policy_text

    def cache_key(self, fingerprint: str) -> Tuple:
        return ("lint", fingerprint, self.policy_text)


def parse_lint(payload) -> LintRequest:
    payload = _require_object(payload)
    flowchart = _parse_flowchart(payload)
    policy_text = payload.get("policy")
    if policy_text is not None:
        # Validate eagerly so a bad policy is a 400 here, not a crash
        # in the worker thread.
        _parse_policy(payload, flowchart.arity)
    return LintRequest(_parse_tenant(payload), flowchart, policy_text)


class ExplainRequest:
    """Provenance: the served analogue of ``repro explain --json``."""

    __slots__ = ("tenant", "flowchart", "policy", "inputs", "static",
                 "timed", "fuel")

    def __init__(self, tenant: str, flowchart: Flowchart, policy,
                 inputs: Optional[Tuple[int, ...]], static: bool,
                 timed: bool, fuel: Optional[int]) -> None:
        self.tenant = tenant
        self.flowchart = flowchart
        self.policy = policy
        self.inputs = inputs
        self.static = static
        self.timed = timed
        self.fuel = fuel


def parse_explain(payload) -> ExplainRequest:
    payload = _require_object(payload)
    flowchart = _parse_flowchart(payload)
    policy = _parse_policy(payload, flowchart.arity)
    static = payload.get("static", False)
    if not isinstance(static, bool):
        raise _bad("bad_static", "'static' must be a boolean")
    timed = payload.get("timed", False)
    if not isinstance(timed, bool):
        raise _bad("bad_timed", "'timed' must be a boolean")
    raw_inputs = payload.get("inputs")
    inputs: Optional[Tuple[int, ...]] = None
    if static:
        if raw_inputs is not None:
            raise _bad("bad_inputs",
                       "'static' derives the compile-time chain; it takes "
                       "no concrete inputs")
    else:
        if (not isinstance(raw_inputs, list)
                or any(isinstance(v, bool) or not isinstance(v, int)
                       for v in raw_inputs)):
            raise _bad("bad_inputs",
                       "'inputs' must be a list of integers (or pass "
                       "'static': true)")
        if len(raw_inputs) != flowchart.arity:
            raise _bad("bad_inputs",
                       f"program {flowchart.name!r} takes "
                       f"{flowchart.arity} input(s); got {len(raw_inputs)}")
        inputs = tuple(raw_inputs)
    return ExplainRequest(
        tenant=_parse_tenant(payload),
        flowchart=flowchart,
        policy=policy,
        inputs=inputs,
        static=static,
        timed=timed,
        fuel=_parse_int(payload, "fuel", minimum=1),
    )
