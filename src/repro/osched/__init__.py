"""A miniature multiprogrammed OS: the resource-usage covert channel.

Section 2's remark — "a general-purpose operating system in which
information can be passed via resource usage patterns" — made runnable:
a deterministic round-robin scheduler (:mod:`~repro.osched.scheduler`),
a shared/partitioned page pool (:mod:`~repro.osched.pool`), and the
sender/receiver channel with its quota mitigation
(:mod:`~repro.osched.channel`).
"""

from .pool import PagePool
from .scheduler import ComputeProcess, Process, System
from .channel import (ReceiverProcess, SenderProcess, bits_to_secret,
                      channel_report, decode, run_transmission,
                      secret_to_bits, system_program)

__all__ = [
    "PagePool", "Process", "System", "ComputeProcess",
    "SenderProcess", "ReceiverProcess", "secret_to_bits", "bits_to_secret",
    "run_transmission", "decode", "system_program", "channel_report",
]
