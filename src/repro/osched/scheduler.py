"""A deterministic round-robin scheduler over cooperating processes.

The minimal general-purpose-OS substrate Section 2's resource-channel
remark needs: several processes share a machine; each scheduler round
gives every process one step, in a fixed order; processes interact only
through shared resources (the page pool).  Everything is deterministic,
so channel experiments are exactly reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.errors import DomainError
from .pool import PagePool


class Process:
    """Base class: override :meth:`step`.

    ``step(system, round_index)`` runs one quantum; the process may use
    ``system.pool`` and record observations on itself.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def step(self, system: "System", round_index: int) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class System:
    """The machine: a page pool plus a process table."""

    def __init__(self, pool: PagePool, processes: Sequence[Process]) -> None:
        names = [process.name for process in processes]
        if len(set(names)) != len(names):
            raise DomainError("process names must be unique")
        self.pool = pool
        self.processes: List[Process] = list(processes)

    def run(self, rounds: int) -> None:
        """Round-robin: every process gets one step per round."""
        if rounds < 0:
            raise DomainError("cannot run a negative number of rounds")
        for round_index in range(rounds):
            for process in self.processes:
                process.step(self, round_index)

    def __repr__(self) -> str:
        return f"System({self.pool!r}, {self.processes!r})"


class ComputeProcess(Process):
    """Background noise: holds a fixed working set, computes."""

    def __init__(self, name: str, working_set: int = 0) -> None:
        super().__init__(name)
        self.working_set = working_set
        self.work_done = 0

    def step(self, system: System, round_index: int) -> None:
        if system.pool.held_by(self.name) < self.working_set:
            system.pool.acquire(
                self.name,
                self.working_set - system.pool.held_by(self.name))
        self.work_done += 1
