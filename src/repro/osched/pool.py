"""A shared page pool — the contended resource of Section 2's remark.

    *Such is the case for a general-purpose operating system in which
    information can be passed via resource usage patterns.*

The pool hands out page frames up to a capacity.  Two allocation
disciplines are provided, because the discipline *is* the security
design decision experiment E22 ablates:

- **shared** — first come, first served from one global pool: one
  process's holdings are visible to every other process as allocation
  failures (the covert channel);
- **partitioned** — each process gets a fixed private quota: no
  process's behaviour can affect another's allocations (the channel
  closes).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.errors import DomainError


class PagePool:
    """A pool of identical page frames with optional per-process quotas."""

    def __init__(self, capacity: int,
                 quotas: Optional[Dict[str, int]] = None) -> None:
        if capacity < 1:
            raise DomainError("pool capacity must be >= 1")
        self.capacity = capacity
        self.quotas = dict(quotas) if quotas else None
        if self.quotas is not None:
            total = sum(self.quotas.values())
            if total > capacity:
                raise DomainError(
                    f"quotas total {total} exceed capacity {capacity}")
        self._held: Dict[str, int] = {}

    @property
    def partitioned(self) -> bool:
        return self.quotas is not None

    def held_by(self, process: str) -> int:
        return self._held.get(process, 0)

    @property
    def total_held(self) -> int:
        return sum(self._held.values())

    def _limit_for(self, process: str) -> int:
        if self.quotas is None:
            return self.capacity
        return self.quotas.get(process, 0)

    def acquire(self, process: str, count: int = 1) -> bool:
        """Try to take ``count`` frames; all-or-nothing.

        Under the shared discipline, success depends on *everyone's*
        holdings — that global dependence is the channel.  Under
        quotas, success depends only on the caller's own holdings.
        """
        if count < 0:
            raise DomainError("cannot acquire a negative count")
        if self.held_by(process) + count > self._limit_for(process):
            return False
        if self.quotas is None and self.total_held + count > self.capacity:
            return False
        self._held[process] = self.held_by(process) + count
        return True

    def release(self, process: str, count: Optional[int] = None) -> int:
        """Release ``count`` frames (default: all); returns released count."""
        held = self.held_by(process)
        count = held if count is None else min(count, held)
        self._held[process] = held - count
        return count

    def __repr__(self) -> str:
        discipline = "partitioned" if self.partitioned else "shared"
        return (f"PagePool({discipline}, capacity={self.capacity}, "
                f"held={self.total_held})")
