"""The resource-usage covert channel, end to end (Section 2's remark).

A confined *sender* process knows a secret; a *receiver* process may
not learn it.  No file, pipe, or message connects them — only the
shared page pool.  The sender modulates its memory footprint (hoard the
pool for a 1 bit, release for a 0); the receiver probes the pool each
round and reads the secret out of its own allocation failures.

Formally: the whole system is a program
``Q_system(secret) = receiver's observations``, and the "mechanism"
under audit is the operating system itself.  Under the shared
discipline the observations determine the secret —
:func:`channel_report` shows Q is unsound for ``allow()`` and measures
the recovered bits.  Under per-process quotas the receiver's
observations are a constant function of the secret — the channel closes
and the same Q becomes sound.  One allocation-discipline switch flips
the verdict: the paper's point that forgotten observables are policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.domains import Domain, ProductDomain
from ..core.errors import DomainError
from ..core.mechanism import program_as_mechanism
from ..core.policy import allow_none
from ..core.program import Program
from ..core.soundness import check_soundness, max_leaked_bits
from .pool import PagePool
from .scheduler import ComputeProcess, Process, System


class SenderProcess(Process):
    """Encodes the secret, one bit per round: hoard for 1, release for 0."""

    def __init__(self, name: str, secret_bits: Tuple[int, ...],
                 hoard: int) -> None:
        super().__init__(name)
        self.secret_bits = tuple(secret_bits)
        self.hoard = hoard

    def step(self, system: System, round_index: int) -> None:
        if round_index >= len(self.secret_bits):
            system.pool.release(self.name)
            return
        if self.secret_bits[round_index]:
            deficit = self.hoard - system.pool.held_by(self.name)
            if deficit > 0:
                system.pool.acquire(self.name, deficit)
        else:
            system.pool.release(self.name)


class ReceiverProcess(Process):
    """Probes the pool each round; records whether the probe succeeded."""

    def __init__(self, name: str, probe: int) -> None:
        super().__init__(name)
        self.probe = probe
        self.observations: List[int] = []

    def step(self, system: System, round_index: int) -> None:
        got = system.pool.acquire(self.name, self.probe)
        self.observations.append(1 if got else 0)
        if got:
            system.pool.release(self.name, self.probe)


def secret_to_bits(secret: int, width: int) -> Tuple[int, ...]:
    """Big-endian fixed-width bit vector of a non-negative secret."""
    if secret < 0 or secret >= (1 << width):
        raise DomainError(f"secret {secret} does not fit in {width} bits")
    return tuple((secret >> (width - 1 - position)) & 1
                 for position in range(width))


def bits_to_secret(bits) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | (1 if bit else 0)
    return value


def run_transmission(secret: int, width: int, partitioned: bool,
                     capacity: int = 8, noise_working_set: int = 0) -> Tuple[int, ...]:
    """One full transmission; returns the receiver's observation vector.

    ``partitioned=True`` gives sender/receiver/noise fixed quotas (the
    mitigation); ``noise_working_set`` adds a background process that
    permanently holds that many frames (imperfect-channel realism).
    """
    bits = secret_to_bits(secret, width)
    hoard = capacity - noise_working_set  # enough to starve the probe
    quotas = None
    if partitioned:
        quotas = {"sender": capacity // 2 - 1,
                  "receiver": 2,
                  "noise": noise_working_set}
    pool = PagePool(capacity, quotas=quotas)
    processes: List[Process] = []
    if noise_working_set:
        processes.append(ComputeProcess("noise", noise_working_set))
    processes.append(SenderProcess("sender", bits,
                                   hoard if not partitioned
                                   else capacity // 2 - 1))
    processes.append(ReceiverProcess("receiver", probe=2))
    system = System(pool, processes)
    system.run(width)
    receiver = processes[-1]
    assert isinstance(receiver, ReceiverProcess)
    return tuple(receiver.observations)


def decode(observations: Tuple[int, ...]) -> int:
    """The attacker's decoder: failed probe = hoarded pool = bit 1."""
    return bits_to_secret(1 - observed for observed in observations)


def system_program(width: int, partitioned: bool, capacity: int = 8,
                   noise_working_set: int = 0) -> Program:
    """The whole OS run as a view function of the secret."""
    domain = ProductDomain(Domain.integers(0, (1 << width) - 1,
                                           name="Secret"))

    def observe(secret):
        return run_transmission(secret, width, partitioned, capacity,
                                noise_working_set)

    discipline = "quota" if partitioned else "shared"
    return Program(observe, domain,
                   name=f"Q-os[{discipline}, w={width}]")


def channel_report(width: int = 4, capacity: int = 8,
                   noise_working_set: int = 0) -> List[Dict[str, object]]:
    """The E22 rows: shared vs partitioned pool, same sender/receiver.

    Per discipline: soundness of the system for allow() (deny the
    secret entirely), bits recoverable from the receiver's observations,
    and whether the decoder recovers every secret exactly.
    """
    rows = []
    policy = allow_none(1)
    for partitioned in (False, True):
        q = system_program(width, partitioned, capacity, noise_working_set)
        mechanism = program_as_mechanism(q)
        report = check_soundness(mechanism, policy)
        recovered = all(
            decode(run_transmission(secret, width, partitioned, capacity,
                                    noise_working_set)) == secret
            for (secret,) in q.domain)
        rows.append({
            "discipline": "partitioned" if partitioned else "shared",
            "secret_bits": width,
            "sound_for_allow_none": report.sound,
            "leaked_bits": max_leaked_bits(mechanism, policy),
            "exact_recovery": recovered,
        })
    return rows
