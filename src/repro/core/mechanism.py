"""Protection mechanisms (Section 2).

    *M : D1 x ... x Dk -> E ∪ F is a protection mechanism for Q provided
    for all (d1, ..., dk) either (1) M(d1,...,dk) = Q(d1,...,dk) or
    (2) M(d1,...,dk) is in the set F* (the violation notices of M).

A mechanism is a **gatekeeper**: on each input it either passes the
program's output through, or returns a violation notice.  This module
provides:

- :class:`ViolationNotice` and the canonical notice :data:`LAMBDA`
  (the paper's Λ),
- :class:`ProtectionMechanism`, with a checkable contract
  (:meth:`ProtectionMechanism.check_contract`),
- the two trivial mechanisms of Example 3 — the program as its own
  mechanism (:func:`program_as_mechanism`) and "pulling the plug"
  (:func:`null_mechanism`),
- the union/join of Theorem 1 (:func:`union`, :func:`join`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from .errors import ArityMismatchError, MechanismContractError, ProgramError
from .program import Program


class ViolationNotice:
    """A member of the notice set F.

    The user reads a notice as: *"It looks as if you have attempted to
    view information that is to be denied to you."*  Notices compare
    equal by message, and — crucially for Example 1's critique of
    Fenton — are a distinct type from ordinary outputs, so ``F`` and
    ``E`` are disjoint by construction.

    When comparing mechanisms for completeness the paper deliberately
    does **not** distinguish different notices; :func:`is_violation`
    is the predicate completeness relies on.
    """

    __slots__ = ("message",)

    def __init__(self, message: str = "Λ") -> None:
        self.message = message

    def __repr__(self) -> str:
        return f"ViolationNotice({self.message!r})"

    def __str__(self) -> str:
        return self.message

    def __eq__(self, other) -> bool:
        if not isinstance(other, ViolationNotice):
            return NotImplemented
        return self.message == other.message

    def __hash__(self) -> int:
        return hash((ViolationNotice, self.message))


#: The canonical single violation notice Λ of Example 3.
LAMBDA = ViolationNotice("Λ")


def is_violation(value) -> bool:
    """True iff ``value`` is a violation notice (a member of F)."""
    return isinstance(value, ViolationNotice)


class ProtectionMechanism:
    """A gatekeeper ``M : D1 x ... x Dk -> E ∪ F`` for a program ``Q``.

    The defining contract — every output is either ``Q``'s output or a
    notice — is *checkable* on finite domains via
    :meth:`check_contract`; constructors in this library produce
    mechanisms satisfying it by construction.
    """

    def __init__(self, fn: Callable, program: Program, name: str = "M") -> None:
        if not isinstance(program, Program):
            raise ProgramError("a mechanism must protect a Program instance")
        self._fn = fn
        self.program = program
        self.name = name
        self._cache: dict = {}

    @property
    def arity(self) -> int:
        return self.program.arity

    @property
    def domain(self):
        return self.program.domain

    def __call__(self, *inputs):
        if len(inputs) != self.arity:
            raise ArityMismatchError(
                f"mechanism {self.name} takes {self.arity} inputs, got {len(inputs)}"
            )
        try:
            return self._cache[inputs]
        except KeyError:
            pass
        except TypeError:
            return self._fn(*inputs)
        value = self._fn(*inputs)
        self._cache[inputs] = value
        return value

    def passes(self, *inputs) -> bool:
        """True iff M passes Q's output through at this input (no notice)."""
        return not is_violation(self(*inputs))

    def acceptance_set(self) -> frozenset:
        """All inputs (over the finite domain) where ``M(a) == Q(a)``.

        This set *is* the mechanism's position in the completeness
        order: ``M1 >= M2`` iff ``acceptance(M1) ⊇ acceptance(M2)``.
        """
        return frozenset(point for point in self.domain if self.passes(*point))

    def violation_rate(self) -> float:
        """Fraction of the domain receiving a violation notice."""
        total = len(self.domain)
        return 1.0 - len(self.acceptance_set()) / total

    def check_contract(self, domain=None) -> None:
        """Verify the Section 2 definition over a finite domain.

        Raises :class:`MechanismContractError` with a witness if some
        output is neither ``Q(a)`` nor a violation notice.
        """
        for point in (domain or self.domain):
            got = self(*point)
            if is_violation(got):
                continue
            expected = self.program(*point)
            if got != expected:
                raise MechanismContractError(point, got, expected)

    def __repr__(self) -> str:
        return f"ProtectionMechanism({self.name} for {self.program.name})"


def program_as_mechanism(program: Program) -> ProtectionMechanism:
    """Example 3, first trivial mechanism: the program Q itself.

    "This corresponds, of course, to no protection at all."  It is a
    valid mechanism (contract trivially holds) but is sound only for
    policies through which Q already factors (cf. Example 5's logon
    program, which is *unsound* as its own mechanism).
    """
    return ProtectionMechanism(program, program, name=f"{program.name}-as-M")


def null_mechanism(program: Program,
                   notice: ViolationNotice = LAMBDA) -> ProtectionMechanism:
    """Example 3, second trivial mechanism: always output Λ.

    "This corresponds to pulling the plug."  Sound for *every* policy
    — and useless, which is what motivates the completeness order.
    """
    return ProtectionMechanism(lambda *inputs: notice, program,
                               name="M-null")


def mechanism_from_table(program: Program, table: dict,
                         name: str = "M-table") -> ProtectionMechanism:
    """A mechanism given extensionally, as ``{input_tuple: output}``.

    Inputs missing from the table map to Λ.  Useful in tests and for
    materialising the maximal mechanism.
    """

    def lookup(*inputs):
        return table.get(inputs, LAMBDA)

    return ProtectionMechanism(lookup, program, name=name)


def union(first: ProtectionMechanism, second: ProtectionMechanism,
          name: Optional[str] = None) -> ProtectionMechanism:
    """The join ``M1 ∨ M2`` of Theorem 1.

        ``(M1 ∨ M2)(a) = Q(a)``  if ``M1(a) == Q(a)`` or ``M2(a) == Q(a)``,
        ``(M1 ∨ M2)(a) = M1(a)`` otherwise.

    The key property: if *either* component passes Q's output through,
    so does the union.  Theorem 1 (proved in the test suite by
    exhaustive check, and in general by the soundness machinery): the
    union of sound mechanisms is sound and at least as complete as both.
    """
    if first.program is not second.program:
        # Mechanisms for different Program objects computing the same
        # function are fine mathematically, but almost always a bug here.
        if first.program.domain != second.program.domain:
            raise ProgramError(
                "union(): mechanisms protect programs over different domains"
            )

    def joined(*inputs):
        expected = first.program(*inputs)
        first_output = first(*inputs)
        if first_output == expected:
            return first_output
        second_output = second(*inputs)
        if second_output == expected:
            return second_output
        return first_output

    return ProtectionMechanism(
        joined, first.program,
        name=name or f"({first.name} ∨ {second.name})",
    )


def join(mechanisms: Sequence[ProtectionMechanism],
         name: Optional[str] = None) -> ProtectionMechanism:
    """The n-ary join ``M1 ∨ M2 ∨ ...`` (the Theorem 2 construction).

    Folds :func:`union` over the sequence; with a single element it is
    that element.  The paper notes the join of *all* sound mechanisms is
    the maximal one (see :mod:`repro.core.maximal` for the effective
    finite-domain construction).
    """
    mechanisms = list(mechanisms)
    if not mechanisms:
        raise ProgramError("join() of an empty mechanism family")
    result = mechanisms[0]
    for mechanism in mechanisms[1:]:
        result = union(result, mechanism)
    if name is not None:
        result.name = name
    return result
