"""Security policies (Section 2).

    *A security policy I for the program Q : D1 x ... x Dk -> E is a
    function from D1 x ... x Dk to* 𝔍 *where* 𝔍 *is a new set.*

A policy is an **information filter**: ``I(d1, ..., dk)`` has filtered
out everything the user must not learn.  The policy's value set is
arbitrary, which is what lets the definition cover:

- the ``allow(i1, ..., im)`` family the paper studies in detail
  (:func:`allow`),
- content-dependent policies such as the directory-gated file-system
  policy of Example 2 (:func:`content_dependent`), and
- history-dependent policies, where what may be seen depends on the
  user's earlier queries (:class:`HistoryPolicy`).

Input positions are **1-based**, following the paper (``allow(1, 3)``
allows inputs ``d1`` and ``d3``).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Sequence, Tuple

from .errors import ArityMismatchError, PolicyError


class SecurityPolicy:
    """A function ``I : D1 x ... x Dk -> 𝔍`` used as an information filter.

    Two inputs with equal policy values are *indistinguishable to the
    user under the policy*: a sound mechanism must treat them alike.
    """

    def __init__(self, fn: Callable, arity: int, name: str = "I") -> None:
        if arity < 0:
            raise PolicyError(f"policy arity must be >= 0, got {arity}")
        self._fn = fn
        self.arity = arity
        self.name = name

    def __call__(self, *inputs):
        if len(inputs) != self.arity:
            raise ArityMismatchError(
                f"policy {self.name} takes {self.arity} inputs, got {len(inputs)}"
            )
        return self._fn(*inputs)

    def __repr__(self) -> str:
        return f"SecurityPolicy({self.name}, arity={self.arity})"

    def classes(self, domain) -> dict:
        """Partition a finite domain into policy-equivalence classes.

        Returns ``{policy_value: [inputs...]}``.  Soundness of ``M`` is
        exactly the statement that ``M`` is constant on every class.
        """
        partition: dict = {}
        for point in domain:
            partition.setdefault(self(*point), []).append(point)
        return partition


class AllowPolicy(SecurityPolicy):
    """The shorthand ``allow(i1, ..., im)`` policy (Section 2).

    ``I(d1, ..., dk) = (d_i1, ..., d_im)`` — the user may learn the
    listed input positions, and *nothing* about the others.
    """

    def __init__(self, indices: Sequence[int], arity: int) -> None:
        indices = tuple(indices)
        seen = set()
        for index in indices:
            if not isinstance(index, int) or index < 1 or index > arity:
                raise PolicyError(
                    f"allow(): index {index!r} out of range 1..{arity} "
                    "(the paper's indices are 1-based)"
                )
            if index in seen:
                raise PolicyError(f"allow(): duplicate index {index}")
            seen.add(index)
        self.indices: Tuple[int, ...] = indices
        self.allowed: FrozenSet[int] = frozenset(indices)
        label = ", ".join(str(i) for i in indices)
        super().__init__(
            lambda *inputs: tuple(inputs[i - 1] for i in indices),
            arity,
            name=f"allow({label})",
        )

    def __reduce__(self):
        # The filter function is a closure over `indices`, which cannot
        # pickle; reconstruct from (indices, arity) instead, so allow-
        # policies can cross process boundaries (the parallel sweep
        # runner ships (flowchart, policy, chunk) tasks to workers).
        return (AllowPolicy, (self.indices, self.arity))

    def permits(self, index: int) -> bool:
        """True iff input position ``index`` (1-based) is allowed."""
        return index in self.allowed

    def permits_all(self, indices: Iterable[int]) -> bool:
        """True iff every listed input position is allowed.

        This is the subset test the surveillance mechanism performs at
        its halt boxes: ``v̄ ⊆ J``.
        """
        return self.allowed.issuperset(indices)

    def __repr__(self) -> str:
        return f"AllowPolicy({self.name}, arity={self.arity})"


def allow(*indices: int, arity: int) -> AllowPolicy:
    """Construct ``allow(i1, ..., im)`` for a k-ary program.

    >>> policy = allow(2, arity=3)
    >>> policy(10, 20, 30)
    (20,)
    >>> allow(arity=2)(5, 7)     # allow(): no information at all
    ()
    >>> allow(1, 2, arity=2)(5, 7)  # allow(1, 2): everything
    (5, 7)
    """
    return AllowPolicy(indices, arity)


def allow_all(arity: int) -> AllowPolicy:
    """``allow(1, ..., k)`` — "allow the user any information he wants"."""
    return AllowPolicy(tuple(range(1, arity + 1)), arity)


def allow_none(arity: int) -> AllowPolicy:
    """``allow()`` — "allow the user no information"."""
    return AllowPolicy((), arity)


def content_dependent(fn: Callable, arity: int, name: str = "I_content") -> SecurityPolicy:
    """A policy whose filtering depends on input *values*.

    Example 2's file-system policy is the canonical instance:

        ``I(d1..dk, f1..fk) = (d1..dk, f1'..fk')`` where ``fi' = fi`` if
        ``di == "YES"`` and ``0`` otherwise.

    Such policies are *not* of the ``allow(...)`` form, but the general
    soundness machinery applies unchanged.
    """
    return SecurityPolicy(fn, arity, name=name)


class HistoryPolicy:
    """A history-dependent policy (Section 2's database remark).

    What the user may see depends on their previous queries.  We model a
    session as a fold: the policy carries a state, and each query both
    filters and advances the state.  :meth:`session` turns a sequence of
    queries into a plain :class:`SecurityPolicy` over the *whole*
    sequence, so the stateless soundness machinery still applies.
    """

    def __init__(self, initial_state, step: Callable, arity: int,
                 name: str = "I_history") -> None:
        self.initial_state = initial_state
        self._step = step
        self.arity = arity
        self.name = name

    def filter_query(self, state, inputs: Tuple):
        """Apply one query: returns ``(filtered_value, next_state)``."""
        return self._step(state, inputs)

    def session(self, length: int) -> SecurityPolicy:
        """The induced policy over a length-``length`` query sequence.

        The resulting policy takes ``length * arity`` inputs (the
        queries, concatenated) and returns the tuple of per-query
        filtered values.
        """
        per_query = self.arity

        def run(*flat_inputs):
            state = self.initial_state
            outputs = []
            for query_index in range(length):
                chunk = flat_inputs[query_index * per_query:(query_index + 1) * per_query]
                filtered, state = self.filter_query(state, tuple(chunk))
                outputs.append(filtered)
            return tuple(outputs)

        return SecurityPolicy(run, length * per_query,
                              name=f"{self.name}^{length}")

    def __repr__(self) -> str:
        return f"HistoryPolicy({self.name}, arity={self.arity})"
